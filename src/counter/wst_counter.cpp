#include "counter/wst_counter.hpp"

#include "common/parse.hpp"
#include "counter/wsrf_counter.hpp"  // shared QNames and topic name

namespace gs::counter {

using app::CounterCore;

WstCounterDeployment::WstCounterDeployment(Params params)
    : address_base_(params.address_base),
      db_(std::move(params.backend), {.write_through_cache = false}),
      container_(params.container) {
  core_ = std::make_unique<CounterCore>(db_);
  durable_ = std::make_unique<xmldb::DurableStore>(db_);
  durable_->open_collection(core_->collection(), "counter.resource", 1);
  if (params.subscriptions_in_db) {
    durable_->open_collection("wse-subscriptions", "wse.subscription", 1);
    store_ = std::make_unique<wse::SubscriptionStore>(db_, "wse-subscriptions");
  } else if (!params.subscription_file.empty()) {
    store_ = std::make_unique<wse::SubscriptionStore>(params.subscription_file);
  } else {
    store_ = std::make_unique<wse::SubscriptionStore>();
  }
  manager_ = std::make_unique<wse::WseSubscriptionManagerService>(
      *store_, manager_address(), *params.container.clock);
  source_ = std::make_unique<wse::EventSourceService>(
      "CounterEvents", *store_, *manager_, *params.container.clock);
  notifier_ = std::make_unique<wse::NotificationManager>(
      *store_, *params.notification_sink, *params.container.clock);

  wst::TransferService::Hooks hooks;
  // Put is read-modify-write per the paper: the core fetches the stored
  // document, replaces cv with the incoming value, and stores it back —
  // one extra database read that the WSRF.NET cache never pays.
  hooks.on_put = [this](const std::string& id, const xml::Element& replacement,
                        container::RequestContext&)
      -> std::unique_ptr<xml::Element> {
    core_->apply_put(id, replacement);
    return nullptr;
  };
  // The core's value-changed signal feeds the WS-Eventing Notification
  // Manager.
  core_->on_value_changed([this](const std::string& id,
                                 const std::string& value) {
    auto event = CounterCore::changed_event(value, service_->epr_for(id));
    notifier_->notify(kValueChangedTopic, *event,
                      std::string(soap::ns::kCounter) + "/" + kValueChangedTopic);
  });

  service_ = std::make_unique<wst::TransferService>(
      "Counter", db_, core_->collection(), counter_address(), std::move(hooks));

  // The telemetry resource reads the registry the container writes to
  // (custom or global) and carries whatever series/SLO/cost wiring the
  // deployment attached.
  telemetry_ = std::make_unique<telemetry::TelemetryService>(
      telemetry_address(),
      params.container.metrics ? params.container.metrics
                               : &telemetry::MetricsRegistry::global(),
      &telemetry::TraceLog::global(), &telemetry::EventLog::global(),
      params.series, params.slo, params.costs);
  if (params.costs) container_.set_cost_aggregator(params.costs);

  container_.deploy("/Counter", *service_);
  container_.deploy("/CounterEvents", *source_);
  container_.deploy("/CounterEventSubscriptions", *manager_);
  container_.deploy("/Telemetry", *telemetry_);

  container_.add_recovery("wse.subscriptions", [this] { store_->recover(); });
}

WstCounterClient::WstCounterClient(net::SoapCaller& caller,
                                   std::string counter_address,
                                   std::string source_address,
                                   container::ProxySecurity security)
    : caller_(caller),
      source_address_(std::move(source_address)),
      security_(security),
      resource_(caller_, soap::EndpointReference(counter_address), security_) {}

soap::EndpointReference WstCounterClient::create() {
  wst::TransferProxy::CreateResult result =
      resource_.create(CounterCore::make_document(0));
  resource_.retarget(result.resource);
  return result.resource;
}

void WstCounterClient::attach(soap::EndpointReference epr) {
  resource_.retarget(std::move(epr));
}

int WstCounterClient::get() {
  std::unique_ptr<xml::Element> doc = resource_.get();
  // The schema is hard-coded client-side: <Counter><cv>N</cv></Counter>.
  const xml::Element* cv = doc->child(cv_qname());
  if (!cv) throw soap::SoapFault("Receiver", "counter document has no cv");
  auto value = common::parse_number<int>(cv->text());
  if (!value) {
    throw soap::SoapFault("Receiver",
                          "malformed counter value '" + cv->text() + "'");
  }
  return *value;
}

void WstCounterClient::set(int value) {
  resource_.put(CounterCore::make_document(value));
}

void WstCounterClient::remove() { resource_.remove(); }

wse::EventSourceProxy::SubscriptionHandle WstCounterClient::subscribe(
    const soap::EndpointReference& notify_to) {
  wse::EventSourceProxy source(
      caller_, soap::EndpointReference(source_address_), security_);
  // WS-Eventing subscriptions attach to the service, not a resource; the
  // per-counter scoping the paper describes ("a filter can be used for
  // registering a subscription per resource") is an XPath filter over the
  // event content, which carries the counter EPR.
  if (auto id = resource_.target().reference_property(wst::transfer_id_qname())) {
    return source.subscribe(notify_to, wse::FilterDialect::kXPath,
                            "//ResourceID[. = '" + *id + "']");
  }
  return source.subscribe(notify_to, wse::FilterDialect::kTopic,
                          kValueChangedTopic);
}

}  // namespace gs::counter
