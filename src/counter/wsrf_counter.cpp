#include "counter/wsrf_counter.hpp"

#include "common/parse.hpp"

namespace gs::counter {

using app::CounterCore;

namespace {
xml::QName counter_qn(const char* local) { return CounterCore::qn(local); }
}  // namespace

xml::QName cv_qname() { return CounterCore::value_qname(); }
xml::QName double_value_qname() { return CounterCore::double_value_qname(); }

const std::string& wsrf_counter_create_action() {
  static const std::string action = std::string(soap::ns::kCounter) + "/Create";
  return action;
}

WsrfCounterDeployment::WsrfCounterDeployment(Params params)
    : address_base_(params.address_base),
      db_(std::move(params.backend),
          {.write_through_cache = params.write_through_cache}),
      container_(params.container) {
  core_ = std::make_unique<CounterCore>(db_);
  durable_ = std::make_unique<xmldb::DurableStore>(db_);
  durable_->open_collection(core_->collection(), "counter.resource", 1);
  durable_->open_collection("counter-subscriptions", "wsn.subscription", 1);
  counter_home_ = std::make_unique<wsrf::ResourceHome>(db_, core_->collection(),
                                                       &container_.lifetime());
  subscription_home_ = std::make_unique<wsrf::ResourceHome>(
      db_, "counter-subscriptions", &container_.lifetime());

  manager_ = std::make_unique<wsn::SubscriptionManagerService>(
      *subscription_home_, manager_address());

  // The counter's property schema: the stored value plus the computed
  // DoubleValue from the paper's code fragment.
  wsrf::PropertySet props;
  props.declare_stored(cv_qname());
  props.declare_computed(
      double_value_qname(), [](const xml::Element& state) {
        std::vector<std::unique_ptr<xml::Element>> out;
        auto el = std::make_unique<xml::Element>(double_value_qname());
        el->set_text(std::to_string(CounterCore::double_value_of(state)));
        out.push_back(std::move(el));
        return out;
      });

  service_ = std::make_unique<wsrf::WsrfService>("Counter", *counter_home_,
                                                 std::move(props),
                                                 counter_address());
  service_->import_resource_properties();
  service_->import_query_resource_properties();
  service_->import_resource_lifetime();

  // The single author-defined WebMethod: create.
  service_->register_operation(
      wsrf_counter_create_action(), [this](container::RequestContext& ctx) {
        soap::EndpointReference epr =
            service_->create_resource(CounterCore::make_document(0));
        soap::Envelope response = container::make_response(
            ctx, wsrf_counter_create_action() + "Response");
        response.body().append(epr.to_xml(counter_qn("CounterEPR")));
        return response;
      });

  producer_ = std::make_unique<wsn::NotificationProducer>(
      wsn::NotificationProducer::Config{params.notification_sink,
                                        counter_address(), manager_.get(),
                                        params.container.clock},
      [] {
        wsn::TopicNamespace topics;
        topics.add(kValueChangedTopic);
        return topics;
      }());
  producer_->register_into(*service_);

  // Publish CounterValueChanged whenever cv is set: the WSRF property
  // change feeds the core's signal, and the core's signal feeds the
  // WS-Notification producer.
  core_->on_value_changed([this](const std::string& id,
                                 const std::string& value) {
    auto event = CounterCore::changed_event(
        value, counter_home_->epr_for(id, counter_address()));
    producer_->notify(kValueChangedTopic, *event);
  });
  service_->on_property_changed(
      [this](const std::string& id, const xml::QName& prop) {
        if (prop != cv_qname()) return;
        if (manager_->count() == 0) return;  // nobody listening: skip
        core_->note_changed(id);
      });

  // The telemetry resource reads the registry the container writes to
  // (custom or global) and carries whatever series/SLO/cost wiring the
  // deployment attached.
  telemetry_ = std::make_unique<telemetry::TelemetryService>(
      telemetry_address(),
      params.container.metrics ? params.container.metrics
                               : &telemetry::MetricsRegistry::global(),
      &telemetry::TraceLog::global(), &telemetry::EventLog::global(),
      params.series, params.slo, params.costs);
  if (params.costs) container_.set_cost_aggregator(params.costs);

  container_.deploy("/Counter", *service_);
  container_.deploy("/CounterSubscriptions", *manager_);
  container_.deploy("/Telemetry", *telemetry_);

  // Recovery order: counter resources (and their scheduled terminations)
  // before the subscriptions that reference them.
  container_.add_recovery("wsrf.counter", [this] { counter_home_->recover(); });
  container_.add_recovery("wsn.subscriptions", [this] { manager_->recover(); });
}

WsrfCounterClient::WsrfCounterClient(net::SoapCaller& caller,
                                     std::string counter_address,
                                     container::ProxySecurity security)
    : caller_(caller),
      counter_address_(std::move(counter_address)),
      security_(security),
      resource_(caller_, soap::EndpointReference(counter_address_), security_) {}

soap::EndpointReference WsrfCounterClient::create() {
  // The create call goes to the bare service (no resource header yet).
  class CreateProxy : public container::ProxyBase {
   public:
    using container::ProxyBase::ProxyBase;
    soap::EndpointReference run(const std::string& action) {
      soap::Envelope response = invoke(action);
      const xml::Element* epr = response.payload();
      if (!epr) throw soap::SoapFault("Receiver", "create returned no EPR");
      return soap::EndpointReference::from_xml(*epr);
    }
  };
  CreateProxy proxy(caller_, soap::EndpointReference(counter_address_), security_);
  soap::EndpointReference epr = proxy.run(wsrf_counter_create_action());
  attach(epr);
  return epr;
}

void WsrfCounterClient::attach(soap::EndpointReference epr) {
  resource_.retarget(std::move(epr));
}

namespace {
// The property text came off the wire; a faulty service must surface as a
// SOAP fault at the proxy boundary, not std::invalid_argument from stoi.
int parse_property_int(const std::string& text, const char* what) {
  auto value = common::parse_number<int>(text);
  if (!value) {
    throw soap::SoapFault("Receiver", std::string("malformed ") + what +
                                          " property '" + text + "'");
  }
  return *value;
}
}  // namespace

int WsrfCounterClient::get() {
  return parse_property_int(resource_.get_property_text(cv_qname()), "cv");
}

void WsrfCounterClient::set(int value) {
  resource_.update_property_text(cv_qname(), std::to_string(value));
}

int WsrfCounterClient::double_value() {
  return parse_property_int(resource_.get_property_text(double_value_qname()),
                            "DoubleValue");
}

void WsrfCounterClient::destroy() { resource_.destroy(); }

wsn::SubscriptionProxy WsrfCounterClient::subscribe(
    const soap::EndpointReference& consumer) {
  wsn::NotificationProducerProxy producer(caller_, resource_.target(), security_);
  wsn::Filter filter;
  filter.set_topic(wsn::TopicExpression::parse(
      wsn::TopicExpression::Dialect::kConcrete, kValueChangedTopic));
  // Per-resource subscription: a MessageContent filter pins the
  // subscription to this counter's id (the event carries the counter EPR).
  if (auto id = resource_.target().reference_property(wsrf::resource_id_qname())) {
    filter.set_message_content("//ResourceID[. = '" + *id + "']");
  }
  soap::EndpointReference sub_epr = producer.subscribe(consumer, filter);
  return wsn::SubscriptionProxy(caller_, sub_epr, security_);
}

}  // namespace gs::counter
