// The "hello world" counter on the WS-Transfer/WS-Eventing stack.
//
// Exactly the paper's design (§4.1.2): counter operations map onto the four
// CRUD verbs — Create stores the client's XML document unmodified, Get
// returns it untouched (the client must already know its schema: the
// WS-Transfer <xsd:any> gap), Put updates it, Delete removes it. Matching
// the paper's measured behaviour, Put is read-modify-write: "the old
// representation of the counter's resource [is] read from the database and
// updated with the new value before being stored" — the extra read the
// WSRF.NET resource cache avoids. WS-Eventing delivers CounterValueChanged
// over the TCP sink.
#pragma once

#include <memory>

#include "app/counter_core.hpp"
#include "container/container.hpp"
#include "soap/namespaces.hpp"
#include "telemetry/service.hpp"
#include "wse/client.hpp"
#include "wse/service.hpp"
#include "wst/client.hpp"
#include "wst/service.hpp"
#include "xmldb/durable_store.hpp"

namespace gs::counter {

/// Server side: the transfer service, event source, subscription manager
/// and notification manager wired into a container.
class WstCounterDeployment {
 public:
  struct Params {
    std::unique_ptr<xmldb::Backend> backend;  // required
    container::ContainerConfig container;
    net::SoapCaller* notification_sink = nullptr;  // required (TCP caller)
    std::string address_base;
    /// Flat-XML subscription file (Plumbwork behaviour); empty = memory.
    std::filesystem::path subscription_file;
    /// When true, subscriptions persist as per-entry documents in the
    /// deployment's database instead of the flat file — the durable path:
    /// with a WAL backend they survive a crash and recover() brings them
    /// back. Wins over subscription_file.
    bool subscriptions_in_db = false;
    /// Optional observability wiring: when set, the Telemetry resource
    /// exposes <t:Series>/<t:Slo>/<t:Tenants> from these, and `costs`
    /// receives every request's attribution record.
    const telemetry::TimeSeriesStore* series = nullptr;
    const telemetry::SloTracker* slo = nullptr;
    telemetry::CostAggregator* costs = nullptr;
  };

  explicit WstCounterDeployment(Params params);

  container::Container& container() noexcept { return container_; }
  wst::TransferService& service() noexcept { return *service_; }
  xmldb::XmlDatabase& db() noexcept { return db_; }
  app::CounterCore& core() noexcept { return *core_; }
  wse::SubscriptionStore& subscription_store() noexcept { return *store_; }

  /// Runs the container's recovery phase. Counter documents need no
  /// rehydration (WS-Transfer reads the database per request); the hook
  /// reloads the WS-Eventing subscription list from its medium.
  std::size_t recover() { return container_.recover(); }

  std::string counter_address() const { return address_base_ + "/Counter"; }
  std::string source_address() const { return address_base_ + "/CounterEvents"; }
  std::string manager_address() const {
    return address_base_ + "/CounterEventSubscriptions";
  }
  /// The container's live metrics/trace resource (WSRF + WS-Transfer).
  std::string telemetry_address() const { return address_base_ + "/Telemetry"; }

 private:
  std::string address_base_;
  xmldb::XmlDatabase db_;
  container::Container container_;
  std::unique_ptr<xmldb::DurableStore> durable_;
  std::unique_ptr<app::CounterCore> core_;
  std::unique_ptr<wse::SubscriptionStore> store_;
  std::unique_ptr<wse::WseSubscriptionManagerService> manager_;
  std::unique_ptr<wse::EventSourceService> source_;
  std::unique_ptr<wse::NotificationManager> notifier_;
  std::unique_ptr<wst::TransferService> service_;
  std::unique_ptr<telemetry::TelemetryService> telemetry_;
};

/// Client for the WS-Transfer counter. Note the shape: every call moves
/// raw XML elements whose schema is hard-coded on both sides.
class WstCounterClient {
 public:
  WstCounterClient(net::SoapCaller& caller, std::string counter_address,
                   std::string source_address,
                   container::ProxySecurity security = {});

  soap::EndpointReference create();
  void attach(soap::EndpointReference epr);

  int get();
  void set(int value);
  void remove();

  /// Subscribes `notify_to` to CounterValueChanged events (topic filter).
  wse::EventSourceProxy::SubscriptionHandle subscribe(
      const soap::EndpointReference& notify_to);

 private:
  net::SoapCaller& caller_;
  std::string source_address_;
  container::ProxySecurity security_;
  wst::TransferProxy resource_;
};

}  // namespace gs::counter
