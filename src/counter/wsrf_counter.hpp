// The "hello world" counter service on the WSRF/WS-Notification stack.
//
// Exactly the paper's design (§4.1.1): the resource is one stored value
// "cv"; the service author writes a single Create WebMethod that calls the
// library ServiceBase.Create() to place `cv = 0` in the backing store; all
// other behaviour — get/set via WS-ResourceProperties, destroy via
// WS-ResourceLifetime — is inherited from the imported port types. The
// paper's [ResourceProperty] code fragment (DoubleValue => v * 2) is also
// reproduced as a computed property. A CounterValueChanged topic notifies
// subscribers whenever cv changes.
#pragma once

#include <memory>

#include "app/counter_core.hpp"
#include "container/container.hpp"
#include "soap/namespaces.hpp"
#include "telemetry/service.hpp"
#include "wsn/client.hpp"
#include "wsn/producer.hpp"
#include "wsrf/client.hpp"
#include "wsrf/service.hpp"
#include "xmldb/durable_store.hpp"

namespace gs::counter {

/// Property and topic names.
xml::QName cv_qname();           // the stored counter value
xml::QName double_value_qname(); // computed: cv * 2
inline constexpr const char* kValueChangedTopic = "CounterValueChanged";

/// The author-defined create action (WSRF has no spec create — this is the
/// service's own interface, the interoperability gap the paper flags).
const std::string& wsrf_counter_create_action();

/// Everything server-side for one WSRF counter deployment: database homes,
/// the counter service with its imported port types, the subscription
/// manager, and the notification producer — wired into a container.
class WsrfCounterDeployment {
 public:
  struct Params {
    std::unique_ptr<xmldb::Backend> backend;  // required
    bool write_through_cache = true;          // the WSRF.NET optimization
    container::ContainerConfig container;
    net::SoapCaller* notification_sink = nullptr;  // required
    /// Base URL, e.g. "http://vo.example"; services mount under it.
    std::string address_base;
    /// Optional observability wiring: when set, the Telemetry resource
    /// exposes <t:Series>/<t:Slo>/<t:Tenants> from these, and `costs`
    /// receives every request's attribution record.
    const telemetry::TimeSeriesStore* series = nullptr;
    const telemetry::SloTracker* slo = nullptr;
    telemetry::CostAggregator* costs = nullptr;
  };

  explicit WsrfCounterDeployment(Params params);

  container::Container& container() noexcept { return container_; }
  wsrf::WsrfService& service() noexcept { return *service_; }
  wsn::NotificationProducer& producer() noexcept { return *producer_; }
  xmldb::XmlDatabase& db() noexcept { return db_; }
  app::CounterCore& core() noexcept { return *core_; }
  xmldb::DurableStore& durable() noexcept { return *durable_; }

  /// Runs the container's recovery phase (registered hooks: counter
  /// resources + lifetimes, then WSN subscriptions — so a restarted
  /// deployment over a durable backend serves its old state and keeps
  /// notifying). Call before taking traffic when the backend carries
  /// prior state; a fresh backend makes this a no-op.
  std::size_t recover() { return container_.recover(); }

  std::string counter_address() const { return address_base_ + "/Counter"; }
  std::string manager_address() const {
    return address_base_ + "/CounterSubscriptions";
  }
  /// The container's live metrics/trace resource (WSRF + WS-Transfer).
  std::string telemetry_address() const { return address_base_ + "/Telemetry"; }

 private:
  std::string address_base_;
  xmldb::XmlDatabase db_;
  container::Container container_;
  std::unique_ptr<xmldb::DurableStore> durable_;
  std::unique_ptr<app::CounterCore> core_;
  std::unique_ptr<wsrf::ResourceHome> counter_home_;
  std::unique_ptr<wsrf::ResourceHome> subscription_home_;
  std::unique_ptr<wsn::SubscriptionManagerService> manager_;
  std::unique_ptr<wsrf::WsrfService> service_;
  std::unique_ptr<wsn::NotificationProducer> producer_;
  std::unique_ptr<telemetry::TelemetryService> telemetry_;
};

/// Typed client for the WSRF counter ("the WSRF.NET proxies are able to
/// automatically deserialize the XML into run-time objects").
class WsrfCounterClient {
 public:
  WsrfCounterClient(net::SoapCaller& caller, std::string counter_address,
                    container::ProxySecurity security = {});

  /// Calls the service's author-defined create; retargets this client at
  /// the new resource and returns its EPR.
  soap::EndpointReference create();
  /// Attaches to an existing counter resource.
  void attach(soap::EndpointReference epr);

  int get();
  void set(int value);
  int double_value();  // the computed property
  void destroy();

  /// Subscribes `consumer` to CounterValueChanged for this counter;
  /// returns a proxy managing the subscription.
  wsn::SubscriptionProxy subscribe(const soap::EndpointReference& consumer);

 private:
  net::SoapCaller& caller_;
  std::string counter_address_;
  container::ProxySecurity security_;
  wsrf::WsResourceProxy resource_;
};

}  // namespace gs::counter
