// WS-MetadataExchange (lite) for WS-Transfer services.
//
// The paper's third WS-Transfer implementation issue: "no elegant
// mechanism by which the client could easily discover the schemas
// (although emerging specifications like WS-MetadataExchange do seem
// promising)". This module is that emerging mechanism: a service declares
// the schema of each resource type it serves; GetMetadata returns the
// declarations; clients fetch them once and validate documents instead of
// relying on hard-coded expectations.
//
// Schema wire form (per resource type):
//   <mex:MetadataSection Identifier="<type name>">
//     <mex:Element name="{ns}local" content="integer|string|...">
//       ... nested child declarations with minOccurs/maxOccurs ...
//     </mex:Element>
//   </mex:MetadataSection>
#pragma once

#include <map>
#include <memory>
#include <string>

#include "container/proxy.hpp"
#include "wst/service.hpp"
#include "xml/schema.hpp"

namespace gs::wst {

namespace mex {
inline constexpr const char* kNs =
    "http://schemas.xmlsoap.org/ws/2004/09/mex";
const std::string kGetMetadataAction = std::string(kNs) + "/GetMetadata";
}  // namespace mex

/// Serializes an element declaration to the wire form / back.
std::unique_ptr<xml::Element> schema_to_xml(const xml::ElementDecl& decl);
xml::ElementDecl schema_from_xml(const xml::Element& el);

/// Attaches GetMetadata to a WS-Transfer service, advertising one schema
/// per resource type. `type_name` is the MetadataSection identifier
/// ("Counter", "Site", ...).
class MetadataExtension {
 public:
  explicit MetadataExtension(TransferService& service) : service_(service) {
    register_operation();
  }

  /// Declares (or replaces) the schema for a resource type.
  void declare(const std::string& type_name, xml::ElementDecl schema);

 private:
  void register_operation();

  TransferService& service_;
  std::map<std::string, std::unique_ptr<xml::ElementDecl>> schemas_;
};

/// Client side: fetch the advertised schemas from a service.
class MetadataProxy : public container::ProxyBase {
 public:
  using container::ProxyBase::ProxyBase;

  /// All advertised schemas, keyed by type name.
  std::map<std::string, xml::Schema> get_metadata();

  /// Fetches one type's schema; throws SoapFault when the service does not
  /// advertise it.
  xml::Schema get_schema(const std::string& type_name);
};

}  // namespace gs::wst
