// WS-Transfer client proxy.
//
// Deliberately untyped: "Since WS-Transfer deals in terms of raw XML, the
// arguments and return values for the WS-Transfer proxy methods are arrays
// of XML elements" (paper §4.1.3). The client must know the document
// schemas out of band — WS-Transfer's <xsd:any> gap — so this proxy can
// only hand back elements, never deserialize them.
#pragma once

#include <memory>

#include "container/proxy.hpp"
#include "wst/service.hpp"

namespace gs::wst {

class TransferProxy : public container::ProxyBase {
 public:
  using container::ProxyBase::ProxyBase;

  struct CreateResult {
    soap::EndpointReference resource;
    /// Present only when the service modified the submitted representation.
    std::unique_ptr<xml::Element> representation;
  };

  /// Create against the resource factory (the proxy's target EPR).
  CreateResult create(std::unique_ptr<xml::Element> representation);

  /// Get on the targeted resource EPR.
  std::unique_ptr<xml::Element> get();

  /// Put; returns the echoed representation when the service modified it.
  std::unique_ptr<xml::Element> put(std::unique_ptr<xml::Element> replacement);

  /// Delete ("remove": `delete` is reserved).
  void remove();
};

}  // namespace gs::wst
