// WS-Transfer: resources and resource factories (Create/Get/Put/Delete).
//
// Faithful to the paper's implementation choices:
//   * resources are XML documents in the Xindice-substitute database;
//   * Create names the resource with a server-assigned GUID by default,
//     "embedded into a returning EPR as a reference property" — but hooks
//     let a service choose its own naming (Grid-in-a-Box deliberately uses
//     client-legible ids like "<user DN>/<filename>", breaking EPR
//     opaqueness exactly as the paper describes);
//   * the spec does not require Create to be the only way resources come
//     to exist: Get/Put/Delete work on documents seeded out of band;
//   * semantics are best-effort — no lifetime management exists, and the
//     service may modify the representation the client sent;
//   * unlike WSRF, one service may serve MULTIPLE types of resource,
//     dispatching on the structure of the id (the paper's unified
//     ResourceAllocation service does precisely this).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "container/service.hpp"
#include "container/templated.hpp"
#include "soap/namespaces.hpp"
#include "xmldb/database.hpp"

namespace gs::wst {

namespace actions {
const std::string kGet = std::string(soap::ns::kTransfer) + "/Get";
const std::string kPut = std::string(soap::ns::kTransfer) + "/Put";
const std::string kDelete = std::string(soap::ns::kTransfer) + "/Delete";
const std::string kCreate = std::string(soap::ns::kTransfer) + "/Create";
}  // namespace actions

/// The EPR reference property carrying the WS-Transfer resource id.
xml::QName transfer_id_qname();

class TransferService : public container::Service {
 public:
  /// Hook bundle for service-specific semantics. Every hook is optional;
  /// the defaults implement the plain store-what-you-got behaviour of the
  /// paper's counter service.
  struct Hooks {
    /// Names the resource and may transform the representation.
    /// Returns (id, representation-to-store). Default: GUID id, unchanged
    /// representation.
    std::function<std::pair<std::string, std::unique_ptr<xml::Element>>(
        const xml::Element& representation, container::RequestContext& ctx)>
        on_create;
    /// Produces the representation for Get. Default: database fetch by id.
    /// Returning nullptr faults with "unknown resource".
    std::function<std::unique_ptr<xml::Element>(const std::string& id,
                                                container::RequestContext& ctx)>
        on_get;
    /// Applies Put. Default: wholesale replacement of the stored document.
    /// May return a modified representation to echo to the client.
    std::function<std::unique_ptr<xml::Element>(
        const std::string& id, const xml::Element& replacement,
        container::RequestContext& ctx)>
        on_put;
    /// Applies Delete; returns false for unknown resources. Default:
    /// remove the stored document.
    std::function<bool(const std::string& id, container::RequestContext& ctx)>
        on_delete;
  };

  TransferService(std::string name, xmldb::XmlDatabase& db,
                  std::string collection, std::string address,
                  Hooks hooks = Hooks());

  xmldb::XmlDatabase& db() noexcept { return db_; }
  const std::string& collection() const noexcept { return collection_; }
  const std::string& address() const noexcept { return address_; }

  /// EPR for a resource id at this service.
  soap::EndpointReference epr_for(const std::string& id) const;
  /// The id addressed by a request; throws a Sender fault when missing.
  static std::string id_from(const container::RequestContext& ctx);

 private:
  xmldb::XmlDatabase& db_;
  std::string collection_;
  std::string address_;
  Hooks hooks_;
  // Wire fast path: compiled response skeletons for the hottest replies.
  // Get splices the stored octets straight from the database (no parse, no
  // DOM, no writer); Put/Delete acks are fully static skeletons.
  container::TemplatedResponder get_tpl_;
  container::TemplatedResponder put_ack_tpl_;
  container::TemplatedResponder delete_ack_tpl_;
};

}  // namespace gs::wst
