#include "wst/service.hpp"

#include "common/uuid.hpp"

namespace gs::wst {

namespace {
constexpr const char* kWstImplNs = "http://gridstacks.dev/wst";
xml::QName wst(const char* local) { return {soap::ns::kTransfer, local}; }
}  // namespace

xml::QName transfer_id_qname() { return {kWstImplNs, "ResourceID"}; }

soap::EndpointReference TransferService::epr_for(const std::string& id) const {
  soap::EndpointReference epr(address_);
  epr.add_reference_property(transfer_id_qname(), id);
  return epr;
}

std::string TransferService::id_from(const container::RequestContext& ctx) {
  std::optional<std::string> id = ctx.info.reference_header(transfer_id_qname());
  if (!id) {
    throw soap::SoapFault("Sender", "request carries no resource id header");
  }
  return *id;
}

TransferService::TransferService(std::string name, xmldb::XmlDatabase& db,
                                 std::string collection, std::string address,
                                 Hooks hooks)
    : container::Service(std::move(name)),
      db_(db),
      collection_(std::move(collection)),
      address_(std::move(address)),
      hooks_(std::move(hooks)),
      get_tpl_([] {
        soap::ResponseTemplate::Spec spec;
        spec.action = actions::kGet + "Response";
        spec.fragment = true;
        spec.build_payload = [](xml::Element& body) {
          body.append(soap::ResponseTemplate::placeholder());
        };
        return spec;
      }),
      put_ack_tpl_([] {
        soap::ResponseTemplate::Spec spec;
        spec.action = actions::kPut + "Response";
        spec.build_payload = [](xml::Element& body) {
          body.append_element(wst("PutResponse"));
        };
        return spec;
      }),
      delete_ack_tpl_([] {
        soap::ResponseTemplate::Spec spec;
        spec.action = actions::kDelete + "Response";
        spec.build_payload = [](xml::Element& body) {
          body.append_element(wst("DeleteResponse"));
        };
        return spec;
      }) {
  register_operation(actions::kCreate, [this](container::RequestContext& ctx) {
    const xml::Element& representation = ctx.payload();

    std::string id;
    std::unique_ptr<xml::Element> to_store;
    bool modified = false;
    if (hooks_.on_create) {
      auto [hook_id, hook_doc] = hooks_.on_create(representation, ctx);
      id = std::move(hook_id);
      modified = !xml::Element::deep_equal(representation, *hook_doc);
      to_store = std::move(hook_doc);
    } else {
      id = common::new_uuid();
      to_store = representation.clone_element();
    }
    db_.store(collection_, id, *to_store);

    soap::Envelope response =
        container::make_response(ctx, actions::kCreate + "Response");
    xml::Element& created = response.add_payload(wst("ResourceCreated"));
    created.append(epr_for(id).to_xml(wst("EndpointReference")));
    // Per the paper: Create returns a new representation only when the
    // service modified the client's input.
    if (modified) {
      response.body()
          .append_element(wst("Representation"))
          .append(to_store->clone());
    }
    return response;
  });

  register_operation(actions::kGet, [this](container::RequestContext& ctx) {
    std::string id = id_from(ctx);
    // Fast path: splice the stored octets into the compiled skeleton —
    // the representation crosses from database to wire without a parse, a
    // DOM, or a writer pass. Store serialized those octets with the same
    // writer the DOM path would use, so the bytes are identical. Hooked
    // Gets compute their representation and take the DOM path.
    if (!hooks_.on_get) {
      if (auto pr = get_tpl_.start(ctx)) {
        if (!db_.cache_enabled()) {
          auto octets = db_.load_octets(collection_, id);
          if (!octets) {
            throw soap::SoapFault("Sender", "unknown resource '" + id + "'");
          }
          pr->fragment_shared = std::move(octets);
        } else {
          // Cached documents may lack the prefix hints the stored octets
          // carry; render the element with the captured writer state
          // instead of splicing raw bytes (identical output either way).
          auto doc = db_.load(collection_, id);
          if (!doc) {
            throw soap::SoapFault("Sender", "unknown resource '" + id + "'");
          }
          pr->fragment.push_back(std::move(doc));
        }
        return soap::Envelope::make_pending(std::move(pr));
      }
    }
    std::unique_ptr<xml::Element> representation =
        hooks_.on_get ? hooks_.on_get(id, ctx) : db_.load(collection_, id);
    if (!representation) {
      throw soap::SoapFault("Sender", "unknown resource '" + id + "'");
    }
    soap::Envelope response =
        container::make_response(ctx, actions::kGet + "Response");
    response.add_payload(std::move(representation));
    return response;
  });

  register_operation(actions::kPut, [this](container::RequestContext& ctx) {
    std::string id = id_from(ctx);
    const xml::Element& replacement = ctx.payload();

    std::unique_ptr<xml::Element> echoed;
    if (hooks_.on_put) {
      echoed = hooks_.on_put(id, replacement, ctx);
    } else {
      // Default Put: wholesale replacement. Faults when the resource is
      // unknown (replacing nothing is a client error here; services that
      // want upsert provide a hook).
      if (!db_.contains(collection_, id)) {
        throw soap::SoapFault("Sender", "unknown resource '" + id + "'");
      }
      db_.store(collection_, id, replacement);
    }
    if (!echoed) {
      if (auto pr = put_ack_tpl_.start(ctx)) {
        return soap::Envelope::make_pending(std::move(pr));
      }
    }
    soap::Envelope response =
        container::make_response(ctx, actions::kPut + "Response");
    if (echoed) {
      response.add_payload(wst("Representation")).append(std::move(echoed));
    } else {
      response.add_payload(wst("PutResponse"));
    }
    return response;
  });

  register_operation(actions::kDelete, [this](container::RequestContext& ctx) {
    std::string id = id_from(ctx);
    bool removed =
        hooks_.on_delete ? hooks_.on_delete(id, ctx) : db_.remove(collection_, id);
    if (!removed) {
      throw soap::SoapFault("Sender", "unknown resource '" + id + "'");
    }
    if (auto pr = delete_ack_tpl_.start(ctx)) {
      return soap::Envelope::make_pending(std::move(pr));
    }
    soap::Envelope response =
        container::make_response(ctx, actions::kDelete + "Response");
    response.add_payload(wst("DeleteResponse"));
    return response;
  });
}

}  // namespace gs::wst
