#include "wst/metadata.hpp"

#include <limits>

namespace gs::wst {

namespace {

xml::QName mex_qn(const char* local) { return {mex::kNs, local}; }

const char* content_name(xml::ContentType type) {
  switch (type) {
    case xml::ContentType::kNone: return "none";
    case xml::ContentType::kString: return "string";
    case xml::ContentType::kInteger: return "integer";
    case xml::ContentType::kDouble: return "double";
    case xml::ContentType::kBoolean: return "boolean";
    case xml::ContentType::kAny: return "any";
  }
  return "none";
}

xml::ContentType content_from_name(const std::string& name) {
  if (name == "string") return xml::ContentType::kString;
  if (name == "integer") return xml::ContentType::kInteger;
  if (name == "double") return xml::ContentType::kDouble;
  if (name == "boolean") return xml::ContentType::kBoolean;
  if (name == "any") return xml::ContentType::kAny;
  return xml::ContentType::kNone;
}

// "{uri}local" <-> QName (Clark notation, the same form QName::clark emits).
xml::QName qname_from_clark(const std::string& clark) {
  if (!clark.empty() && clark[0] == '{') {
    size_t close = clark.find('}');
    if (close != std::string::npos) {
      return {clark.substr(1, close - 1), clark.substr(close + 1)};
    }
  }
  return xml::QName(clark);
}

}  // namespace

std::unique_ptr<xml::Element> schema_to_xml(const xml::ElementDecl& decl) {
  auto el = std::make_unique<xml::Element>(mex_qn("Element"));
  el->set_attr("name", decl.name().clark());
  el->set_attr("content", content_name(decl.content()));
  if (decl.is_open()) el->set_attr("open", "true");
  for (const auto& attr : decl.required_attrs()) {
    el->append_element(mex_qn("RequiredAttribute"))
        .set_attr("name", attr.clark());
  }
  for (const auto& child : decl.children()) {
    xml::Element& child_el =
        static_cast<xml::Element&>(el->append(schema_to_xml(*child.decl)));
    child_el.set_attr("minOccurs", std::to_string(child.min_occurs));
    child_el.set_attr("maxOccurs",
                      child.max_occurs == std::numeric_limits<size_t>::max()
                          ? "unbounded"
                          : std::to_string(child.max_occurs));
  }
  return el;
}

xml::ElementDecl schema_from_xml(const xml::Element& el) {
  xml::ElementDecl decl(qname_from_clark(el.attr("name").value_or("")),
                        content_from_name(el.attr("content").value_or("none")));
  if (el.attr("open") == "true") decl.open_content();
  for (const xml::Element* child : el.child_elements()) {
    if (child->name() == mex_qn("RequiredAttribute")) {
      decl.require_attr(qname_from_clark(child->attr("name").value_or("")));
    } else if (child->name() == mex_qn("Element")) {
      size_t min_occurs = 1, max_occurs = 1;
      if (auto v = child->attr("minOccurs")) min_occurs = std::stoul(*v);
      if (auto v = child->attr("maxOccurs")) {
        max_occurs = *v == "unbounded" ? std::numeric_limits<size_t>::max()
                                       : std::stoul(*v);
      }
      decl.child(schema_from_xml(*child), min_occurs, max_occurs);
    }
  }
  return decl;
}

void MetadataExtension::declare(const std::string& type_name,
                                xml::ElementDecl schema) {
  schemas_[type_name] =
      std::make_unique<xml::ElementDecl>(std::move(schema));
}

void MetadataExtension::register_operation() {
  service_.register_operation(
      mex::kGetMetadataAction, [this](container::RequestContext& ctx) {
        soap::Envelope response =
            container::make_response(ctx, mex::kGetMetadataAction + "Response");
        xml::Element& body = response.add_payload(mex_qn("Metadata"));
        for (const auto& [type_name, decl] : schemas_) {
          xml::Element& section = body.append_element(mex_qn("MetadataSection"));
          section.set_attr("Identifier", type_name);
          section.append(schema_to_xml(*decl));
        }
        return response;
      });
}

std::map<std::string, xml::Schema> MetadataProxy::get_metadata() {
  soap::Envelope response = invoke(mex::kGetMetadataAction);
  std::map<std::string, xml::Schema> out;
  const xml::Element* metadata = response.payload();
  if (!metadata) return out;
  for (const xml::Element* section :
       metadata->children_named(mex_qn("MetadataSection"))) {
    auto kids = section->child_elements();
    if (kids.empty()) continue;
    out.emplace(section->attr("Identifier").value_or(""),
                xml::Schema(schema_from_xml(*kids.front())));
  }
  return out;
}

xml::Schema MetadataProxy::get_schema(const std::string& type_name) {
  auto all = get_metadata();
  auto it = all.find(type_name);
  if (it == all.end()) {
    throw soap::SoapFault("Sender", "service advertises no schema for type '" +
                                        type_name + "'");
  }
  return std::move(it->second);
}

}  // namespace gs::wst
