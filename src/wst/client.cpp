#include "wst/client.hpp"

namespace gs::wst {

namespace {
xml::QName wst(const char* local) { return {soap::ns::kTransfer, local}; }
}  // namespace

TransferProxy::CreateResult TransferProxy::create(
    std::unique_ptr<xml::Element> representation) {
  soap::Envelope response = invoke(actions::kCreate, std::move(representation));
  const xml::Element* created = nullptr;
  for (const xml::Element* el : response.body().child_elements()) {
    if (el->name() == wst("ResourceCreated")) created = el;
  }
  if (!created) throw soap::SoapFault("Receiver", "malformed Create response");
  const xml::Element* epr_el = created->child(wst("EndpointReference"));
  if (!epr_el) throw soap::SoapFault("Receiver", "Create response has no EPR");

  CreateResult result;
  result.resource = soap::EndpointReference::from_xml(*epr_el);
  for (const xml::Element* el : response.body().child_elements()) {
    if (el->name() == wst("Representation")) {
      auto kids = el->child_elements();
      if (!kids.empty()) result.representation = kids.front()->clone_element();
    }
  }
  return result;
}

std::unique_ptr<xml::Element> TransferProxy::get() {
  soap::Envelope response = invoke(actions::kGet);
  const xml::Element* payload = response.payload();
  if (!payload) throw soap::SoapFault("Receiver", "empty Get response");
  return payload->clone_element();
}

std::unique_ptr<xml::Element> TransferProxy::put(
    std::unique_ptr<xml::Element> replacement) {
  soap::Envelope response = invoke(actions::kPut, std::move(replacement));
  const xml::Element* payload = response.payload();
  if (payload && payload->name() == wst("Representation")) {
    auto kids = payload->child_elements();
    if (!kids.empty()) return kids.front()->clone_element();
  }
  return nullptr;
}

void TransferProxy::remove() { invoke(actions::kDelete); }

}  // namespace gs::wst
