// Batch-scheduler throughput: 10k queued jobs placed across a 512-node
// fleet.
//
// The figure of merit is controller work, not simulated job runtime: the
// ManualClock jumps straight to the scheduler's next_event_time between
// passes, so wall time measures priority sorting, fair-share decay, slot
// accounting, EASY-backfill shadow replay, and state bookkeeping — the
// per-pass costs that bound how fast a real controller turns the queue
// over. The job mix (narrow/medium/whole-node at coarse durations, four
// accounts) keeps wide head jobs blocking regularly so the backfill path
// runs for real; backfill utilization = sched.backfill_placed /
// sched.jobs_placed is reported alongside jobs/sec.
//
// Hand-rolled main (the unit of measurement is draining one 10k-job queue,
// not one op). Writes BENCH_scheduler.json with an ops_per_sec record, so
// scripts/bench_diff.py gates placement throughput automatically.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.hpp"
#include "sched/scheduler.hpp"

namespace {

using namespace gs;

constexpr int kJobs = 10'000;
constexpr size_t kNodes = 512;
constexpr unsigned kCpusPerNode = 8;

// Deterministic xorshift — the mix must be identical run to run so
// bench_diff compares like with like.
struct Rng {
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  std::uint64_t next(std::uint64_t bound) { return next() % bound; }
};

sched::JobSpec make_job(Rng& rng) {
  static const char* kAccounts[] = {"astro", "bio", "climate", "default"};
  sched::JobSpec spec;
  spec.partition = "batch";
  spec.account = kAccounts[rng.next(4)];
  // 70% narrow, 20% medium, 10% whole-node (the heads that force
  // reservations and give backfill gaps to fill).
  std::uint64_t roll = rng.next(10);
  if (roll < 7) {
    spec.cpus = 1 + static_cast<unsigned>(rng.next(2));  // 1-2
  } else if (roll < 9) {
    spec.cpus = 4;
  } else {
    spec.cpus = kCpusPerNode;
  }
  // Coarse durations so completions bunch and passes stay meaningful.
  common::TimeMs duration = (1 + static_cast<common::TimeMs>(rng.next(8))) * 5000;
  spec.command = "sim:duration=" + std::to_string(duration) + ",exit=0";
  spec.time_limit_ms = duration;  // accurate limits: backfill's best case
  spec.mem_mb = 100;
  return spec;
}

}  // namespace

int main() {
  common::ManualClock clock(1000);
  app::JobRunner runner(clock);
  sched::NodeRegistry nodes;

  sched::Scheduler::Config config;
  config.clock = &clock;
  config.runner = &runner;
  config.nodes = &nodes;
  sched::Scheduler scheduler(config);
  scheduler.add_partition({.name = "batch"});
  for (const char* account : {"astro", "bio", "climate", "default"}) {
    scheduler.set_account_shares(account, 1.0);
  }
  for (size_t i = 0; i < kNodes; ++i) {
    nodes.upsert("node" + std::to_string(i), {"batch"}, kCpusPerNode, 16'384,
                 clock.now());
  }

  Rng rng;
  for (int i = 0; i < kJobs; ++i) scheduler.submit(make_job(rng));

  std::printf("scheduler: %d jobs queued, %zu nodes x %u cpus\n", kJobs,
              kNodes, kCpusPerNode);

  auto before = telemetry::MetricsRegistry::global().snapshot();
  auto wall_before = std::chrono::steady_clock::now();
  size_t passes = 0;
  while (scheduler.queue_depth() > 0 || scheduler.running_count() > 0) {
    scheduler.schedule_pass();
    ++passes;
    if (scheduler.queue_depth() == 0 && scheduler.running_count() == 0) break;
    auto next = scheduler.next_event_time();
    if (next && *next > clock.now()) clock.advance(*next - clock.now());
    // The whole fleet stays healthy: heartbeats are registry calls here
    // (their SOAP cost is the fabric's concern, measured elsewhere).
    for (size_t i = 0; i < kNodes; ++i) {
      nodes.heartbeat("node" + std::to_string(i), clock.now());
    }
  }
  auto wall_after = std::chrono::steady_clock::now();
  auto after = telemetry::MetricsRegistry::global().snapshot();

  double seconds =
      std::chrono::duration<double>(wall_after - wall_before).count();
  telemetry::MetricsSnapshot delta = telemetry::delta(before, after);
  std::uint64_t placed = delta.counters["sched.jobs_placed"];
  std::uint64_t backfilled = delta.counters["sched.backfill_placed"];
  std::uint64_t completed = delta.counters["sched.jobs_completed"];
  double jobs_per_sec = static_cast<double>(placed) / seconds;
  double backfill_util =
      placed ? static_cast<double>(backfilled) / static_cast<double>(placed) : 0;

  std::printf(
      "  placed %llu (backfilled %llu, %.1f%%), completed %llu in %zu "
      "passes, %.3fs wall -> %.0f jobs/sec placed\n",
      static_cast<unsigned long long>(placed),
      static_cast<unsigned long long>(backfilled), backfill_util * 100.0,
      static_cast<unsigned long long>(completed),
      passes, seconds, jobs_per_sec);

  bench::BenchTelemetry::instance().add(
      "scheduler/drain_10k_jobs/nodes:512", static_cast<std::int64_t>(placed),
      delta, jobs_per_sec);
  bench::BenchTelemetry::instance().write("scheduler");

  // The run is only meaningful if every job actually finished and the
  // backfill path really ran.
  if (completed != static_cast<std::uint64_t>(kJobs)) {
    std::fprintf(stderr, "FAIL: %llu of %d jobs completed\n",
                 static_cast<unsigned long long>(completed), kJobs);
    return 1;
  }
  if (backfilled == 0) {
    std::fprintf(stderr, "FAIL: backfill never fired — mix too easy\n");
    return 1;
  }
  return 0;
}
