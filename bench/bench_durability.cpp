// Durability cost: what does the WAL charge for surviving kill -9?
//
// The storage engine's pitch (DESIGN.md §13) is that group commit makes
// durable writes affordable: a write window shares one append + one sync,
// so the per-document cost falls as the window widens. Machine-checked
// here with the document-store workload the container actually runs —
// serialize an XML document, hand the octets to the backend:
//
//   throughput  pipelined store throughput against the WalBackend at
//               write windows of 1 / 8 / 64 documents (put_async + drain
//               per window; window 1 is the per-op durable ack), vs. the
//               MemoryBackend storing the same serialized documents (the
//               no-durability ceiling). Gate: at window 64 the WAL must
//               hold >= 50% of the memory backend's store throughput —
//               durability may cost at most half.
//   recovery    cold-start replay of a 10k-document log: construct a
//               fresh engine over the same medium and time recover().
//               Gate: every record applied, and the wall time is reported
//               as recovery_ms for bench_diff.py to hold steady.
//
// Hand-rolled main (the unit of measurement is a pipelined trial).
// Writes BENCH_durability.json; exits nonzero when a gate fails.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "harness.hpp"
#include "telemetry/metrics.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"
#include "xmldb/backend.hpp"
#include "xmldb/log_device.hpp"
#include "xmldb/wal.hpp"

namespace {

using namespace gs;
using Clock = std::chrono::steady_clock;

constexpr int kTotalDocs = 12'800;     // documents stored per rep
constexpr int kReps = 3;               // best-of, both sides (noise guard)
constexpr int kRecoveryDocs = 10'000;
constexpr double kMinThroughputShare = 0.5;  // wal64 / memory64 floor

std::unique_ptr<xml::Element> make_doc() {
  return xml::parse_element(
      "<doc><owner>CN=bench,O=VO</owner>"
      "<body>0123456789012345678901234567890123456789012345678901234567890"
      "123456789</body><seq>0</seq></doc>");
}

/// Pipelined document-store throughput: serialize + write kTotalDocs
/// documents, acknowledging durability every `window` documents via
/// `barrier` (the WAL's drain(); a no-op for the memory backend). Both
/// sides pay the same serialization — the gate compares storage engines,
/// not serializers. Best of kReps passes: a single 10ms scheduling blip
/// is a 100% error at these trial lengths, and the gate should compare
/// engines, not timeslices.
template <typename Put, typename Barrier>
double store_ops_per_sec(int window, Put put, Barrier barrier) {
  auto doc = make_doc();
  xml::Element* seq = doc->child_local("seq");
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    auto t0 = Clock::now();
    for (int i = 0; i < kTotalDocs; ++i) {
      seq->set_text(std::to_string(i));
      put("doc-" + std::to_string(i % 256), xml::write(*doc));
      if ((i + 1) % window == 0) barrier();
    }
    barrier();
    double seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    best = std::max(best, static_cast<double>(kTotalDocs) / seconds);
  }
  return best;
}

struct Trial {
  const char* name;
  int window;
  double wal_ops = 0.0;
  double memory_ops = 0.0;
};

}  // namespace

int main() {
  std::printf("durable document-store throughput, %d docs per trial\n",
              kTotalDocs);

  Trial trials[] = {{"batch1", 1}, {"batch8", 8}, {"batch64", 64}};
  for (Trial& trial : trials) {
    bench::BenchTelemetry::instance().sample_series();
    auto before = telemetry::MetricsRegistry::global().snapshot();
    {
      xmldb::WalBackend wal(std::make_shared<xmldb::MemoryLogDevice>(),
                            std::make_shared<xmldb::MemoryLogDevice>());
      trial.wal_ops = store_ops_per_sec(
          trial.window,
          [&wal](const std::string& id, std::string octets) {
            wal.put_async("bench", id, octets);
          },
          [&wal] { wal.drain(); });
    }
    {
      xmldb::MemoryBackend memory;
      trial.memory_ops = store_ops_per_sec(
          trial.window,
          [&memory](const std::string& id, std::string octets) {
            memory.put("bench", id, octets);
          },
          [] {});
    }
    bench::BenchTelemetry::instance().add(
        std::string("durability/wal_store_") + trial.name, kTotalDocs,
        telemetry::delta(before,
                         telemetry::MetricsRegistry::global().snapshot()),
        trial.wal_ops,
        {{"memory_ops_per_sec", trial.memory_ops},
         {"window", static_cast<double>(trial.window)}});
    std::printf("  %-8s wal=%9.0f docs/s  memory=%9.0f docs/s  (%.0f%%)\n",
                trial.name, trial.wal_ops, trial.memory_ops,
                100.0 * trial.wal_ops / trial.memory_ops);
  }

  // Cold recovery: populate a medium, then time a fresh engine's replay.
  bench::BenchTelemetry::instance().sample_series();
  auto log = std::make_shared<xmldb::MemoryLogDevice>();
  auto snap = std::make_shared<xmldb::MemoryLogDevice>();
  {
    xmldb::WalBackend wal(log, snap);
    auto doc = make_doc();
    for (int i = 0; i < kRecoveryDocs; ++i) {
      wal.put_async("bench", "doc-" + std::to_string(i), xml::write(*doc));
    }
    wal.drain();
  }
  auto boot_log = std::make_shared<xmldb::MemoryLogDevice>(log->contents());
  auto boot_snap = std::make_shared<xmldb::MemoryLogDevice>(snap->contents());
  auto before = telemetry::MetricsRegistry::global().snapshot();
  auto t0 = Clock::now();
  auto recovered = std::make_unique<xmldb::WalBackend>(boot_log, boot_snap);
  double recovery_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  std::uint64_t applied = recovered->stats().recovered_records;
  bench::BenchTelemetry::instance().add(
      "durability/recovery_10k", kRecoveryDocs,
      telemetry::delta(before,
                       telemetry::MetricsRegistry::global().snapshot()),
      0.0,
      {{"recovery_ms", recovery_ms},
       {"docs", static_cast<double>(kRecoveryDocs)}});
  std::printf("  recovery: %d docs in %.1f ms (%llu records applied)\n",
              kRecoveryDocs, recovery_ms,
              static_cast<unsigned long long>(applied));

  bench::BenchTelemetry::instance().sample_series();
  bench::BenchTelemetry::instance().write("durability");

  bool ok = true;
  const Trial& big = trials[2];
  double share = big.wal_ops / big.memory_ops;
  if (share < kMinThroughputShare) {
    std::printf("FAIL: wal store throughput at window 64 %.0f docs/s is "
                "%.0f%% of the memory backend's %.0f docs/s (floor %.0f%%)\n",
                big.wal_ops, 100.0 * share, big.memory_ops,
                100.0 * kMinThroughputShare);
    ok = false;
  } else {
    std::printf("PASS: wal holds %.0f%% of memory-backend store throughput "
                "at window 64 (floor %.0f%%)\n",
                100.0 * share, 100.0 * kMinThroughputShare);
  }
  if (applied != static_cast<std::uint64_t>(kRecoveryDocs)) {
    std::printf("FAIL: recovery applied %llu of %d records\n",
                static_cast<unsigned long long>(applied), kRecoveryDocs);
    ok = false;
  } else {
    std::printf("PASS: recovery replayed all %d records in %.1f ms\n",
                kRecoveryDocs, recovery_ms);
  }
  return ok ? 0 : 1;
}
