// Shared registration for the three "hello world" figures (2, 3, 4):
// the five counter operations across the four {stack} x {locality} series
// the paper plots, at a given security level.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "harness.hpp"

namespace gs::bench {

inline void register_hello_world(const char* figure, Security security) {
  struct Combo {
    Stack stack;
    bool distributed;
    const char* label;
  };
  static const Combo kCombos[] = {
      {Stack::kWst, false, "Co-located_WS-Transfer+WS-Eventing"},
      {Stack::kWsrf, false, "Co-located_WSRF.NET"},
      {Stack::kWst, true, "Distributed_WS-Transfer+WS-Eventing"},
      {Stack::kWsrf, true, "Distributed_WSRF.NET"},
  };

  for (const auto& combo : kCombos) {
    auto rig = std::make_shared<CounterRig>(combo.stack, security,
                                            combo.distributed);
    auto name = [&](const char* op) {
      return std::string(figure) + "/" + op + "/" + combo.label;
    };
    auto add = [&](const char* op, auto fn) {
      // Bracket every benchmark with registry snapshots so the figure's
      // JSON carries a per-layer breakdown next to each end-to-end bar.
      std::string bench_name = name(op);
      auto instrumented = [fn, bench_name](benchmark::State& s) {
        run_with_telemetry(s, bench_name, fn);
      };
      benchmark::RegisterBenchmark(bench_name.c_str(), instrumented)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    };
    add("Get", [rig](benchmark::State& s) {
      run_metered(s, rig->meter(), [&] { rig->op_get(); });
    });
    add("Set", [rig](benchmark::State& s) {
      run_metered(s, rig->meter(), [&] { rig->op_set(); });
    });
    add("Create", [rig](benchmark::State& s) {
      run_metered(s, rig->meter(), [&] { rig->op_create(); });
    });
    add("Destroy", [rig](benchmark::State& s) {
      // Each destroy consumes the counter minted by the untimed prep.
      run_metered_with_prep(
          s, rig->meter(), [&] { rig->op_create(); }, [&] { rig->op_destroy(); },
          [] {});
    });
    add("Notify", [rig](benchmark::State& s) {
      rig->subscribe_notifier();
      run_metered(s, rig->meter(), [&] { rig->op_notify(); });
      rig->unsubscribe_notifier();
    });
  }
}

inline int hello_world_main(int argc, char** argv, const char* figure,
                            const char* title, Security security) {
  std::printf("%s: testing \"Hello World\" with %s\n", figure, title);
  std::printf(
      "Series match the paper's bars; times are ms/request =\n"
      "real compute (XML, DB, crypto) + simulated wire (see DESIGN.md).\n\n");
  register_hello_world(figure, security);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  BenchTelemetry::instance().write(figure);
  return 0;
}

}  // namespace gs::bench
