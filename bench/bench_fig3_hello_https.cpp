// Figure 3: "Hello World" counter over HTTPS.
// Paper shape to reproduce: the same trends as Figure 2 with a modest
// uniform overhead — "Due to socket caching, HTTPS performance is much
// faster" than per-message X.509 signing, because the TLS handshake is
// paid once per connection and resumed from the session cache thereafter.
#include "hello_world_common.hpp"

int main(int argc, char** argv) {
  return gs::bench::hello_world_main(argc, argv, "Fig3", "https",
                                     gs::bench::Security::kHttps);
}
