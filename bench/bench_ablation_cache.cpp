// Ablation: the WSRF.NET write-through resource cache.
// Explains the Figure 2 Set gap: with the cache, SetResourceProperties
// serves the read-modify-write's read from memory; without it, every load
// goes back to the database and re-parses — exactly the extra read the
// WS-Transfer counter always pays.
#include <cstdio>
#include <filesystem>

#include "harness.hpp"

namespace gs::bench {
namespace {

struct CacheRig {
  net::VirtualNetwork net{net::NetworkProfile::colocated()};
  net::WireMeter meter;
  net::VirtualCaller caller{net, {.meter = &meter}};
  net::VirtualCaller sink{net, {.keep_alive = false}};
  std::unique_ptr<counter::WsrfCounterDeployment> dep;
  std::unique_ptr<counter::WsrfCounterClient> client;
  int value = 0;

  explicit CacheRig(bool cache) {
    auto root = std::filesystem::temp_directory_path() /
                (cache ? "gs-ablate-cache-on" : "gs-ablate-cache-off");
    std::filesystem::remove_all(root);
    dep = std::make_unique<counter::WsrfCounterDeployment>(
        counter::WsrfCounterDeployment::Params{
            .backend = std::make_unique<xmldb::FileBackend>(root),
            .write_through_cache = cache,
            .container = {},
            .notification_sink = &sink,
            .address_base = "http://vo.example",
        });
    net.bind("vo.example", dep->container());
    client = std::make_unique<counter::WsrfCounterClient>(
        caller, dep->counter_address());
    client->create();
  }
};

void register_benches() {
  for (bool cache : {true, false}) {
    auto rig = std::make_shared<CacheRig>(cache);
    const char* suffix = cache ? "cache_on" : "cache_off";
    std::string set_name = std::string("AblationCache/Set/") + suffix;
    benchmark::RegisterBenchmark(
        set_name.c_str(),
        [rig](benchmark::State& s) {
          run_metered(s, rig->meter, [&] { rig->client->set(++rig->value); });
          s.counters["db_backend_reads"] = static_cast<double>(
              rig->dep->db().stats().backend_reads);
        })
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
    std::string get_name = std::string("AblationCache/Get/") + suffix;
    benchmark::RegisterBenchmark(
        get_name.c_str(),
        [rig](benchmark::State& s) {
          run_metered(s, rig->meter, [&] {
            int v = rig->client->get();
            benchmark::DoNotOptimize(v);
          });
        })
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace gs::bench

int main(int argc, char** argv) {
  std::printf(
      "Ablation: WSRF.NET write-through resource cache on/off.\n"
      "With the cache, Set's read-back is served from memory (zero\n"
      "db_backend_reads); without it the service re-reads and re-parses\n"
      "the resource document on every operation, like the unoptimized\n"
      "WS-Transfer implementation.\n\n");
  gs::bench::register_benches();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
