// Ablation: the message cost of brokered / demand-based notification.
// The paper (§3.1): "a demand based publisher registration interaction can
// involve as many as six separate Web services ... More messages are
// generated in response to a demand based publisher scenario than in any
// other spec, by what we estimate to be an order of magnitude at a
// minimum." This bench counts wire messages for the three ways a consumer
// can come to receive one publisher's event:
//   direct    — consumer subscribes straight at the producer
//   brokered  — producer registered at a broker (always-on relay)
//   demand    — demand-based registration incl. the pause/resume traffic
#include <cstdio>

#include "container/container.hpp"
#include "harness.hpp"
#include "wsn/broker.hpp"
#include "wsn/client.hpp"
#include "wsn/consumer.hpp"
#include "wsn/producer.hpp"

namespace gs::bench {
namespace {

// A publisher + broker + consumer world, rebuilt per measurement.
struct World {
  common::ManualClock clock{0};
  net::VirtualNetwork net;
  net::WireMeter meter;
  std::unique_ptr<net::VirtualCaller> caller;

  xmldb::XmlDatabase pub_db{std::make_unique<xmldb::MemoryBackend>(), {}};
  container::Container pub_container{{.clock = &clock}};
  std::unique_ptr<wsrf::ResourceHome> pub_subs;
  std::unique_ptr<wsn::SubscriptionManagerService> pub_manager;
  std::unique_ptr<container::Service> source;
  std::unique_ptr<wsn::NotificationProducer> producer;

  xmldb::XmlDatabase broker_db{std::make_unique<xmldb::MemoryBackend>(), {}};
  container::Container broker_container{{.clock = &clock}};
  std::unique_ptr<wsrf::ResourceHome> broker_subs;
  std::unique_ptr<wsrf::ResourceHome> registrations;
  std::unique_ptr<wsn::SubscriptionManagerService> broker_manager;
  std::unique_ptr<wsn::BrokerService> broker;

  wsn::NotificationConsumer consumer;

  World() {
    caller = std::make_unique<net::VirtualCaller>(
        net, net::VirtualCaller::Options{.meter = &meter});
    pub_subs = std::make_unique<wsrf::ResourceHome>(pub_db, "subs",
                                                    &pub_container.lifetime());
    pub_manager = std::make_unique<wsn::SubscriptionManagerService>(
        *pub_subs, "http://pub/Subs");
    source = std::make_unique<container::Service>("Source");
    wsn::TopicNamespace topics;
    topics.add("events/tick");
    producer = std::make_unique<wsn::NotificationProducer>(
        wsn::NotificationProducer::Config{caller.get(), "http://pub/Source",
                                          pub_manager.get(), &clock},
        std::move(topics));
    producer->register_into(*source);
    pub_container.deploy("/Source", *source);
    pub_container.deploy("/Subs", *pub_manager);
    net.bind("pub", pub_container);

    broker_subs = std::make_unique<wsrf::ResourceHome>(
        broker_db, "bsubs", &broker_container.lifetime());
    registrations = std::make_unique<wsrf::ResourceHome>(
        broker_db, "reg", &broker_container.lifetime());
    broker_manager = std::make_unique<wsn::SubscriptionManagerService>(
        *broker_subs, "http://broker/Subs");
    wsn::TopicNamespace broker_topics;
    broker_topics.add("events/tick");
    broker = std::make_unique<wsn::BrokerService>(
        wsn::BrokerService::Config{caller.get(), "http://broker/Broker",
                                   broker_manager.get(), &clock},
        *registrations, std::move(broker_topics));
    broker_container.deploy("/Broker", *broker);
    broker_container.deploy("/Subs", *broker_manager);
    net.bind("broker", broker_container);

    net.bind("c", consumer);
  }

  wsn::Filter tick_filter() {
    wsn::Filter f;
    f.set_topic(wsn::TopicExpression::parse(
        wsn::TopicExpression::Dialect::kConcrete, "events/tick"));
    return f;
  }

  std::unique_ptr<xml::Element> event() {
    auto e = std::make_unique<xml::Element>(xml::QName("urn:bench", "Tick"));
    e->append_element(xml::QName("urn:bench", "n")).set_text("1");
    return e;
  }
};

// Messages for: setup (subscribe/register) + one publish reaching the
// consumer + teardown (consumer unsubscribe + demand recheck).
void scenario_direct(benchmark::State& state) {
  for (auto _ : state) {
    World w;
    w.meter.reset();
    wsn::NotificationProducerProxy proxy(
        *w.caller, soap::EndpointReference("http://pub/Source"));
    soap::EndpointReference sub =
        proxy.subscribe(soap::EndpointReference("http://c/sink"), w.tick_filter());
    auto ev = w.event();
    w.producer->notify("events/tick", *ev);
    wsn::SubscriptionProxy(*w.caller, sub).unsubscribe();
    state.counters["messages"] = static_cast<double>(w.meter.messages());
    state.SetIterationTime(1e-3);  // time is not the point; messages are
  }
}

void scenario_brokered(benchmark::State& state) {
  for (auto _ : state) {
    World w;
    w.meter.reset();
    wsn::BrokerProxy reg(*w.caller, soap::EndpointReference("http://broker/Broker"));
    reg.register_publisher(soap::EndpointReference("http://pub/Source"),
                           {"events/tick"}, /*demand_based=*/false);
    wsn::NotificationProducerProxy proxy(
        *w.caller, soap::EndpointReference("http://broker/Broker"));
    soap::EndpointReference sub =
        proxy.subscribe(soap::EndpointReference("http://c/sink"), w.tick_filter());
    auto ev = w.event();
    w.producer->notify("events/tick", *ev);
    wsn::SubscriptionProxy(*w.caller, sub).unsubscribe();
    state.counters["messages"] = static_cast<double>(w.meter.messages());
    state.SetIterationTime(1e-3);
  }
}

void scenario_demand(benchmark::State& state) {
  for (auto _ : state) {
    World w;
    w.meter.reset();
    wsn::BrokerProxy reg(*w.caller, soap::EndpointReference("http://broker/Broker"));
    reg.register_publisher(soap::EndpointReference("http://pub/Source"),
                           {"events/tick"}, /*demand_based=*/true);
    // Paused publish (reaches nobody, still a legal publish attempt).
    auto ev = w.event();
    w.producer->notify("events/tick", *ev);
    // Consumer arrives -> broker resumes; publish; consumer leaves ->
    // broker pauses again.
    wsn::NotificationProducerProxy proxy(
        *w.caller, soap::EndpointReference("http://broker/Broker"));
    soap::EndpointReference sub =
        proxy.subscribe(soap::EndpointReference("http://c/sink"), w.tick_filter());
    w.producer->notify("events/tick", *ev);
    wsn::SubscriptionProxy(*w.caller, sub).unsubscribe();
    w.broker->recheck_demand();
    state.counters["messages"] = static_cast<double>(w.meter.messages());
    state.SetIterationTime(1e-3);
  }
}

}  // namespace
}  // namespace gs::bench

BENCHMARK(gs::bench::scenario_direct)
    ->Name("AblationBrokered/DirectSubscription")
    ->UseManualTime()->Iterations(3);
BENCHMARK(gs::bench::scenario_brokered)
    ->Name("AblationBrokered/BrokeredAlwaysOn")
    ->UseManualTime()->Iterations(3);
BENCHMARK(gs::bench::scenario_demand)
    ->Name("AblationBrokered/DemandBasedPublishing")
    ->UseManualTime()->Iterations(3);

int main(int argc, char** argv) {
  std::printf(
      "Ablation: wire messages to get one publisher's event to one consumer\n"
      "(setup + publish + teardown). The 'messages' counter is the result;\n"
      "demand-based publishing multiplies control traffic across up to six\n"
      "services, as the paper warns.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
