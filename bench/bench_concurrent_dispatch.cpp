// Concurrent-dispatch scaling: N client threads against one container.
//
// What this measures is the container's ability to *overlap* requests —
// the sharded registry, per-resource lock stripes, and lock-free metric
// handles on the hot path. Per-request cost is dominated by a simulated
// backend-I/O stage composed into the handler chain (a sleep standing in
// for a remote database or compute call), so on any core count the figure
// of merit is how much of that blocked time concurrent requests hide:
// a serializing container stays flat as threads grow; this one should
// reach >= 3x single-thread throughput at 8 client threads.
//
// Hand-rolled main (no google-benchmark loop: the unit of measurement is
// one multi-threaded trial, not one op). Writes BENCH_concurrent_dispatch.json
// with an ops_per_sec record per thread count; exits nonzero when the
// 8-thread speedup misses 3x, so the scaling claim is machine-checked.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "harness.hpp"

namespace {

using namespace gs;

/// Stand-in for a blocking backend call (remote database, compute job):
/// holds the request for a fixed wall-clock interval without burning CPU,
/// the component of request latency that concurrency can actually hide.
class SimulatedBackendIoHandler final : public container::Handler {
 public:
  static constexpr std::chrono::milliseconds kDelay{2};

  const char* name() const noexcept override { return "simulated-backend-io"; }
  void handle(container::PipelineContext& ctx, Next next) override {
    std::this_thread::sleep_for(kDelay);
    next(ctx);
  }
};

struct Trial {
  int threads;
  double ops_per_sec;
  std::int64_t total_ops;
};

constexpr int kOpsPerThread = 100;  // each op is one set or get request

Trial run_trial(net::VirtualNetwork& net, counter::WstCounterDeployment& wst,
                int thread_count) {
  // Per-thread callers and counters are created outside the timed window;
  // the measurement is request dispatch, not setup.
  struct Worker {
    std::unique_ptr<net::VirtualCaller> caller;
    std::unique_ptr<counter::WstCounterClient> client;
  };
  std::vector<Worker> workers;
  for (int t = 0; t < thread_count; ++t) {
    auto caller = std::make_unique<net::VirtualCaller>(net, net::VirtualCaller::Options{});
    auto client = std::make_unique<counter::WstCounterClient>(
        *caller, wst.counter_address(), wst.source_address());
    client->create();
    workers.push_back({std::move(caller), std::move(client)});
  }

  auto before = telemetry::MetricsRegistry::global().snapshot();
  auto wall_before = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (Worker& w : workers) {
    threads.emplace_back([&w] {
      for (int i = 0; i < kOpsPerThread / 2; ++i) {
        w.client->set(i);
        w.client->get();
      }
    });
  }
  for (auto& t : threads) t.join();
  auto wall_after = std::chrono::steady_clock::now();
  auto after = telemetry::MetricsRegistry::global().snapshot();

  double seconds = std::chrono::duration<double>(wall_after - wall_before).count();
  std::int64_t total_ops = static_cast<std::int64_t>(thread_count) * kOpsPerThread;
  double ops_per_sec = static_cast<double>(total_ops) / seconds;

  for (Worker& w : workers) w.client->remove();

  bench::BenchTelemetry::instance().add(
      "concurrent_dispatch/threads:" + std::to_string(thread_count), total_ops,
      telemetry::delta(before, after), ops_per_sec);
  return {thread_count, ops_per_sec, total_ops};
}

/// Wire-path trial: same request mix, NO simulated backend stage, so
/// per-request cost is pure container work (parse, dispatch, database
/// touch, serialize) and the arena/template fast path is the variable.
struct WireTrial {
  double ops_per_sec;
  double nodes_per_request;
};

WireTrial run_wire_trial(net::VirtualNetwork& net,
                         counter::WstCounterDeployment& wst, bool fast_path,
                         int thread_count) {
  soap::Envelope::set_wire_fast_path(fast_path);
  struct Worker {
    std::unique_ptr<net::VirtualCaller> caller;
    std::unique_ptr<counter::WstCounterClient> client;
  };
  std::vector<Worker> workers;
  for (int t = 0; t < thread_count; ++t) {
    auto caller = std::make_unique<net::VirtualCaller>(net, net::VirtualCaller::Options{});
    auto client = std::make_unique<counter::WstCounterClient>(
        *caller, wst.counter_address(), wst.source_address());
    client->create();
    client->set(1);  // warm the compiled templates outside the timed window
    client->get();
    workers.push_back({std::move(caller), std::move(client)});
  }

  auto before = telemetry::MetricsRegistry::global().snapshot();
  auto wall_before = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (Worker& w : workers) {
    threads.emplace_back([&w] {
      // Read-heavy mix (one write per ten ops): the Get path is the one
      // the zero-copy pipeline carries end to end; Put's read-modify-write
      // hook necessarily builds a DOM to edit the stored document.
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (i % 10 == 0) {
          w.client->set(i);
        } else {
          w.client->get();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  auto wall_after = std::chrono::steady_clock::now();
  auto after = telemetry::MetricsRegistry::global().snapshot();

  double seconds = std::chrono::duration<double>(wall_after - wall_before).count();
  std::int64_t total_ops = static_cast<std::int64_t>(thread_count) * kOpsPerThread;
  double ops_per_sec = static_cast<double>(total_ops) / seconds;

  for (Worker& w : workers) w.client->remove();

  telemetry::MetricsSnapshot interval = telemetry::delta(before, after);
  const telemetry::HistogramSnapshot& nodes =
      interval.histograms["xml.nodes_per_request"];
  double nodes_per_request =
      nodes.count ? static_cast<double>(nodes.sum_us) / nodes.count : 0.0;

  bench::BenchTelemetry::instance().add(
      std::string("concurrent_dispatch/wire_path:") +
          (fast_path ? "fast" : "dom") + "/threads:" +
          std::to_string(thread_count),
      total_ops, std::move(interval), ops_per_sec);
  return {ops_per_sec, nodes_per_request};
}

}  // namespace

int main() {
  net::VirtualNetwork net{net::NetworkProfile::colocated()};
  net::VirtualCaller sink(
      net, net::VirtualCaller::Options{.transport = net::TransportKind::kSoapTcp});
  // MemoryBackend: the database mutex is held only for the in-memory map
  // touch, so storage does not serialize the trial the way file I/O would.
  counter::WstCounterDeployment wst(counter::WstCounterDeployment::Params{
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .container = {},
      .notification_sink = &sink,
      .address_base = "http://bench.example",
      .subscription_file = {},
  });
  wst.container().chain().insert_after(
      "telemetry", std::make_shared<SimulatedBackendIoHandler>());
  net.bind("bench.example", wst.container());

  std::printf("concurrent dispatch: %d ops/thread, %lldms simulated backend "
              "I/O per request\n",
              kOpsPerThread,
              static_cast<long long>(SimulatedBackendIoHandler::kDelay.count()));

  double single_thread = 0.0;
  double best_speedup = 0.0;
  for (int thread_count : {1, 2, 4, 8}) {
    Trial trial = run_trial(net, wst, thread_count);
    if (thread_count == 1) single_thread = trial.ops_per_sec;
    double speedup = single_thread > 0 ? trial.ops_per_sec / single_thread : 0;
    if (speedup > best_speedup) best_speedup = speedup;
    std::printf("  threads=%d  ops=%lld  ops/sec=%.1f  speedup=%.2fx\n",
                trial.threads, static_cast<long long>(trial.total_ops),
                trial.ops_per_sec, speedup);
  }

  // --- wire-path trials: backend stage at zero -------------------------------
  // A second deployment WITHOUT the simulated backend handler isolates the
  // serialization stack; toggling the fast path measures what the arena
  // parser + response templates buy when nothing else dominates.
  net::VirtualCaller wire_sink(
      net, net::VirtualCaller::Options{.transport = net::TransportKind::kSoapTcp});
  counter::WstCounterDeployment wire(counter::WstCounterDeployment::Params{
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .container = {},
      .notification_sink = &wire_sink,
      .address_base = "http://wire.example",
      .subscription_file = {},
  });
  net.bind("wire.example", wire.container());

  constexpr int kWireThreads = 4;
  std::printf("wire path (no backend stage, %d threads):\n", kWireThreads);
  WireTrial dom = run_wire_trial(net, wire, /*fast_path=*/false, kWireThreads);
  WireTrial fast = run_wire_trial(net, wire, /*fast_path=*/true, kWireThreads);
  soap::Envelope::set_wire_fast_path(true);  // restore the default

  double alloc_ratio =
      fast.nodes_per_request > 0 ? dom.nodes_per_request / fast.nodes_per_request
                                 : dom.nodes_per_request;
  std::printf("  dom:  ops/sec=%.1f  dom_nodes/request=%.1f\n",
              dom.ops_per_sec, dom.nodes_per_request);
  std::printf("  fast: ops/sec=%.1f  dom_nodes/request=%.1f  (%.1fx fewer)\n",
              fast.ops_per_sec, fast.nodes_per_request, alloc_ratio);

  bench::BenchTelemetry::instance().write("concurrent_dispatch");

  bool ok = true;
  if (best_speedup < 3.0) {
    std::printf("FAIL: best speedup %.2fx < 3x over single-thread\n",
                best_speedup);
    ok = false;
  } else {
    std::printf("PASS: best speedup %.2fx >= 3x over single-thread\n",
                best_speedup);
  }
  if (alloc_ratio < 5.0) {
    std::printf("FAIL: fast path allocates only %.1fx fewer DOM nodes "
                "per request (< 5x)\n", alloc_ratio);
    ok = false;
  } else {
    std::printf("PASS: fast path allocates %.1fx fewer DOM nodes per "
                "request (>= 5x)\n", alloc_ratio);
  }
  if (fast.ops_per_sec <= dom.ops_per_sec) {
    std::printf("FAIL: wire fast path is not faster (%.1f <= %.1f ops/sec)\n",
                fast.ops_per_sec, dom.ops_per_sec);
    ok = false;
  } else {
    std::printf("PASS: wire fast path %.1f > %.1f ops/sec (+%.0f%%)\n",
                fast.ops_per_sec, dom.ops_per_sec,
                100.0 * (fast.ops_per_sec / dom.ops_per_sec - 1.0));
  }
  return ok ? 0 : 1;
}
