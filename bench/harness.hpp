// Shared benchmark harness: deployment rigs for the paper's measurement
// scenarios.
//
// Methodology. The original testbed was two Opteron machines; this repo
// substitutes a simulated wire (src/net/wire.hpp). Real compute — XML
// parse/serialize, database I/O, RSA/TLS crypto — runs on the CPU and is
// measured with wall clocks; wire costs (propagation, transmission,
// connects, handshake round trips) are charged on a WireMeter. Each
// benchmark iteration reports wall time PLUS the metered wire time, so
// "co-located vs distributed" appears exactly as the network profile
// dictates, deterministically. Absolute numbers are smaller than the
// paper's 2005 stack; the comparisons (which stack wins, by what factor)
// are the reproduction target.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "counter/wsrf_counter.hpp"
#include "counter/wst_counter.hpp"
#include "gridbox/clients.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/timeseries.hpp"
#include "wsn/consumer.hpp"

namespace gs::bench {

// ---------------------------------------------------------------------------
// Per-benchmark telemetry capture
// ---------------------------------------------------------------------------

/// Accumulates one global-registry snapshot delta per benchmark and writes
/// them all to BENCH_<figure>.json: the per-layer breakdown (container
/// dispatch/security/handler, xmldb ops, net, delivery) behind each
/// end-to-end bar the figure plots.
class BenchTelemetry {
 public:
  static BenchTelemetry& instance();

  /// `ops_per_sec` > 0 adds a throughput field to the record (the
  /// concurrent-dispatch bench reports it; latency benches leave it 0).
  /// `extras` become additional top-level numeric fields on the record —
  /// the overload bench reports goodput_per_sec / p99_us through them so
  /// bench_diff.py can gate on figures the metric snapshot cannot carry.
  void add(std::string bench_name, std::int64_t iterations,
           telemetry::MetricsSnapshot delta, double ops_per_sec = 0.0,
           std::map<std::string, double> extras = {});

  /// Writes BENCH_<figure>.json in the current directory (an array of
  /// records: name, iterations, counters, gauges, and histograms as
  /// count/sum_us/p50_us/p90_us/p99_us over the benchmark's own interval),
  /// plus BENCH_<figure>.series.json — the run's own time-series window —
  /// next to the .trace.json/.events.log artifacts.
  void write(const std::string& figure) const;

  /// Rate-limited sample of the global registry into the harness's own
  /// TimeSeriesStore (the .series.json source). run_with_telemetry calls
  /// it around each benchmark; long-running benches may call it mid-loop.
  void sample_series();

 private:
  struct Record {
    std::string name;
    std::int64_t iterations;
    telemetry::MetricsSnapshot delta;
    double ops_per_sec = 0.0;
    std::map<std::string, double> extras;
  };

  mutable std::mutex mu_;
  std::vector<Record> records_;
  std::unique_ptr<telemetry::TimeSeriesStore> series_;  // created on first use
};

/// Runs `fn(state)` bracketed by global-registry snapshots and records the
/// delta under `bench_name`.
template <typename Fn>
void run_with_telemetry(benchmark::State& state, const std::string& bench_name,
                        Fn&& fn) {
  BenchTelemetry::instance().sample_series();
  telemetry::MetricsSnapshot before =
      telemetry::MetricsRegistry::global().snapshot();
  fn(state);
  telemetry::MetricsSnapshot after =
      telemetry::MetricsRegistry::global().snapshot();
  BenchTelemetry::instance().add(bench_name, state.iterations(),
                                 telemetry::delta(before, after));
  BenchTelemetry::instance().sample_series();
}

enum class Stack { kWsrf, kWst };
enum class Security { kNone, kHttps, kX509 };

const char* stack_name(Stack stack);
const char* security_name(Security security);

/// Process-wide PKI (1024-bit keys, generated once).
struct Pki {
  std::mt19937_64 rng{20050712};
  security::CertificateAuthority ca =
      security::CertificateAuthority::create("CN=GridCA,O=VO", 1024, rng);
  security::Credential service = issue("CN=vo-host,O=VO");
  security::Credential node = issue("CN=node1-host,O=VO");
  security::Credential admin = issue("CN=admin,O=VO");
  security::Credential user = issue("CN=alice,O=VO");

  security::Credential issue(const std::string& dn);
  static Pki& instance();
};

/// Measures one operation inside a google-benchmark loop: wall time plus
/// the simulated wire time accrued on `meter` during the call.
template <typename Op>
void run_metered(benchmark::State& state, net::WireMeter& meter, Op&& op) {
  for (auto _ : state) {
    double sim_before = meter.simulated_ms();
    auto wall_before = std::chrono::steady_clock::now();
    op();
    auto wall_after = std::chrono::steady_clock::now();
    double seconds =
        std::chrono::duration<double>(wall_after - wall_before).count() +
        (meter.simulated_ms() - sim_before) / 1000.0;
    state.SetIterationTime(seconds);
  }
}

// ---------------------------------------------------------------------------
// Hello-world rig (Figures 2-4)
// ---------------------------------------------------------------------------

/// One counter deployment + client for a (stack, security, locality)
/// combination, mirroring the paper's six scenarios per stack.
class CounterRig {
 public:
  CounterRig(Stack stack, Security security, bool distributed);
  ~CounterRig();

  /// The five measured operations. Each creates/uses/destroys resources so
  /// it can run repeatedly inside a benchmark loop.
  void op_get();
  void op_set();
  void op_create();
  void op_destroy();
  /// Set + delivery of the CounterValueChanged notification (delivery is
  /// synchronous in-process, so completion of set implies receipt — the
  /// harness asserts it). Bracket with subscribe_notifier /
  /// unsubscribe_notifier so the Get/Set benchmarks run subscriber-free,
  /// as the paper's did.
  void op_notify();
  void subscribe_notifier();
  void unsubscribe_notifier();

  net::WireMeter& meter() noexcept { return meter_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  net::WireMeter meter_;
};

// ---------------------------------------------------------------------------
// Grid-in-a-Box rig (Figure 6)
// ---------------------------------------------------------------------------

/// A one-host VO per stack with X.509 signing everywhere (the paper's
/// Figure 6 configuration), exposing the six measured operations. Every op
/// has a prep_ (and occasionally post_) phase the benches run OUTSIDE the
/// timed window (manual timing makes that exact).
class GridRig {
 public:
  GridRig(Stack stack, bool distributed);
  ~GridRig();

  void prep_get_available_resource();
  void op_get_available_resource();
  void prep_make_reservation();
  void op_make_reservation();
  void prep_upload_file();
  void op_upload_file();
  void prep_instantiate_job();
  void op_instantiate_job();
  void post_instantiate_job();
  void prep_delete_file();
  void op_delete_file();
  void prep_unreserve_resource();
  /// WS-Transfer only: explicit unreserve. The WSRF variant's unreserve is
  /// automatic (no client operation exists to measure), matching the paper
  /// reporting no time for it.
  void op_unreserve_resource();

  bool has_unreserve() const;  // false for WSRF

  net::WireMeter& meter() noexcept { return meter_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  net::WireMeter meter_;
};

/// Metered loop with an untimed prep (and optional post) phase per
/// iteration.
template <typename Prep, typename Op, typename Post>
void run_metered_with_prep(benchmark::State& state, net::WireMeter& meter,
                           Prep&& prep, Op&& op, Post&& post) {
  for (auto _ : state) {
    prep();
    double sim_before = meter.simulated_ms();
    auto wall_before = std::chrono::steady_clock::now();
    op();
    auto wall_after = std::chrono::steady_clock::now();
    double seconds =
        std::chrono::duration<double>(wall_after - wall_before).count() +
        (meter.simulated_ms() - sim_before) / 1000.0;
    state.SetIterationTime(seconds);
    post();
  }
}

}  // namespace gs::bench
