// Observability overhead: what does WATCHING the container cost?
//
// The time-series layer promises that retention is free-ish for the
// request path: the sampler reads the registry on its own cadence (the
// instruments are relaxed atomics, never locked against writers), and
// per-tenant cost attribution adds one short-mutex table update plus four
// cached metric writes per request. Both claims are machine-checked here:
//
//   sampler    closed-loop dispatch throughput, alternating trials with
//              the sampler OFF and ON. The ON trials run a sampling thread
//              at 50 ms cadence — 20x hotter than the production 1 s
//              interval — so the measured overhead is a conservative
//              ceiling even on a saturated single-core box, where every
//              sampler wakeup is CPU stolen from dispatch. Gate: <= 5%
//              throughput drop.
//   tenants    the same rig with a CostAggregator attached and a mixed
//              X-GS-Tenant workload; the aggregator must resolve every
//              tenant's share, and a micro-measured CostAggregator::record
//              must stay cheap enough to sit on the request path.
//
// Hand-rolled main (the unit of measurement is a multi-threaded trial).
// Writes BENCH_timeseries.json (+ .series.json, the run's own retained
// window); exits nonzero when the sampler overhead leaves the 5% envelope,
// when attribution fails to resolve >= 2 tenants, or when record() costs
// more than 25 us per request.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "container/admission.hpp"
#include "container/container.hpp"
#include "harness.hpp"
#include "telemetry/cost.hpp"
#include "telemetry/timeseries.hpp"

namespace {

using namespace gs;
using Clock = std::chrono::steady_clock;

// Sized to the hardware: on a many-core box the sampler gets its own core
// and the measurement is pure contention; on a 1-2 core box fewer dispatch
// threads keep context-switch thrash from drowning the signal.
const int kThreads = static_cast<int>(
    std::max(2u, std::min(4u, std::thread::hardware_concurrency())));
constexpr int kRequestsPerThread = 3000;
constexpr int kRounds = 5;  // off/on trial pairs
constexpr double kOverheadCeilingPct = 5.0;
constexpr double kAttributionCeilingUs = 25.0;

class PongService : public container::Service {
 public:
  PongService() : container::Service("Pong") {
    register_operation("urn:t/Ping", [](container::RequestContext& ctx) {
      soap::Envelope r = make_response(ctx, "urn:t/PingResponse");
      r.add_payload(xml::QName("urn:t", "Pong"));
      return r;
    });
  }
};

net::HttpRequest ping_request(const char* tenant) {
  soap::Envelope env;
  soap::MessageInfo info;
  info.action = "urn:t/Ping";
  info.message_id = "urn:uuid:bench-timeseries";
  env.write_addressing(info);
  env.add_payload(xml::QName("urn:t", "Ping"));
  net::HttpRequest http;
  http.path = "/Pong";
  http.body = env.to_xml();
  if (tenant) http.headers["X-GS-Tenant"] = tenant;
  return http;
}

/// One closed-loop trial: kThreads workers dispatching back-to-back
/// in-process requests. Returns completed ops per second.
double run_trial(container::Container& container,
                 const std::vector<net::HttpRequest>& requests) {
  std::atomic<std::int64_t> errors{0};
  auto before = Clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&container, &requests, &errors, t] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const net::HttpRequest& req = requests[(t + i) % requests.size()];
        if (container.handle(req).status != 200) ++errors;
      }
    });
  }
  for (auto& th : threads) th.join();
  double seconds = std::chrono::duration<double>(Clock::now() - before).count();
  // Feed the harness's own retention window (the .series.json dump).
  bench::BenchTelemetry::instance().sample_series();
  if (errors.load() > 0) {
    std::printf("FAIL: %lld dispatch errors during trial\n",
                static_cast<long long>(errors.load()));
    std::exit(1);
  }
  return kThreads * kRequestsPerThread / seconds;
}

}  // namespace

int main() {
  container::Container container{{}};  // global registry, real clock
  PongService pong;
  container.chain().insert_before(
      "parse", std::make_shared<container::AdmissionHandler>(
                   std::make_shared<container::AdmissionController>(
                       container::AdmissionConfig{})));
  container.deploy("/Pong", pong);

  std::vector<net::HttpRequest> untagged{ping_request(nullptr)};

  std::printf("timeseries: %d threads x %d in-process dispatches per trial, "
              "%d off/on rounds, 50 ms sampler cadence when on\n",
              kThreads, kRequestsPerThread, kRounds);

  run_trial(container, untagged);  // warmup, discarded

  // --- phase 1: sampler overhead, alternating off/on trials ---------------
  telemetry::TimeSeriesConfig cfg;
  cfg.interval_ms = 50;  // 20x the production cadence: a ceiling, not a bill
  cfg.raw_capacity = 4096;
  telemetry::TimeSeriesStore store(cfg);

  // Each round pairs an OFF trial with an adjacent ON trial (cancelling
  // slow drift — thermal, neighbours) and the gate takes the MEDIAN of the
  // per-round overheads: a genuine sampler cost shows up in every round,
  // while a single disturbed trial cannot swing the middle element.
  double best_off = 0.0, best_on = 0.0;
  std::vector<double> overheads;
  auto phase_before = telemetry::MetricsRegistry::global().snapshot();
  for (int round = 0; round < kRounds; ++round) {
    double off = run_trial(container, untagged);

    std::atomic<bool> stop{false};
    std::thread sampler([&store, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        store.poll();
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
    double on = run_trial(container, untagged);
    stop.store(true);
    sampler.join();

    overheads.push_back((off - on) / off * 100.0);
    best_off = std::max(best_off, off);
    best_on = std::max(best_on, on);
  }
  std::sort(overheads.begin(), overheads.end());
  double overhead_pct = std::max(0.0, overheads[overheads.size() / 2]);
  std::printf("  sampler off: %.0f ops/sec, on: %.0f ops/sec, median of %d "
              "paired rounds (overhead %.2f%%, %llu samples taken)\n",
              best_off, best_on, kRounds, overhead_pct,
              static_cast<unsigned long long>(store.samples_taken()));

  bench::BenchTelemetry::instance().add(
      "timeseries/sampler", 2LL * kRounds * kThreads * kRequestsPerThread,
      telemetry::delta(phase_before,
                       telemetry::MetricsRegistry::global().snapshot()),
      best_on,
      {{"sampler_overhead_pct", overhead_pct},
       {"samples_taken", static_cast<double>(store.samples_taken())}});

  // --- phase 2: per-tenant attribution under mixed load --------------------
  telemetry::CostAggregator costs;
  container.set_cost_aggregator(&costs);
  std::vector<net::HttpRequest> tagged{
      ping_request("alice"), ping_request("bob"),
      ping_request("alice"), ping_request(nullptr)};  // untagged -> anon

  auto tenants_before = telemetry::MetricsRegistry::global().snapshot();
  double tagged_ops = run_trial(container, tagged);
  container.set_cost_aggregator(nullptr);
  auto totals = costs.totals();  // wire-attributed shares only

  // The direct price of attribution: record() on the request path, two
  // tenants interleaved so the cached-handle fast path is what's measured.
  telemetry::CostRecord sample_cost;
  sample_cost.wall_us = 120;
  sample_cost.parse_us = 40;
  sample_cost.serialize_us = 30;
  sample_cost.xml_nodes = 25;
  sample_cost.arena_bytes = 4096;
  sample_cost.request_bytes = 512;
  sample_cost.response_bytes = 640;
  constexpr int kRecords = 100'000;
  auto rec_before = Clock::now();
  for (int i = 0; i < kRecords; ++i) {
    costs.record(i % 2 ? "alice" : "bob", "/Pong", sample_cost);
  }
  double attribution_us =
      std::chrono::duration<double, std::micro>(Clock::now() - rec_before)
          .count() /
      kRecords;

  std::printf("  tenants: %.0f ops/sec mixed load, %zu tenants resolved, "
              "record() = %.3f us\n",
              tagged_ops, totals.size(), attribution_us);
  for (const auto& row : totals) {
    std::printf("    tenant %-6s requests=%llu wall_us=%llu bytes_in=%llu\n",
                row.tenant.c_str(),
                static_cast<unsigned long long>(row.total.requests),
                static_cast<unsigned long long>(row.total.wall_us),
                static_cast<unsigned long long>(row.total.request_bytes));
  }

  bench::BenchTelemetry::instance().add(
      "timeseries/tenants", kThreads * kRequestsPerThread,
      telemetry::delta(tenants_before,
                       telemetry::MetricsRegistry::global().snapshot()),
      tagged_ops,
      {{"tenant_attribution_us", attribution_us},
       {"tenants_resolved", static_cast<double>(totals.size())}});

  bench::BenchTelemetry::instance().write("timeseries");

  bool ok = true;
  if (overhead_pct > kOverheadCeilingPct) {
    std::printf("FAIL: sampler overhead %.2f%% > %.0f%% ceiling\n",
                overhead_pct, kOverheadCeilingPct);
    ok = false;
  } else {
    std::printf("PASS: sampler overhead %.2f%% within %.0f%% ceiling\n",
                overhead_pct, kOverheadCeilingPct);
  }
  std::size_t active_tenants = 0;
  for (const auto& row : totals) {
    if (row.total.requests > 0) ++active_tenants;
  }
  if (active_tenants < 3) {  // alice, bob, anon from the mixed workload
    std::printf("FAIL: attribution resolved %zu tenants, expected alice/bob/"
                "anon\n", active_tenants);
    ok = false;
  } else {
    std::printf("PASS: attribution resolved %zu tenants' shares\n",
                active_tenants);
  }
  if (attribution_us > kAttributionCeilingUs) {
    std::printf("FAIL: record() %.3f us/request > %.0f us ceiling\n",
                attribution_us, kAttributionCeilingUs);
    ok = false;
  } else {
    std::printf("PASS: record() %.3f us/request within %.0f us ceiling\n",
                attribution_us, kAttributionCeilingUs);
  }
  return ok ? 0 : 1;
}
