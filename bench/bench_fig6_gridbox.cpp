// Figure 6: Grid-in-a-Box performance comparison.
// Configuration per the paper: every message X.509-signed (client calls
// and server out-calls), distributed deployment. Shape to reproduce:
//   * the dominant cost factor is "the number of web service outcalls (and
//     message signings) triggered on the server";
//   * Delete File: one call in both implementations — comparable;
//   * Upload File: a pair of calls in both — comparable;
//   * Instantiate Job: several more outcalls in the WSRF design (verify
//     reservation properties, check VO privilege, claim by lengthening the
//     lifetime) — clearly slower than the WS-Transfer version's single
//     reservation probe;
//   * Unreserve Resource: automatic in WSRF (no time reported), an
//     explicit Put mode in WS-Transfer.
#include <cstdio>

#include "harness.hpp"

namespace gs::bench {
namespace {

void register_grid() {
  struct Combo {
    Stack stack;
    const char* label;
  };
  static const Combo kCombos[] = {
      {Stack::kWst, "WS-Transfer+WS-Eventing"},
      {Stack::kWsrf, "WSRF.NET"},
  };

  for (const auto& combo : kCombos) {
    auto rig = std::make_shared<GridRig>(combo.stack, /*distributed=*/true);
    auto add = [&](const char* op, auto fn) {
      std::string name = std::string("Fig6/") + op + "/" + combo.label;
      auto instrumented = [fn, name](benchmark::State& s) {
        run_with_telemetry(s, name, fn);
      };
      benchmark::RegisterBenchmark(name.c_str(), instrumented)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    };
    add("GetAvailableResource", [rig](benchmark::State& s) {
      run_metered_with_prep(
          s, rig->meter(), [&] { rig->prep_get_available_resource(); },
          [&] { rig->op_get_available_resource(); }, [] {});
    });
    add("MakeReservation", [rig](benchmark::State& s) {
      run_metered_with_prep(
          s, rig->meter(), [&] { rig->prep_make_reservation(); },
          [&] { rig->op_make_reservation(); }, [] {});
    });
    add("UploadFile", [rig](benchmark::State& s) {
      run_metered_with_prep(
          s, rig->meter(), [&] { rig->prep_upload_file(); },
          [&] { rig->op_upload_file(); }, [] {});
    });
    add("InstantiateJob", [rig](benchmark::State& s) {
      run_metered_with_prep(
          s, rig->meter(), [&] { rig->prep_instantiate_job(); },
          [&] { rig->op_instantiate_job(); },
          [&] { rig->post_instantiate_job(); });
    });
    add("DeleteFile", [rig](benchmark::State& s) {
      run_metered_with_prep(
          s, rig->meter(), [&] { rig->prep_delete_file(); },
          [&] { rig->op_delete_file(); }, [] {});
    });
    if (rig->has_unreserve()) {
      add("UnreserveResource", [rig](benchmark::State& s) {
        run_metered_with_prep(
            s, rig->meter(), [&] { rig->prep_unreserve_resource(); },
            [&] { rig->op_unreserve_resource(); }, [] {});
      });
    }
  }
}

}  // namespace
}  // namespace gs::bench

int main(int argc, char** argv) {
  std::printf(
      "Fig6: Grid-in-a-Box performance comparison (X.509-signed messages,\n"
      "distributed deployment). Unreserve Resource has no WSRF series —\n"
      "it happens automatically there, as in the paper.\n\n");
  gs::bench::register_grid();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  gs::bench::BenchTelemetry::instance().write("Fig6");
  return 0;
}
