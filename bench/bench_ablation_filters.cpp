// Ablation: filter evaluation scaling.
// Both notification systems evaluate every live subscription's filter on
// every publish. This sweeps the subscription count for the three filter
// shapes used across the stacks — WSN topic expressions (concrete and
// wildcard) and WSE XPath content filters — isolating filter-evaluation
// cost from delivery (subscribers that never match receive nothing).
#include <cstdio>

#include "harness.hpp"
#include "wsn/filter.hpp"
#include "wse/store.hpp"
#include "xml/parser.hpp"

namespace gs::bench {
namespace {

void bench_wsn_topic(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<wsn::Filter> filters;
  for (int i = 0; i < n; ++i) {
    wsn::Filter f;
    // None of these match the published topic.
    f.set_topic(wsn::TopicExpression::parse(
        wsn::TopicExpression::Dialect::kConcrete,
        "job/other-" + std::to_string(i)));
    filters.push_back(std::move(f));
  }
  auto event = xml::parse_element("<Event><code>1</code></Event>");
  for (auto _ : state) {
    int matched = 0;
    for (const auto& f : filters) {
      if (f.accepts("job/done", *event, nullptr)) ++matched;
    }
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void bench_wsn_wildcard(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<wsn::Filter> filters;
  for (int i = 0; i < n; ++i) {
    wsn::Filter f;
    f.set_topic(wsn::TopicExpression::parse(
        wsn::TopicExpression::Dialect::kFull, "job/*/region-" + std::to_string(i)));
    filters.push_back(std::move(f));
  }
  auto event = xml::parse_element("<Event><code>1</code></Event>");
  for (auto _ : state) {
    int matched = 0;
    for (const auto& f : filters) {
      if (f.accepts("job/status/region-0", *event, nullptr)) ++matched;
    }
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void bench_wse_xpath(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<wse::WseSubscription> subs;
  for (int i = 0; i < n; ++i) {
    wse::WseSubscription sub;
    sub.dialect = wse::FilterDialect::kXPath;
    sub.filter = "/Event[resource='counter-" + std::to_string(i) + "']";
    subs.push_back(std::move(sub));
  }
  auto event =
      xml::parse_element("<Event><resource>counter-0</resource></Event>");
  for (auto _ : state) {
    int matched = 0;
    for (const auto& sub : subs) {
      if (sub.accepts("t", *event)) ++matched;
    }
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void bench_wse_topic(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<wse::WseSubscription> subs;
  for (int i = 0; i < n; ++i) {
    wse::WseSubscription sub;
    sub.dialect = wse::FilterDialect::kTopic;
    sub.filter = "topic-" + std::to_string(i);
    subs.push_back(std::move(sub));
  }
  auto event = xml::parse_element("<Event/>");
  for (auto _ : state) {
    int matched = 0;
    for (const auto& sub : subs) {
      if (sub.accepts("topic-0", *event)) ++matched;
    }
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

}  // namespace
}  // namespace gs::bench

BENCHMARK(gs::bench::bench_wsn_topic)
    ->Name("AblationFilters/WSN_ConcreteTopic")
    ->Arg(1)->Arg(16)->Arg(128)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(gs::bench::bench_wsn_wildcard)
    ->Name("AblationFilters/WSN_WildcardTopic")
    ->Arg(1)->Arg(16)->Arg(128)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(gs::bench::bench_wse_topic)
    ->Name("AblationFilters/WSE_TopicString")
    ->Arg(1)->Arg(16)->Arg(128)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(gs::bench::bench_wse_xpath)
    ->Name("AblationFilters/WSE_XPathContent")
    ->Arg(1)->Arg(16)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  std::printf(
      "Ablation: filter evaluation scaling with subscription count.\n"
      "WSE XPath content filters recompile per evaluation (the Plumbwork\n"
      "flat-file model keeps only expression text); topic matching is\n"
      "string work. Items/s normalizes across subscription counts.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
