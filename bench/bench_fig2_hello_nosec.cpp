// Figure 2: "Hello World" counter, no security.
// Paper shape to reproduce: Create is the slowest op for both stacks (a
// database insert); WSRF.NET's Set beats WS-Transfer's (write-through
// resource cache skips the read-back); WS-Eventing's Notify beats
// WS-Notification's (persistent TCP vs per-notify HTTP connections);
// distributed adds a roughly constant delta to every operation.
#include "hello_world_common.hpp"

int main(int argc, char** argv) {
  return gs::bench::hello_world_main(argc, argv, "Fig2", "no security",
                                     gs::bench::Security::kNone);
}
