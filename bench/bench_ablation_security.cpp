// Ablation: where the security time goes.
// Figure 4's "the overhead of the security processing is so large that the
// performance differences between the two underlying systems tend to fade"
// decomposed: canonicalization, hashing, RSA sign/verify, whole-envelope
// sign/verify, TLS-lite handshake (full vs resumed) and record crypto.
#include <cstdio>

#include "common/encoding.hpp"
#include "harness.hpp"
#include "security/tls.hpp"
#include "xml/canonical.hpp"

namespace gs::bench {
namespace {

soap::Envelope sample_envelope() {
  soap::Envelope env;
  soap::MessageInfo info;
  info.to = "http://vo.example/Counter";
  info.action = std::string(soap::ns::kWsrfRp) + "/SetResourceProperties";
  info.message_id = "urn:uuid:bench";
  env.write_addressing(info);
  xml::Element& body = env.add_payload(
      xml::QName(soap::ns::kWsrfRp, "SetResourceProperties"));
  xml::Element& update = body.append_element(
      xml::QName(soap::ns::kWsrfRp, "Update"));
  update.append_element(xml::QName(soap::ns::kCounter, "cv")).set_text("42");
  return env;
}

void register_benches() {
  Pki& pki = Pki::instance();

  benchmark::RegisterBenchmark("AblationSecurity/Canonicalize", [](benchmark::State& s) {
    soap::Envelope env = sample_envelope();
    for (auto _ : s) {
      std::string c14n = xml::canonicalize(env.body());
      benchmark::DoNotOptimize(c14n);
    }
  })->Unit(benchmark::kMicrosecond);

  benchmark::RegisterBenchmark("AblationSecurity/Sha256_4KiB", [](benchmark::State& s) {
    std::string data(4096, 'x');
    for (auto _ : s) {
      auto d = security::Sha256::digest(data);
      benchmark::DoNotOptimize(d);
    }
  })->Unit(benchmark::kMicrosecond);

  benchmark::RegisterBenchmark("AblationSecurity/RsaSign1024", [](benchmark::State& s) {
    Pki& p = Pki::instance();
    auto digest = security::Sha256::digest(std::string_view("payload"));
    for (auto _ : s) {
      auto sig = security::rsa_sign(p.user.key, digest);
      benchmark::DoNotOptimize(sig);
    }
  })->Unit(benchmark::kMicrosecond);

  benchmark::RegisterBenchmark("AblationSecurity/RsaVerify1024", [](benchmark::State& s) {
    Pki& p = Pki::instance();
    auto digest = security::Sha256::digest(std::string_view("payload"));
    auto sig = security::rsa_sign(p.user.key, digest);
    for (auto _ : s) {
      bool ok = security::rsa_verify(p.user.key.pub, digest, sig);
      benchmark::DoNotOptimize(ok);
    }
  })->Unit(benchmark::kMicrosecond);

  benchmark::RegisterBenchmark("AblationSecurity/SignEnvelope", [](benchmark::State& s) {
    Pki& p = Pki::instance();
    for (auto _ : s) {
      soap::Envelope env = sample_envelope();
      security::sign_envelope(env, p.user);
      benchmark::DoNotOptimize(env);
    }
  })->Unit(benchmark::kMicrosecond);

  benchmark::RegisterBenchmark("AblationSecurity/VerifyEnvelope", [](benchmark::State& s) {
    Pki& p = Pki::instance();
    soap::Envelope env = sample_envelope();
    security::sign_envelope(env, p.user);
    for (auto _ : s) {
      auto id = security::verify_envelope(env, p.ca.root(), 0);
      benchmark::DoNotOptimize(id);
    }
  })->Unit(benchmark::kMicrosecond);

  benchmark::RegisterBenchmark("AblationSecurity/TlsHandshakeFull", [](benchmark::State& s) {
    Pki& p = Pki::instance();
    std::mt19937_64 rng(1);
    for (auto _ : s) {
      security::TlsSessionCache cache;  // empty cache: full handshake
      auto hs = security::TlsHandshake::run(p.ca.root(), cache, p.service,
                                            "host:443", 0, rng);
      benchmark::DoNotOptimize(hs);
    }
  })->Unit(benchmark::kMicrosecond);

  benchmark::RegisterBenchmark("AblationSecurity/TlsHandshakeResumed", [](benchmark::State& s) {
    Pki& p = Pki::instance();
    std::mt19937_64 rng(1);
    security::TlsSessionCache cache;
    (void)security::TlsHandshake::run(p.ca.root(), cache, p.service, "host:443",
                                      0, rng);
    for (auto _ : s) {
      auto hs = security::TlsHandshake::run(p.ca.root(), cache, p.service,
                                            "host:443", 0, rng);
      benchmark::DoNotOptimize(hs);
    }
  })->Unit(benchmark::kMicrosecond);

  benchmark::RegisterBenchmark("AblationSecurity/TlsSealOpen4KiB", [](benchmark::State& s) {
    Pki& p = Pki::instance();
    std::mt19937_64 rng(1);
    security::TlsSessionCache cache;
    auto hs = security::TlsHandshake::run(p.ca.root(), cache, p.service,
                                          "host:443", 0, rng);
    std::string data(4096, 'x');
    for (auto _ : s) {
      auto sealed = hs.client.seal(common::as_bytes(data));
      auto opened = hs.server.open(sealed);
      benchmark::DoNotOptimize(opened);
    }
  })->Unit(benchmark::kMicrosecond);

  (void)pki;
}

}  // namespace
}  // namespace gs::bench

int main(int argc, char** argv) {
  std::printf(
      "Ablation: security cost decomposition. Per X.509-signed round trip\n"
      "the stacks pay 2x SignEnvelope + 2x VerifyEnvelope; per HTTPS\n"
      "connection one TLS handshake (resumed from the session cache after\n"
      "the first) plus cheap record crypto per message — why Figure 3\n"
      "stays close to Figure 2 while Figure 4 dwarfs both.\n\n");
  gs::bench::register_benches();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
