// Figure 4: "Hello World" counter with X.509 signing of request and
// response.
// Paper shape to reproduce: "the overhead of the security processing is so
// large that the performance differences between the two underlying
// systems tend to fade in significance" — every operation is dominated by
// the four RSA operations per round trip (client sign, server verify,
// server sign, client verify) plus canonicalization, and the stack-to-stack
// gaps of Figure 2 compress.
#include "hello_world_common.hpp"

int main(int argc, char** argv) {
  return gs::bench::hello_world_main(argc, argv, "Fig4", "X.509 signing",
                                     gs::bench::Security::kX509);
}
