// Ablation: XML database backends.
// "Both approaches rely on efficient storage of XML-based resources ...
// In some cases this may be overkill and a standard database or even
// in-memory might make more sense." Insert/update/load/query costs for the
// in-memory collection backend vs the file-per-document (Xindice-style)
// backend, including the index-rewrite that makes inserts the expensive
// operation.
#include <cstdio>
#include <filesystem>

#include "harness.hpp"
#include "xml/parser.hpp"

namespace gs::bench {
namespace {

std::unique_ptr<xmldb::XmlDatabase> make_db(bool file_backed,
                                            const char* tag) {
  if (file_backed) {
    auto root = std::filesystem::temp_directory_path() /
                (std::string("gs-ablate-backend-") + tag);
    std::filesystem::remove_all(root);
    return std::make_unique<xmldb::XmlDatabase>(
        std::make_unique<xmldb::FileBackend>(root));
  }
  return std::make_unique<xmldb::XmlDatabase>(
      std::make_unique<xmldb::MemoryBackend>());
}

std::unique_ptr<xml::Element> sample_doc(int i) {
  auto doc = std::make_unique<xml::Element>(xml::QName("urn:bench", "Job"));
  doc->append_element(xml::QName("urn:bench", "Owner")).set_text("CN=alice");
  doc->append_element(xml::QName("urn:bench", "Status"))
      .set_text(i % 2 ? "running" : "exited");
  doc->append_element(xml::QName("urn:bench", "Seq"))
      .set_text(std::to_string(i));
  return doc;
}

void register_benches() {
  for (bool file_backed : {false, true}) {
    const char* kind = file_backed ? "File" : "Memory";

    {
      auto db = std::shared_ptr<xmldb::XmlDatabase>(
          make_db(file_backed, file_backed ? "insert-f" : "insert-m"));
      std::string name = std::string("AblationBackend/Insert/") + kind;
      benchmark::RegisterBenchmark(name.c_str(), [db](benchmark::State& s) {
        int i = 0;
        for (auto _ : s) {
          db->store("jobs", "job-" + std::to_string(i), *sample_doc(i));
          ++i;
        }
      })->Unit(benchmark::kMicrosecond);
    }
    {
      auto db = std::shared_ptr<xmldb::XmlDatabase>(
          make_db(file_backed, file_backed ? "update-f" : "update-m"));
      db->store("jobs", "the-job", *sample_doc(0));
      std::string name = std::string("AblationBackend/Update/") + kind;
      benchmark::RegisterBenchmark(name.c_str(), [db](benchmark::State& s) {
        int i = 0;
        for (auto _ : s) {
          db->store("jobs", "the-job", *sample_doc(++i));
        }
      })->Unit(benchmark::kMicrosecond);
    }
    {
      auto db = std::shared_ptr<xmldb::XmlDatabase>(
          make_db(file_backed, file_backed ? "load-f" : "load-m"));
      db->store("jobs", "the-job", *sample_doc(0));
      std::string name = std::string("AblationBackend/Load/") + kind;
      benchmark::RegisterBenchmark(name.c_str(), [db](benchmark::State& s) {
        for (auto _ : s) {
          auto doc = db->load("jobs", "the-job");
          benchmark::DoNotOptimize(doc);
        }
      })->Unit(benchmark::kMicrosecond);
    }
    {
      auto db = std::shared_ptr<xmldb::XmlDatabase>(
          make_db(file_backed, file_backed ? "query-f" : "query-m"));
      for (int i = 0; i < 64; ++i) {
        db->store("jobs", "job-" + std::to_string(i), *sample_doc(i));
      }
      std::string name =
          std::string("AblationBackend/Query64Docs/") + kind;
      benchmark::RegisterBenchmark(name.c_str(), [db](benchmark::State& s) {
        auto expr = xml::XPathExpr::compile("/Job[Status='running']");
        for (auto _ : s) {
          auto matches = db->query("jobs", expr);
          benchmark::DoNotOptimize(matches);
        }
      })->Unit(benchmark::kMicrosecond);
    }
  }
}

}  // namespace
}  // namespace gs::bench

int main(int argc, char** argv) {
  std::printf(
      "Ablation: in-memory vs file-backed (Xindice-style) document storage.\n"
      "Insert pays the collection-index rewrite on the file backend —\n"
      "the cost structure behind Create being the slowest hello-world op.\n\n");
  gs::bench::register_benches();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
