// Ablation: notification delivery transport.
// Explains the Figure 2-4 Notify gap: "Notification performance does
// appear to be considerably better for the WS-Eventing implementation than
// for WSRF.NET because of the TCP vs. HTTP issue." Three sinks deliver the
// same notification: raw SOAP frames on a persistent TCP connection
// (Plumbwork WSE), HTTP with a fresh connection per notify (WSRF.NET's
// client-side HTTP server), and HTTP with keep-alive (what WSRF.NET could
// have done).
#include <cstdio>

#include "harness.hpp"

namespace gs::bench {
namespace {

struct DeliveryRig {
  net::VirtualNetwork net{net::NetworkProfile::distributed()};
  net::WireMeter meter;
  wsn::NotificationConsumer consumer;
  std::unique_ptr<net::VirtualCaller> sink;
  xml::Element event{xml::QName("urn:bench", "Event")};

  DeliveryRig(net::TransportKind transport, bool keep_alive) {
    net.bind("client.example", consumer);
    sink = std::make_unique<net::VirtualCaller>(
        net, net::VirtualCaller::Options{
                 .transport = transport, .keep_alive = keep_alive,
                 .meter = &meter});
    event.append_element(xml::QName("urn:bench", "Value")).set_text("1");
  }

  void deliver() {
    soap::Envelope env = wsn::make_notify_envelope(
        "bench/topic", event, "http://producer.example/Source",
        soap::EndpointReference("http://client.example/sink"));
    sink->call("http://client.example/sink", env);
  }
};

void register_benches() {
  struct Mode {
    const char* name;
    net::TransportKind transport;
    bool keep_alive;
  };
  static const Mode kModes[] = {
      {"TCP_persistent_WSEventing", net::TransportKind::kSoapTcp, true},
      {"HTTP_reconnect_WSRFNET", net::TransportKind::kHttp, false},
      {"HTTP_keepalive", net::TransportKind::kHttp, true},
  };
  for (const Mode& mode : kModes) {
    auto rig = std::make_shared<DeliveryRig>(mode.transport, mode.keep_alive);
    std::string name = std::string("AblationDelivery/Notify/") + mode.name;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [rig](benchmark::State& s) {
          run_metered(s, rig->meter, [&] { rig->deliver(); });
          s.counters["connects"] = static_cast<double>(rig->meter.connects());
        })
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace gs::bench

int main(int argc, char** argv) {
  std::printf(
      "Ablation: notification delivery transports on a distributed wire.\n"
      "Per-notify reconnection is what separates WSN's delivery from\n"
      "WS-Eventing's persistent TCP in the hello-world Notify bars.\n\n");
  gs::bench::register_benches();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
