#include "harness.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "telemetry/event_log.hpp"
#include "telemetry/export.hpp"
#include "telemetry/trace.hpp"

namespace gs::bench {

// ---------------------------------------------------------------------------
// BenchTelemetry
// ---------------------------------------------------------------------------

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string json_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

BenchTelemetry& BenchTelemetry::instance() {
  static BenchTelemetry t;
  return t;
}

void BenchTelemetry::sample_series() {
  std::lock_guard lock(mu_);
  if (!series_) {
    telemetry::TimeSeriesConfig config;
    config.interval_ms = 250;  // benches are seconds long; keep points dense
    config.raw_capacity = 4096;
    series_ = std::make_unique<telemetry::TimeSeriesStore>(config);
  }
  series_->poll();  // rate-limited: back-to-back benches share an interval
}

void BenchTelemetry::add(std::string bench_name, std::int64_t iterations,
                         telemetry::MetricsSnapshot delta, double ops_per_sec,
                         std::map<std::string, double> extras) {
  std::lock_guard lock(mu_);
  // google-benchmark calls the function several times (estimation runs,
  // then the measured one, last); keep only the final run per benchmark.
  for (Record& r : records_) {
    if (r.name == bench_name) {
      r.iterations = iterations;
      r.delta = std::move(delta);
      r.ops_per_sec = ops_per_sec;
      r.extras = std::move(extras);
      return;
    }
  }
  records_.push_back({std::move(bench_name), iterations, std::move(delta),
                      ops_per_sec, std::move(extras)});
}

void BenchTelemetry::write(const std::string& figure) const {
  std::lock_guard lock(mu_);
  std::string path = "BENCH_" + figure + ".json";
  std::ofstream out(path);
  out << "[\n";
  bool first_record = true;
  for (const Record& r : records_) {
    if (!first_record) out << ",\n";
    first_record = false;
    out << "  {\n    \"name\": \"" << json_escape(r.name) << "\",\n"
        << "    \"iterations\": " << r.iterations << ",\n";
    if (r.ops_per_sec > 0.0) {
      out << "    \"ops_per_sec\": " << json_double(r.ops_per_sec) << ",\n";
    }
    for (const auto& [name, value] : r.extras) {
      out << "    \"" << json_escape(name) << "\": " << json_double(value)
          << ",\n";
    }

    out << "    \"counters\": {";
    bool first = true;
    for (const auto& [name, value] : r.delta.counters) {
      if (value == 0) continue;  // quiet metrics: noise in the report
      out << (first ? "" : ", ") << "\"" << json_escape(name)
          << "\": " << value;
      first = false;
    }
    out << "},\n";

    out << "    \"gauges\": {";
    first = true;
    for (const auto& [name, value] : r.delta.gauges) {
      out << (first ? "" : ", ") << "\"" << json_escape(name)
          << "\": " << value;
      first = false;
    }
    out << "},\n";

    out << "    \"histograms\": {";
    first = true;
    for (const auto& [name, h] : r.delta.histograms) {
      if (h.count == 0) continue;
      out << (first ? "" : ", ") << "\n      \"" << json_escape(name)
          << "\": {\"count\": " << h.count << ", \"sum_us\": " << h.sum_us
          << ", \"min_us\": " << h.min_us << ", \"max_us\": " << h.max_us
          << ", \"p50_us\": " << json_double(h.percentile(50))
          << ", \"p90_us\": " << json_double(h.percentile(90))
          << ", \"p99_us\": " << json_double(h.percentile(99)) << "}";
      first = false;
    }
    out << (first ? "" : "\n    ") << "}\n  }";
  }
  out << "\n]\n";
  std::printf("per-layer telemetry for %zu benchmarks written to %s\n",
              records_.size(), path.c_str());

  // Post-mortem artifacts for the same figure: whatever the global trace
  // ring still holds as a chrome://tracing file, and the structured event
  // log (faults, evictions, retries) as text.
  std::string trace_path = "BENCH_" + figure + ".trace.json";
  std::ofstream(trace_path)
      << telemetry::export_chrome_trace(telemetry::TraceLog::global().snapshot());
  std::string events_path = "BENCH_" + figure + ".events.log";
  std::ofstream(events_path) << telemetry::EventLog::global().to_text();
  std::printf("trace written to %s, event log to %s\n", trace_path.c_str(),
              events_path.c_str());

  // The run's own time-series window (sampled by run_with_telemetry):
  // rate/level/percentile points per metric, for plotting how the run
  // evolved rather than only its totals.
  if (series_) {
    std::string series_path = "BENCH_" + figure + ".series.json";
    std::ofstream sout(series_path);
    sout << "{\n  \"interval_ms\": " << series_->interval_ms()
         << ",\n  \"series\": {";
    bool first = true;
    for (const std::string& name : series_->series_names()) {
      telemetry::TimeSeriesStore::Window window = series_->query(name);
      if (window.points.empty()) continue;
      sout << (first ? "" : ",") << "\n    \"" << json_escape(name)
           << "\": [";
      bool first_point = true;
      for (const telemetry::SeriesPoint& p : window.points) {
        sout << (first_point ? "" : ", ") << "[" << p.t_ms << ", "
             << json_double(p.value) << "]";
        first_point = false;
      }
      sout << "]";
      first = false;
    }
    sout << (first ? "" : "\n  ") << "}\n}\n";
    std::printf("time series written to %s\n", series_path.c_str());
  }
}

const char* stack_name(Stack stack) {
  return stack == Stack::kWsrf ? "WSRF.NET" : "WS-Transfer/WS-Eventing";
}

const char* security_name(Security security) {
  switch (security) {
    case Security::kNone: return "no security";
    case Security::kHttps: return "https";
    case Security::kX509: return "X.509 signing";
  }
  return "";
}

security::Credential Pki::issue(const std::string& dn) {
  return ca.issue(dn, 1024, rng, 0, std::numeric_limits<common::TimeMs>::max());
}

Pki& Pki::instance() {
  static Pki pki;
  return pki;
}

// ---------------------------------------------------------------------------
// CounterRig
// ---------------------------------------------------------------------------

struct CounterRig::Impl {
  Stack stack;
  Security security;
  net::VirtualNetwork net;
  std::unique_ptr<net::VirtualCaller> caller;
  std::unique_ptr<net::VirtualCaller> sink;
  std::unique_ptr<counter::WsrfCounterDeployment> wsrf;
  std::unique_ptr<counter::WstCounterDeployment> wst;
  wsn::NotificationConsumer consumer;

  std::unique_ptr<counter::WsrfCounterClient> wsrf_client;
  std::unique_ptr<counter::WstCounterClient> wst_client;
  // Fresh-resource slot for the create/destroy benchmark pair.
  std::unique_ptr<counter::WsrfCounterClient> wsrf_victim;
  std::unique_ptr<counter::WstCounterClient> wst_victim;
  // A separate counter subscribed only while the Notify benchmark runs,
  // so Set (no subscribers) and Notify (set + delivery) measure what the
  // paper measures.
  std::unique_ptr<counter::WsrfCounterClient> wsrf_notifier;
  std::unique_ptr<counter::WstCounterClient> wst_notifier;
  std::unique_ptr<wsn::SubscriptionProxy> wsrf_subscription;
  std::unique_ptr<wse::WseSubscriptionProxy> wst_subscription;
  container::ProxySecurity security_config;
  int set_value = 0;

  Impl(Stack stack_in, Security security_in, bool distributed,
       net::WireMeter& meter)
      : stack(stack_in),
        security(security_in),
        net(distributed ? net::NetworkProfile::distributed()
                        : net::NetworkProfile::colocated()) {
    Pki& pki = Pki::instance();

    net::VirtualCaller::Options caller_opts;
    caller_opts.meter = &meter;
    container::ContainerConfig cc;
    container::ProxySecurity& proxy_sec = security_config;
    switch (security) {
      case Security::kNone:
        break;
      case Security::kHttps:
        caller_opts.transport = net::TransportKind::kHttps;
        caller_opts.anchor = &pki.ca.root();
        cc.credential = &pki.service;
        break;
      case Security::kX509:
        cc.security = container::SecurityMode::kX509;
        cc.anchor = &pki.ca.root();
        cc.credential = &pki.service;
        proxy_sec = {&pki.user, &pki.ca.root(), &common::RealClock::instance()};
        break;
    }
    caller = std::make_unique<net::VirtualCaller>(net, caller_opts);

    std::string scheme = security == Security::kHttps ? "https" : "http";
    if (stack == Stack::kWsrf) {
      // WSRF.NET notification path: the clients' custom HTTP server, a new
      // connection per delivery.
      sink = std::make_unique<net::VirtualCaller>(
          net, net::VirtualCaller::Options{.keep_alive = false, .meter = &meter});
      auto root = std::filesystem::temp_directory_path() /
                  ("gs-bench-hello-wsrf-" + std::to_string(static_cast<int>(security)) +
                   (distributed ? "-dist" : "-colo"));
      std::filesystem::remove_all(root);
      wsrf = std::make_unique<counter::WsrfCounterDeployment>(
          counter::WsrfCounterDeployment::Params{
              .backend = std::make_unique<xmldb::FileBackend>(root),
              .write_through_cache = true,
              .container = cc,
              .notification_sink = sink.get(),
              .address_base = scheme + "://vo.example",
          });
      net.bind("vo.example", wsrf->container());
      wsrf_client = std::make_unique<counter::WsrfCounterClient>(
          *caller, wsrf->counter_address(), proxy_sec);
      wsrf_victim = std::make_unique<counter::WsrfCounterClient>(
          *caller, wsrf->counter_address(), proxy_sec);
      wsrf_notifier = std::make_unique<counter::WsrfCounterClient>(
          *caller, wsrf->counter_address(), proxy_sec);
      net.bind("client.example", consumer);
      wsrf_client->create();
      wsrf_notifier->create();
    } else {
      // Plumbwork Orange delivery: WSE SoapReceiver over persistent TCP.
      sink = std::make_unique<net::VirtualCaller>(
          net, net::VirtualCaller::Options{
                   .transport = net::TransportKind::kSoapTcp, .meter = &meter});
      auto root = std::filesystem::temp_directory_path() /
                  ("gs-bench-hello-wst-" + std::to_string(static_cast<int>(security)) +
                   (distributed ? "-dist" : "-colo"));
      std::filesystem::remove_all(root);
      wst = std::make_unique<counter::WstCounterDeployment>(
          counter::WstCounterDeployment::Params{
              .backend = std::make_unique<xmldb::FileBackend>(root),
              .container = cc,
              .notification_sink = sink.get(),
              .address_base = scheme + "://vo.example",
              .subscription_file = {},
          });
      net.bind("vo.example", wst->container());
      wst_client = std::make_unique<counter::WstCounterClient>(
          *caller, wst->counter_address(), wst->source_address(), proxy_sec);
      wst_victim = std::make_unique<counter::WstCounterClient>(
          *caller, wst->counter_address(), wst->source_address(), proxy_sec);
      wst_notifier = std::make_unique<counter::WstCounterClient>(
          *caller, wst->counter_address(), wst->source_address(), proxy_sec);
      net.bind("client.example", consumer);
      wst_client->create();
      wst_notifier->create();
    }
  }
};

CounterRig::CounterRig(Stack stack, Security security, bool distributed)
    : impl_(std::make_unique<Impl>(stack, security, distributed, meter_)) {}
CounterRig::~CounterRig() = default;

void CounterRig::op_get() {
  int v = impl_->stack == Stack::kWsrf ? impl_->wsrf_client->get()
                                       : impl_->wst_client->get();
  benchmark::DoNotOptimize(v);
}

void CounterRig::op_set() {
  ++impl_->set_value;
  if (impl_->stack == Stack::kWsrf) {
    impl_->wsrf_client->set(impl_->set_value);
  } else {
    impl_->wst_client->set(impl_->set_value);
  }
}

void CounterRig::op_create() {
  if (impl_->stack == Stack::kWsrf) {
    impl_->wsrf_victim->create();
  } else {
    impl_->wst_victim->create();
  }
}

void CounterRig::op_destroy() {
  // Destroys whatever counter the victim slot currently targets; the
  // destroy benchmark creates one per iteration outside the timed window.
  if (impl_->stack == Stack::kWsrf) {
    impl_->wsrf_victim->destroy();
  } else {
    impl_->wst_victim->remove();
  }
}

void CounterRig::subscribe_notifier() {
  soap::EndpointReference consumer_epr("http://client.example/s");
  if (impl_->stack == Stack::kWsrf) {
    impl_->wsrf_subscription = std::make_unique<wsn::SubscriptionProxy>(
        impl_->wsrf_notifier->subscribe(consumer_epr));
  } else {
    auto handle = impl_->wst_notifier->subscribe(consumer_epr);
    impl_->wst_subscription = std::make_unique<wse::WseSubscriptionProxy>(
        *impl_->caller, handle.manager, impl_->security_config);
  }
}

void CounterRig::unsubscribe_notifier() {
  if (impl_->wsrf_subscription) {
    impl_->wsrf_subscription->unsubscribe();
    impl_->wsrf_subscription.reset();
  }
  if (impl_->wst_subscription) {
    impl_->wst_subscription->unsubscribe();
    impl_->wst_subscription.reset();
  }
}

void CounterRig::op_notify() {
  size_t before = impl_->consumer.count();
  ++impl_->set_value;
  if (impl_->stack == Stack::kWsrf) {
    impl_->wsrf_notifier->set(impl_->set_value);
  } else {
    impl_->wst_notifier->set(impl_->set_value);
  }
  // Delivery is synchronous in-process; set returning implies receipt.
  if (impl_->consumer.count() <= before) {
    throw std::logic_error("notification was not delivered");
  }
}

// ---------------------------------------------------------------------------
// GridRig
// ---------------------------------------------------------------------------

struct GridRig::Impl {
  Stack stack;
  common::ManualClock clock{1'000'000};
  net::VirtualNetwork net;
  std::unique_ptr<net::VirtualCaller> caller;
  std::unique_ptr<net::VirtualCaller> outcalls;
  std::unique_ptr<net::VirtualCaller> sink;
  std::unique_ptr<gridbox::WsrfGridDeployment> wsrf;
  std::unique_ptr<gridbox::WstGridDeployment> wst;
  std::unique_ptr<gridbox::WsrfUserClient> wsrf_user;
  std::unique_ptr<gridbox::WstUserClient> wst_user;
  wsn::NotificationConsumer consumer;

  // Persistent per-rig state used by prep/cleanup phases.
  soap::EndpointReference wsrf_directory;
  soap::EndpointReference wsrf_reservation;
  bool wsrf_reserved = false;
  bool wst_reserved = false;
  int file_counter = 0;

  Impl(Stack stack_in, bool distributed, net::WireMeter& meter)
      : stack(stack_in),
        net(distributed ? net::NetworkProfile::distributed()
                        : net::NetworkProfile::colocated()) {
    Pki& pki = Pki::instance();
    container::ProxySecurity user_sec{&pki.user, &pki.ca.root(),
                                      &common::RealClock::instance()};
    container::ProxySecurity admin_sec{&pki.admin, &pki.ca.root(),
                                       &common::RealClock::instance()};
    container::ProxySecurity node_sec{&pki.node, &pki.ca.root(),
                                      &common::RealClock::instance()};
    container::ContainerConfig central_cc{container::SecurityMode::kX509,
                                          &pki.ca.root(), &pki.service, &clock};
    container::ContainerConfig node_cc{container::SecurityMode::kX509,
                                       &pki.ca.root(), &pki.node, &clock};

    caller = std::make_unique<net::VirtualCaller>(
        net, net::VirtualCaller::Options{.meter = &meter});
    outcalls = std::make_unique<net::VirtualCaller>(
        net, net::VirtualCaller::Options{.meter = &meter});

    auto file_root = std::filesystem::temp_directory_path() /
                     (stack == Stack::kWsrf ? "gs-bench-wsrf" : "gs-bench-wst");
    std::filesystem::remove_all(file_root);

    if (stack == Stack::kWsrf) {
      sink = std::make_unique<net::VirtualCaller>(
          net, net::VirtualCaller::Options{.keep_alive = false, .meter = &meter});
      auto central_root = file_root.string() + "-central";
      std::filesystem::remove_all(central_root);
      wsrf = std::make_unique<gridbox::WsrfGridDeployment>(
          gridbox::WsrfGridDeployment::Params{
              .backend = std::make_unique<xmldb::FileBackend>(central_root),
              .central_container = central_cc,
              .outcall_caller = outcalls.get(),
              .outcall_security = node_sec,
              .notification_sink = sink.get(),
              .central_base = "http://vo.example",
              .reservation_ttl_ms = 4LL * 3600 * 1000,
              .admin_dn = "CN=admin,O=VO",
          });
      wsrf->add_host({.host = "node1",
                      .base = "http://node1.example",
                      .backend = std::make_unique<xmldb::FileBackend>(
                          file_root.string() + "-db"),
                      .container = node_cc,
                      .file_root = file_root});
      net.bind("vo.example", wsrf->central_container());
      net.bind("node1.example", wsrf->host_container("node1"));
      gridbox::WsrfAdminClient admin(*caller, *wsrf,
                                     {"CN=admin,O=VO", admin_sec});
      admin.add_account("CN=alice,O=VO", {gridbox::kPrivilegeSubmit});
      admin.register_site({"node1", wsrf->exec_address("node1"),
                           wsrf->data_address("node1"), {"blast"}});
      wsrf_user = std::make_unique<gridbox::WsrfUserClient>(
          *caller, *wsrf, gridbox::ClientIdentity{"CN=alice,O=VO", user_sec});
      wsrf_directory = wsrf_user->create_directory(wsrf->data_address("node1"));
    } else {
      sink = std::make_unique<net::VirtualCaller>(
          net, net::VirtualCaller::Options{
                   .transport = net::TransportKind::kSoapTcp, .meter = &meter});
      auto central_root = file_root.string() + "-central";
      std::filesystem::remove_all(central_root);
      wst = std::make_unique<gridbox::WstGridDeployment>(
          gridbox::WstGridDeployment::Params{
              .backend = std::make_unique<xmldb::FileBackend>(central_root),
              .central_container = central_cc,
              .outcall_caller = outcalls.get(),
              .outcall_security = node_sec,
              .notification_sink = sink.get(),
              .central_base = "http://vo.example",
              .reservation_ttl_ms = 4LL * 3600 * 1000,
              .admin_dn = "CN=admin,O=VO",
          });
      wst->add_host({.host = "node1",
                     .base = "http://node1.example",
                     .backend = std::make_unique<xmldb::FileBackend>(
                         file_root.string() + "-db"),
                     .container = node_cc,
                     .file_root = file_root,
                     .subscription_file = {}});
      net.bind("vo.example", wst->central_container());
      net.bind("node1.example", wst->host_container("node1"));
      gridbox::WstAdminClient admin(*caller, *wst, {"CN=admin,O=VO", admin_sec});
      admin.add_account("CN=alice,O=VO", {gridbox::kPrivilegeSubmit});
      admin.register_site({"node1", wst->exec_address("node1"),
                           wst->data_address("node1"), {"blast"}});
      wst_user = std::make_unique<gridbox::WstUserClient>(
          *caller, *wst, gridbox::ClientIdentity{"CN=alice,O=VO", user_sec});
    }
    net.bind("user.example", consumer);
  }

  void ensure_reserved() {
    if (stack == Stack::kWsrf) {
      if (!wsrf_reserved) {
        wsrf_reservation = wsrf_user->make_reservation("node1");
        wsrf_reserved = true;
      }
    } else {
      if (!wst_reserved) {
        wst_user->make_reservation("node1");
        wst_reserved = true;
      }
    }
  }

  void release_reservation() {
    if (stack == Stack::kWsrf) {
      if (wsrf_reserved) {
        wsrf_user->destroy(wsrf_reservation);
        wsrf_reserved = false;
      }
    } else {
      if (wst_reserved) {
        wst_user->unreserve("node1");
        wst_reserved = false;
      }
    }
  }
};

GridRig::GridRig(Stack stack, bool distributed)
    : impl_(std::make_unique<Impl>(stack, distributed, meter_)) {}
GridRig::~GridRig() = default;

bool GridRig::has_unreserve() const { return impl_->stack == Stack::kWst; }

void GridRig::prep_get_available_resource() { impl_->release_reservation(); }

void GridRig::op_get_available_resource() {
  auto sites = impl_->stack == Stack::kWsrf
                   ? impl_->wsrf_user->get_available_resources("blast")
                   : impl_->wst_user->get_available_resources("blast");
  benchmark::DoNotOptimize(sites);
}

void GridRig::prep_make_reservation() { impl_->release_reservation(); }

void GridRig::op_make_reservation() { impl_->ensure_reserved(); }

void GridRig::prep_upload_file() { impl_->ensure_reserved(); }

void GridRig::op_upload_file() {
  std::string name = "bench-" + std::to_string(impl_->file_counter++) + ".dat";
  if (impl_->stack == Stack::kWsrf) {
    impl_->wsrf_user->upload(impl_->wsrf_directory, name, "benchmark payload");
  } else {
    impl_->wst_user->upload(impl_->wst->data_address("node1"), name,
                            "benchmark payload");
  }
}

void GridRig::prep_instantiate_job() {
  // Jobs claim (WSRF) or require (WST) a reservation; each iteration needs
  // a fresh one because the prior job claimed it.
  impl_->release_reservation();
  impl_->ensure_reserved();
}

void GridRig::op_instantiate_job() {
  if (impl_->stack == Stack::kWsrf) {
    soap::EndpointReference job = impl_->wsrf_user->start_job(
        impl_->wsrf->exec_address("node1"), "sim:duration=100000000,exit=0",
        impl_->wsrf_reservation, impl_->wsrf_directory);
    benchmark::DoNotOptimize(job);
  } else {
    soap::EndpointReference job = impl_->wst_user->start_job(
        impl_->wst->exec_address("node1"), "sim:duration=100000000,exit=0");
    benchmark::DoNotOptimize(job);
  }
}

void GridRig::post_instantiate_job() {
  // The WSRF reservation is now claimed by the (never-ending) benchmark
  // job; destroy it so the next iteration can mint a fresh one — otherwise
  // the single host stays reserved.
  if (impl_->stack == Stack::kWsrf) {
    impl_->wsrf_user->destroy(impl_->wsrf_reservation);
    impl_->wsrf_reserved = false;
  }
}

void GridRig::prep_delete_file() {
  prep_upload_file();
  op_upload_file();
}

void GridRig::op_delete_file() {
  std::string name = "bench-" + std::to_string(impl_->file_counter - 1) + ".dat";
  if (impl_->stack == Stack::kWsrf) {
    impl_->wsrf_user->delete_file(impl_->wsrf_directory, name);
  } else {
    impl_->wst_user->delete_file(impl_->wst->data_address("node1"), name);
  }
}

void GridRig::prep_unreserve_resource() { impl_->ensure_reserved(); }

void GridRig::op_unreserve_resource() {
  if (impl_->stack != Stack::kWst) {
    throw std::logic_error("unreserve is a WS-Transfer-only operation");
  }
  impl_->wst_user->unreserve("node1");
  impl_->wst_reserved = false;
}

}  // namespace gs::bench
