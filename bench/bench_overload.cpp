// Overload behaviour: goodput under an open-loop load at ~10x capacity.
//
// The paper's measurements are closed-loop (each client waits for its
// response), which can never overload a server: offered load tracks
// completion rate by construction. Real grid front-ends see the opposite —
// submission bursts arrive whether or not the container keeps up — so this
// bench drives the WS-Transfer counter deployment open-loop and measures
// *goodput*: completions that return 200 within a deadline, per second of
// offered-load wall time. Completing a request after its caller gave up
// counts for nothing.
//
// Three measured phases:
//   capacity   closed-loop: W workers, each request holds a simulated
//              10 ms backend I/O stage — the sustainable completion rate.
//   naive      open-loop at 10x capacity against a deployment WITHOUT
//              admission control: the backlog grows without bound, queue
//              wait blows through the deadline, goodput collapses even
//              though the container is "busy" the whole time.
//   admission  the same storm with an AdmissionController driving the
//              accept loop (the production placement — the accept thread
//              sheds, the worker pool never pays to compose rejections):
//              bulk requests are shed once the backlog passes the bulk
//              watermark, so admitted requests still finish in time and
//              goodput stays near capacity. A monitoring-class trickle
//              (WS-Transfer Get on /Telemetry) rides a reserved worker
//              lane and must keep its p99 within 2x of unloaded — you can
//              still see into a saturated container.
//
// Hand-rolled main (the unit of measurement is a multi-threaded trial).
// Writes BENCH_overload.json; exits nonzero when goodput-with-admission
// drops below 70% of capacity, when the naive goodput fails to collapse
// below 50%, or when the monitoring p99 leaves the 2x envelope — the
// overload-control claims are machine-checked, same as the scaling bench.
#include <atomic>
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "container/admission.hpp"
#include "harness.hpp"
#include "telemetry/service.hpp"
#include "wst/client.hpp"

namespace {

using namespace gs;
using Clock = std::chrono::steady_clock;

constexpr std::chrono::milliseconds kBackendDelay{10};
constexpr int kWorkers = 4;            // bulk service lanes
constexpr double kOverloadFactor = 10.0;
constexpr double kDeadlineMs = 400.0;  // caller patience: 40x service time
constexpr auto kOverloadDuration = std::chrono::seconds(2);
constexpr auto kMonitoringInterval = std::chrono::milliseconds(25);

/// Stand-in for the blocking backend call behind every counter request
/// (remote database, compute job). Shed requests never reach it: the
/// admission stage sits in front.
class SimulatedBackendIoHandler final : public container::Handler {
 public:
  const char* name() const noexcept override { return "simulated-backend-io"; }
  void handle(container::PipelineContext& ctx, Next next) override {
    std::this_thread::sleep_for(kBackendDelay);
    next(ctx);
  }
};

enum class Lane { kBulk, kMonitoring };

struct Token {
  Lane lane;
  Clock::time_point enqueued;
};

/// Two-lane accept queue: monitoring pops first, and one worker serves the
/// monitoring lane exclusively so telemetry never waits behind a bulk
/// backlog. `size()` is the live transport backlog the AdmissionController
/// judges depth sheds on.
class LoadQueue {
 public:
  void push(Token t) {
    {
      std::lock_guard lock(mu_);
      (t.lane == Lane::kMonitoring ? monitoring_ : bulk_).push_back(t);
    }
    cv_.notify_one();
  }

  /// Blocks for the next token in `lane` (each worker serves exactly one
  /// lane — the monitoring lane's capacity is reserved, not borrowed).
  /// Returns false when the queue is stopped (tokens still enqueued are
  /// abandoned — their callers timed out long ago).
  bool pop(Lane lane, Token& out) {
    std::deque<Token>& q = lane == Lane::kMonitoring ? monitoring_ : bulk_;
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return stopped_ || !q.empty(); });
    if (q.empty()) return false;  // stopped
    out = q.front();
    q.pop_front();
    return true;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return monitoring_.size() + bulk_.size();
  }

  void stop() {
    {
      std::lock_guard lock(mu_);
      stopped_ = true;
    }
    cv_.notify_all();
  }

  void reset() {
    std::lock_guard lock(mu_);
    stopped_ = false;
    monitoring_.clear();
    bulk_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Token> monitoring_;
  std::deque<Token> bulk_;
  bool stopped_ = false;
};

struct LaneStats {
  std::int64_t completed = 0;   // 200 within deadline
  std::int64_t late = 0;        // 200 after deadline: throughput, not goodput
  std::int64_t shed = 0;        // 503
  std::int64_t errors = 0;
  std::vector<double> latencies_us;  // completions only

  void merge(const LaneStats& o) {
    completed += o.completed;
    late += o.late;
    shed += o.shed;
    errors += o.errors;
    latencies_us.insert(latencies_us.end(), o.latencies_us.begin(),
                        o.latencies_us.end());
  }
};

double p99_us(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[static_cast<std::size_t>(0.99 * (v.size() - 1))];
}

struct Worker {
  std::unique_ptr<net::VirtualCaller> caller;
  std::unique_ptr<counter::WstCounterClient> client;
  std::unique_ptr<wst::TransferProxy> telemetry;
  LaneStats stats;
};

std::vector<Worker> make_workers(net::VirtualNetwork& net,
                                 counter::WstCounterDeployment& wst,
                                 const std::string& monitoring_address,
                                 int count) {
  std::vector<Worker> workers(static_cast<std::size_t>(count));
  for (Worker& w : workers) {
    w.caller = std::make_unique<net::VirtualCaller>(net,
                                                    net::VirtualCaller::Options{});
    w.client = std::make_unique<counter::WstCounterClient>(
        *w.caller, wst.counter_address(), wst.source_address());
    w.client->create();
    w.client->get();  // warm templates outside any timed window
    w.telemetry = std::make_unique<wst::TransferProxy>(
        *w.caller, soap::EndpointReference(monitoring_address),
        container::ProxySecurity{});
  }
  return workers;
}

void serve(Worker& w, LoadQueue& queue, Lane lane,
           container::AdmissionController* admission) {
  Token token;
  while (queue.pop(lane, token)) {
    if (admission) admission->on_start();
    try {
      if (token.lane == Lane::kMonitoring) {
        w.telemetry->get();
      } else {
        w.client->get();
      }
      double us = std::chrono::duration<double, std::micro>(Clock::now() -
                                                            token.enqueued)
                      .count();
      if (us <= kDeadlineMs * 1000.0) {
        ++w.stats.completed;
        w.stats.latencies_us.push_back(us);
      } else {
        ++w.stats.late;
      }
    } catch (const net::OverloadError&) {
      ++w.stats.shed;
    } catch (const std::exception&) {
      ++w.stats.errors;
    }
    if (admission) admission->on_finish();
  }
}

struct PhaseResult {
  double seconds = 0;
  LaneStats bulk;
  LaneStats monitoring;
  std::int64_t offered = 0;
  std::int64_t abandoned = 0;
};

/// Open-loop storm: a producer enqueues bulk tokens at `rate_per_sec`
/// (plus a monitoring trickle when asked) for `duration`, regardless of
/// how the server keeps up; workers serve until the producer stops, then
/// the remaining backlog is abandoned.
///
/// When `admission` is set, the producer doubles as the accept loop:
/// every arriving request takes one AdmissionController::admit decision
/// *before* it may join the queue — the production placement, where the
/// accept/IO thread sheds and the worker pool's time is never spent
/// composing 503s. Sheds therefore cost the server ~a map lookup, and the
/// backlog the admitted requests wait behind stays bounded at the bulk
/// watermark.
PhaseResult run_open_loop(net::VirtualNetwork& net,
                          counter::WstCounterDeployment& wst,
                          const std::string& monitoring_address,
                          LoadQueue& queue, double rate_per_sec,
                          bool with_monitoring,
                          container::AdmissionController* admission) {
  queue.reset();
  std::vector<Worker> workers =
      make_workers(net, wst, monitoring_address, kWorkers + 1);

  std::vector<std::thread> threads;
  for (int i = 0; i < kWorkers + 1; ++i) {
    Worker& w = workers[static_cast<std::size_t>(i)];
    Lane lane = i == 0 ? Lane::kMonitoring : Lane::kBulk;
    threads.emplace_back(
        [&w, &queue, lane, admission] { serve(w, queue, lane, admission); });
  }

  PhaseResult result;
  auto start = Clock::now();
  auto mon_next = start;
  std::int64_t produced = 0;
  while (true) {
    auto now = Clock::now();
    if (now - start >= kOverloadDuration) break;
    double elapsed = std::chrono::duration<double>(now - start).count();
    auto owed = static_cast<std::int64_t>(elapsed * rate_per_sec);
    for (; produced < owed; ++produced) {
      if (admission &&
          !admission->admit(container::Priority::kBulk, "anon", "/Counter")
               .admitted) {
        ++result.bulk.shed;
        continue;
      }
      queue.push({Lane::kBulk, now});
    }
    if (with_monitoring && now >= mon_next) {
      if (!admission || admission
                            ->admit(container::Priority::kMonitoring, "anon",
                                    "/Telemetry")
                            .admitted) {
        queue.push({Lane::kMonitoring, now});
      } else {
        ++result.monitoring.shed;
      }
      mon_next += kMonitoringInterval;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  result.abandoned = static_cast<std::int64_t>(queue.size());
  queue.stop();
  for (auto& t : threads) t.join();
  result.offered = produced;

  for (int i = 0; i < kWorkers + 1; ++i) {
    Worker& w = workers[static_cast<std::size_t>(i)];
    (i == 0 ? result.monitoring : result.bulk).merge(w.stats);
    w.client->remove();
  }
  return result;
}

/// Closed-loop capacity: W workers issuing back-to-back gets — the
/// completion rate the open-loop phases are scaled from.
double run_capacity(net::VirtualNetwork& net,
                    counter::WstCounterDeployment& wst,
                    const std::string& monitoring_address) {
  std::vector<Worker> workers =
      make_workers(net, wst, monitoring_address, kWorkers);
  constexpr int kOpsPerWorker = 60;
  auto before = Clock::now();
  std::vector<std::thread> threads;
  for (Worker& w : workers) {
    threads.emplace_back([&w] {
      for (int i = 0; i < kOpsPerWorker; ++i) w.client->get();
    });
  }
  for (auto& t : threads) t.join();
  double seconds = std::chrono::duration<double>(Clock::now() - before).count();
  for (Worker& w : workers) w.client->remove();
  return kWorkers * kOpsPerWorker / seconds;
}

/// Unloaded monitoring baseline: sequential telemetry gets on an otherwise
/// idle container.
double run_unloaded_monitoring(net::VirtualNetwork& net,
                               counter::WstCounterDeployment& wst,
                               const std::string& monitoring_address) {
  std::vector<Worker> workers = make_workers(net, wst, monitoring_address, 1);
  std::vector<double> latencies;
  for (int i = 0; i < 100; ++i) {
    auto before = Clock::now();
    workers[0].telemetry->get();
    latencies.push_back(
        std::chrono::duration<double, std::micro>(Clock::now() - before)
            .count());
  }
  workers[0].client->remove();
  return p99_us(std::move(latencies));
}

std::unique_ptr<counter::WstCounterDeployment> deploy(
    net::VirtualNetwork& net, net::VirtualCaller& sink, const std::string& host) {
  auto wst = std::make_unique<counter::WstCounterDeployment>(
      counter::WstCounterDeployment::Params{
          .backend = std::make_unique<xmldb::MemoryBackend>(),
          .container = {},
          .notification_sink = &sink,
          .address_base = "http://" + host,
          .subscription_file = {},
      });
  wst->container().chain().insert_after(
      "telemetry", std::make_shared<SimulatedBackendIoHandler>());
  net.bind(host, wst->container());
  return wst;
}

}  // namespace

int main() {
  net::VirtualNetwork net{net::NetworkProfile::colocated()};
  net::VirtualCaller sink(
      net, net::VirtualCaller::Options{.transport = net::TransportKind::kSoapTcp});

  LoadQueue queue;

  // Deployment A ("guarded"): the storm's admission decisions are taken by
  // an AdmissionController at the accept loop (see run_open_loop), depth
  // judged on the live accept queue plus in-flight requests. Token buckets
  // stay disabled — this bench isolates depth shedding; the bucket,
  // breaker, and chain-stage 503 paths are covered by
  // tests/overload_test.cpp. The chain still carries an AdmissionHandler
  // (inflight-only controller): the in-process guard a deployment keeps
  // even when its transport pre-admits, exercised on every admitted
  // request.
  auto guarded = deploy(net, sink, "overload.example");
  auto accept_controller =
      std::make_shared<container::AdmissionController>(
          container::AdmissionConfig{
              .queue_depth = [&queue] { return queue.size(); },
          });
  guarded->container().chain().insert_before(
      "parse", std::make_shared<container::AdmissionHandler>(
                   std::make_shared<container::AdmissionController>(
                       container::AdmissionConfig{})));

  // Deployment B: the same container with no admission anywhere.
  auto naive = deploy(net, sink, "naive.example");

  // The monitoring lane polls a metrics-only telemetry endpoint (no trace
  // ring, no event log in the document): the stock TelemetryService
  // serializes the full global trace ring per Get, which prices a storm's
  // worth of spans into the very probe that is supposed to stay cheap.
  // The "/Telemetry" path suffix keeps it monitoring-class.
  telemetry::TraceLog quiet_trace(1);
  telemetry::TelemetryService guarded_mon(
      "http://overload.example/Mon/Telemetry",
      &telemetry::MetricsRegistry::global(), &quiet_trace, nullptr);
  guarded->container().deploy("/Mon/Telemetry", guarded_mon);
  telemetry::TelemetryService naive_mon(
      "http://naive.example/Mon/Telemetry",
      &telemetry::MetricsRegistry::global(), &quiet_trace, nullptr);
  naive->container().deploy("/Mon/Telemetry", naive_mon);

  std::printf("overload: %d workers + 1 monitoring lane, %lld ms backend I/O "
              "per request, deadline %.0f ms\n",
              kWorkers, static_cast<long long>(kBackendDelay.count()),
              kDeadlineMs);

  const std::string guarded_mon_addr = guarded_mon.address();
  const std::string naive_mon_addr = naive_mon.address();

  auto cap_before = telemetry::MetricsRegistry::global().snapshot();
  double capacity = run_capacity(net, *guarded, guarded_mon_addr);
  bench::BenchTelemetry::instance().add(
      "overload/capacity", static_cast<std::int64_t>(capacity),
      telemetry::delta(cap_before,
                       telemetry::MetricsRegistry::global().snapshot()),
      capacity, {{"capacity_ops_per_sec", capacity}});
  std::printf("  capacity (closed-loop): %.1f ops/sec\n", capacity);

  double offered_rate = kOverloadFactor * capacity;

  auto naive_before = telemetry::MetricsRegistry::global().snapshot();
  PhaseResult naive_result =
      run_open_loop(net, *naive, naive_mon_addr, queue, offered_rate,
                    /*with_monitoring=*/false, /*admission=*/nullptr);
  double naive_goodput = naive_result.bulk.completed / naive_result.seconds;
  bench::BenchTelemetry::instance().add(
      "overload/naive_10x", naive_result.offered,
      telemetry::delta(naive_before,
                       telemetry::MetricsRegistry::global().snapshot()),
      0.0,
      {{"goodput_per_sec", naive_goodput},
       {"offered_per_sec", naive_result.offered / naive_result.seconds},
       {"late", static_cast<double>(naive_result.bulk.late)},
       {"abandoned", static_cast<double>(naive_result.abandoned)}});
  std::printf("  naive 10x: offered=%.0f/s goodput=%.1f/s late=%lld "
              "abandoned=%lld\n",
              naive_result.offered / naive_result.seconds, naive_goodput,
              static_cast<long long>(naive_result.bulk.late),
              static_cast<long long>(naive_result.abandoned));

  double mon_unloaded_p99 =
      run_unloaded_monitoring(net, *guarded, guarded_mon_addr);

  auto adm_before = telemetry::MetricsRegistry::global().snapshot();
  PhaseResult adm = run_open_loop(net, *guarded, guarded_mon_addr, queue,
                                  offered_rate, /*with_monitoring=*/true,
                                  accept_controller.get());
  double adm_goodput = adm.bulk.completed / adm.seconds;
  double mon_loaded_p99 = p99_us(adm.monitoring.latencies_us);
  bench::BenchTelemetry::instance().add(
      "overload/admission_10x", adm.offered,
      telemetry::delta(adm_before,
                       telemetry::MetricsRegistry::global().snapshot()),
      0.0,
      {{"goodput_per_sec", adm_goodput},
       {"offered_per_sec", adm.offered / adm.seconds},
       {"shed", static_cast<double>(adm.bulk.shed)},
       {"monitoring_p99_us", mon_loaded_p99},
       {"monitoring_unloaded_p99_us", mon_unloaded_p99}});
  std::printf("  admission 10x: offered=%.0f/s goodput=%.1f/s shed=%lld "
              "mon_p99=%.0fus (unloaded %.0fus)\n",
              adm.offered / adm.seconds, adm_goodput,
              static_cast<long long>(adm.bulk.shed), mon_loaded_p99,
              mon_unloaded_p99);

  bench::BenchTelemetry::instance().write("overload");

  bool ok = true;
  if (adm_goodput < 0.7 * capacity) {
    std::printf("FAIL: goodput with admission %.1f/s < 70%% of capacity "
                "%.1f/s\n", adm_goodput, capacity);
    ok = false;
  } else {
    std::printf("PASS: goodput with admission %.1f/s >= 70%% of capacity "
                "%.1f/s\n", adm_goodput, capacity);
  }
  if (naive_goodput > 0.5 * capacity) {
    std::printf("FAIL: naive goodput %.1f/s did not collapse (> 50%% of "
                "capacity %.1f/s) — overload scenario is not overloading\n",
                naive_goodput, capacity);
    ok = false;
  } else {
    std::printf("PASS: naive goodput %.1f/s collapsed below 50%% of capacity "
                "%.1f/s\n", naive_goodput, capacity);
  }
  if (adm.bulk.shed == 0) {
    std::printf("FAIL: admission phase shed nothing — storm never hit the "
                "watermark\n");
    ok = false;
  } else {
    std::printf("PASS: admission shed %lld requests\n",
                static_cast<long long>(adm.bulk.shed));
  }
  if (mon_loaded_p99 > 2.0 * mon_unloaded_p99) {
    std::printf("FAIL: monitoring p99 %.0fus > 2x unloaded %.0fus\n",
                mon_loaded_p99, mon_unloaded_p99);
    ok = false;
  } else {
    std::printf("PASS: monitoring p99 %.0fus within 2x of unloaded %.0fus\n",
                mon_loaded_p99, mon_unloaded_p99);
  }
  return ok ? 0 : 1;
}
