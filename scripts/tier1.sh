#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
#   $ scripts/tier1.sh [build-dir]
# Opt-in sanitizers (ASan + UBSan, Debug config, separate build dir):
#   $ SANITIZE=1 scripts/tier1.sh
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${SANITIZE:-0}" == "1" ]]; then
  BUILD_DIR="${1:-build-asan}"
  SAN_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer"
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
    -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
else
  BUILD_DIR="${1:-build}"
  cmake -B "$BUILD_DIR" -S .
fi

cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
