#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
#   $ scripts/tier1.sh [build-dir]
# Opt-in sanitizers (Debug config, separate build dir per mode):
#   $ SANITIZE=1 scripts/tier1.sh       # ASan + UBSan, full suite
#   $ SANITIZE=tsan scripts/tier1.sh    # TSan, concurrency-heavy suites only
set -euo pipefail

cd "$(dirname "$0")/.."

TSAN_ONLY=0
case "${SANITIZE:-0}" in
  1)
    BUILD_DIR="${1:-build-asan}"
    SAN_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer"
    ;;
  tsan)
    BUILD_DIR="${1:-build-tsan}"
    SAN_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
    TSAN_ONLY=1
    ;;
  *)
    BUILD_DIR="${1:-build}"
    SAN_FLAGS=""
    ;;
esac

if [[ -n "$SAN_FLAGS" ]]; then
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
    -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
else
  cmake -B "$BUILD_DIR" -S .
fi

cmake --build "$BUILD_DIR" -j"$(nproc)"

if [[ "$TSAN_ONLY" == "1" ]]; then
  # Thread sanitizer runs the suites that exercise shared state under
  # threads: telemetry (sharded counters, span/event rings, monitor
  # pub/sub) and reliability (delivery queues + pools under faults).
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)" \
    -R 'telemetry|reliability|monitor'
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
fi
