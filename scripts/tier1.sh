#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
#   $ scripts/tier1.sh [build-dir]
# Opt-in sanitizers (Debug config, separate build dir per mode):
#   $ SANITIZE=1 scripts/tier1.sh       # ASan + UBSan, full suite
#   $ SANITIZE=tsan scripts/tier1.sh    # TSan, concurrency-heavy suites only
# Concurrency gate (the scaling claim, machine-checked):
#   $ CONCURRENCY=1 scripts/tier1.sh    # TSan build: concurrency suite
#                                       # + the scaling bench
# Overload gate (the goodput claim, machine-checked):
#   $ OVERLOAD=1 scripts/tier1.sh       # overload suite + the open-loop
#                                       # goodput bench
# Observability gate (the sampler-overhead claim, machine-checked):
#   $ OBSERVE=1 scripts/tier1.sh        # timeseries/slo suites + the
#                                       # sampling-overhead bench
# Durability gate (the crash-safety + group-commit claims, machine-checked):
#   $ DURABLE=1 scripts/tier1.sh        # crash-injection suites + the
#                                       # durable-write throughput bench
set -euo pipefail

cd "$(dirname "$0")/.."

# The concurrency gate runs its suite under ThreadSanitizer.
if [[ "${CONCURRENCY:-0}" == "1" && -z "${SANITIZE:-}" ]]; then
  SANITIZE=tsan
fi

TSAN_ONLY=0
case "${SANITIZE:-0}" in
  1)
    BUILD_DIR="${1:-build-asan}"
    SAN_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer"
    ;;
  tsan)
    BUILD_DIR="${1:-build-tsan}"
    SAN_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
    TSAN_ONLY=1
    ;;
  *)
    BUILD_DIR="${1:-build}"
    SAN_FLAGS=""
    ;;
esac

if [[ -n "$SAN_FLAGS" ]]; then
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
    -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
else
  cmake -B "$BUILD_DIR" -S .
fi

cmake --build "$BUILD_DIR" -j"$(nproc)"

if [[ "${CONCURRENCY:-0}" == "1" ]]; then
  # Concurrency gate, part one: the multi-threaded suites under TSan
  # (registry pins and the 8-thread hammer, plus the scheduler's two-phase
  # pass / JobRunner callback interplay).
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)" \
    -R 'concurrency|scheduler'
  # Part two: the scaling benchmark from an unsanitized build (sanitizer
  # CPU overhead would mask the overlap being measured). It exits nonzero
  # unless 8 client threads reach >= 3x single-thread throughput, and
  # writes BENCH_concurrent_dispatch.json next to the build.
  BENCH_DIR="build"
  cmake -B "$BENCH_DIR" -S .
  cmake --build "$BENCH_DIR" -j"$(nproc)" --target bench_concurrent_dispatch
  (cd "$BENCH_DIR/bench" && ./bench_concurrent_dispatch)
elif [[ "$TSAN_ONLY" == "1" ]]; then
  # Thread sanitizer runs the suites that exercise shared state under
  # threads: telemetry (sharded counters, span/event rings, monitor
  # pub/sub), reliability (delivery queues + pools under faults),
  # concurrency (registry pins, per-resource locks, the 8-thread hammer),
  # scheduler (two-phase passes against JobRunner exit callbacks), and the
  # wire fast path (shared template skeletons, thread-local probes and
  # scratch buffers, refcounted buffer-chain segments) with its xml
  # substrate, the observability layer (sampler vs request threads,
  # SLO evaluation against a concurrently-fed store), and the durable
  # storage engine (group-commit thread vs writers, drain barriers, the
  # load/store/remove cache hammer).
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)" \
    -R 'telemetry|reliability|monitor|concurrency|scheduler|xml|wire|overload|timeseries|slo|durability'
elif [[ "${OVERLOAD:-0}" == "1" ]]; then
  # Overload gate, part one: the admission/breaker suite.
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)" \
    -R 'overload'
  # Part two: the open-loop goodput bench. It exits nonzero unless goodput
  # under a 10x storm stays >= 70% of closed-loop capacity with shedding
  # engaged (and collapses without), and writes BENCH_overload.json next
  # to the build.
  cmake --build "$BUILD_DIR" -j"$(nproc)" --target bench_overload
  (cd "$BUILD_DIR/bench" && ./bench_overload)
elif [[ "${OBSERVE:-0}" == "1" ]]; then
  # Observability gate, part one: the retention/SLO/cost suites.
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)" \
    -R 'timeseries|slo'
  # Part two: the sampling-overhead bench. It exits nonzero unless dispatch
  # throughput with the sampler on stays within 5% of sampler-off and the
  # cost aggregator resolves >= 2 tenants' shares under mixed load, and
  # writes BENCH_timeseries.json next to the build.
  cmake --build "$BUILD_DIR" -j"$(nproc)" --target bench_timeseries
  (cd "$BUILD_DIR/bench" && ./bench_timeseries)
elif [[ "${DURABLE:-0}" == "1" ]]; then
  # Durability gate, part one: the crash-injection suite (torn appends,
  # partial fsyncs, mid-log bit rot, restart recovery across both SOAP
  # stacks) plus the xmldb contract/cache suites over the WAL backend.
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)" \
    -R 'durability|xmldb'
  # Part two: the durable-write bench. It exits nonzero unless group
  # commit holds >= 50% of the memory backend's document-store throughput
  # at a 64-document write window and a 10k-document log replays in full,
  # and writes BENCH_durability.json next to the build.
  cmake --build "$BUILD_DIR" -j"$(nproc)" --target bench_durability
  (cd "$BUILD_DIR/bench" && ./bench_durability)
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
fi
