#!/usr/bin/env python3
"""Compare two sets of BENCH_*.json per-layer telemetry dumps.

Usage:
    scripts/bench_diff.py BASELINE_DIR CANDIDATE_DIR [--threshold 15]

Matches BENCH_<figure>.json files by name, then benchmarks by name, then
histograms (layers) by name, and compares p50_us. Exits nonzero when any
layer's p50 regressed by more than the threshold (percent). Layers with
fewer than MIN_COUNT samples in either run are reported but never fail the
check — power-of-two-bucket percentiles on a handful of samples are noise.

Records carrying an ops_per_sec field (the concurrent-dispatch scaling
bench) are additionally gated on throughput: a drop of more than the
threshold (percent) against the baseline fails the check.

Allocation metrics are gated too: counters prefixed "xml." (the wire-path
allocation probes — arena bytes, DOM nodes) are compared per iteration,
and an increase of more than the threshold (percent) fails the check.

Overload records (BENCH_overload.json) carry goodput_per_sec and
monitoring_p99_us fields: goodput drops are gated at the threshold like
throughput; the monitoring p99 — a tail statistic over a sleep-paced
trickle — is gated at 3x the threshold to absorb scheduler jitter.

Observability records (BENCH_timeseries.json) carry sampler_overhead_pct
(gated against the absolute SAMPLER_OVERHEAD_CEILING — the sampler must
stay within 5% of sampling-off throughput regardless of baseline) and
tenant_attribution_us (a per-request cost, gated like monitoring p99 at
3x the threshold to absorb jitter on a sub-microsecond statistic).

Durability records (BENCH_durability.json) carry ops_per_sec (the
pipelined document-store throughput, gated like any throughput) and
recovery_ms (cold-start WAL replay wall time — a single-shot
millisecond-scale measurement, gated at 3x the threshold like the other
jitter-prone statistics).
"""

import argparse
import json
import pathlib
import sys

MIN_COUNT = 16
# The sampler-overhead gate is absolute: the bench's own PASS line uses the
# same ceiling, so a candidate run may never regress past it even when the
# baseline run measured near-zero overhead.
SAMPLER_OVERHEAD_CEILING = 5.0
# Histograms use power-of-two buckets: below this p50 a run-to-run shift of
# a single bucket reads as a 50-100% change. Sub-resolution layers are
# reported but never fail the check.
MIN_P50_US = 10.0


def load_figures(directory):
    figures = {}
    for path in sorted(pathlib.Path(directory).glob("BENCH_*.json")):
        if path.name.endswith((".trace.json", ".series.json")):
            continue  # chrome trace / time-series dump, not a telemetry report
        with open(path) as f:
            figures[path.name] = {record["name"]: record for record in json.load(f)}
    return figures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--threshold",
        type=float,
        default=15.0,
        help="max allowed p50 regression per layer, percent (default 15)",
    )
    args = parser.parse_args()

    base_figures = load_figures(args.baseline)
    cand_figures = load_figures(args.candidate)
    if not base_figures:
        print(f"no BENCH_*.json under {args.baseline}", file=sys.stderr)
        return 2

    failures = []
    compared = 0
    for figure, base_records in sorted(base_figures.items()):
        cand_records = cand_figures.get(figure)
        if cand_records is None:
            print(f"~ {figure}: missing from candidate, skipped")
            continue
        for bench, base_record in sorted(base_records.items()):
            cand_record = cand_records.get(bench)
            if cand_record is None:
                print(f"~ {figure} {bench}: missing from candidate, skipped")
                continue
            base_ops = base_record.get("ops_per_sec", 0.0)
            cand_ops = cand_record.get("ops_per_sec", 0.0)
            if base_ops > 0.0 and cand_ops > 0.0:
                drop = (base_ops - cand_ops) / base_ops * 100.0
                compared += 1
                line = (
                    f"{figure} {bench}: ops/sec {base_ops:.1f} -> "
                    f"{cand_ops:.1f} ({-drop:+.1f}%)"
                )
                if drop > args.threshold:
                    failures.append(line)
                    print(f"! {line}")
                else:
                    print(f"  {line}")
            base_goodput = base_record.get("goodput_per_sec", 0.0)
            cand_goodput = cand_record.get("goodput_per_sec", 0.0)
            if base_goodput > 0.0 and cand_goodput > 0.0:
                drop = (base_goodput - cand_goodput) / base_goodput * 100.0
                compared += 1
                line = (
                    f"{figure} {bench}: goodput/sec {base_goodput:.1f} -> "
                    f"{cand_goodput:.1f} ({-drop:+.1f}%)"
                )
                if drop > args.threshold:
                    failures.append(line)
                    print(f"! {line}")
                else:
                    print(f"  {line}")
            base_p99 = base_record.get("monitoring_p99_us", 0.0)
            cand_p99 = cand_record.get("monitoring_p99_us", 0.0)
            if base_p99 > 0.0 and cand_p99 > 0.0:
                change = (cand_p99 - base_p99) / base_p99 * 100.0
                compared += 1
                line = (
                    f"{figure} {bench}: monitoring p99 {base_p99:.1f} -> "
                    f"{cand_p99:.1f} us ({change:+.1f}%)"
                )
                if change > 3.0 * args.threshold:
                    failures.append(line)
                    print(f"! {line}")
                else:
                    print(f"  {line}")
            cand_overhead = cand_record.get("sampler_overhead_pct")
            if cand_overhead is not None:
                base_overhead = base_record.get("sampler_overhead_pct", 0.0)
                compared += 1
                line = (
                    f"{figure} {bench}: sampler overhead {base_overhead:.1f}"
                    f" -> {cand_overhead:.1f}%"
                    f" (ceiling {SAMPLER_OVERHEAD_CEILING:.0f}%)"
                )
                if cand_overhead > SAMPLER_OVERHEAD_CEILING:
                    failures.append(line)
                    print(f"! {line}")
                else:
                    print(f"  {line}")
            base_attr = base_record.get("tenant_attribution_us", 0.0)
            cand_attr = cand_record.get("tenant_attribution_us", 0.0)
            if base_attr > 0.0 and cand_attr > 0.0:
                change = (cand_attr - base_attr) / base_attr * 100.0
                compared += 1
                line = (
                    f"{figure} {bench}: tenant attribution {base_attr:.2f} -> "
                    f"{cand_attr:.2f} us ({change:+.1f}%)"
                )
                if change > 3.0 * args.threshold:
                    failures.append(line)
                    print(f"! {line}")
                else:
                    print(f"  {line}")
            base_recovery = base_record.get("recovery_ms", 0.0)
            cand_recovery = cand_record.get("recovery_ms", 0.0)
            if base_recovery > 0.0 and cand_recovery > 0.0:
                change = (cand_recovery - base_recovery) / base_recovery * 100.0
                compared += 1
                line = (
                    f"{figure} {bench}: recovery {base_recovery:.1f} -> "
                    f"{cand_recovery:.1f} ms ({change:+.1f}%)"
                )
                if change > 3.0 * args.threshold:
                    failures.append(line)
                    print(f"! {line}")
                else:
                    print(f"  {line}")
            base_counters = base_record.get("counters", {})
            cand_counters = cand_record.get("counters", {})
            base_iters = max(base_record.get("iterations", 1), 1)
            cand_iters = max(cand_record.get("iterations", 1), 1)
            for name, base_total in sorted(base_counters.items()):
                if not name.startswith("xml."):
                    continue
                cand_total = cand_counters.get(name)
                if cand_total is None:
                    continue
                base_rate = base_total / base_iters
                cand_rate = cand_total / cand_iters
                if base_rate <= 0.0:
                    continue
                change = (cand_rate - base_rate) / base_rate * 100.0
                compared += 1
                line = (
                    f"{figure} {bench} {name}: {base_rate:.1f} -> "
                    f"{cand_rate:.1f} per iteration ({change:+.1f}%)"
                )
                if change > args.threshold:
                    failures.append(line)
                    print(f"! {line}")
                else:
                    print(f"  {line}")
            base_hists = base_record.get("histograms", {})
            cand_hists = cand_record.get("histograms", {})
            for layer, base_h in sorted(base_hists.items()):
                cand_h = cand_hists.get(layer)
                if cand_h is None:
                    continue
                base_p50 = base_h.get("p50_us", 0.0)
                cand_p50 = cand_h.get("p50_us", 0.0)
                if base_p50 <= 0.0:
                    continue
                change = (cand_p50 - base_p50) / base_p50 * 100.0
                compared += 1
                noisy = (
                    base_h.get("count", 0) < MIN_COUNT
                    or cand_h.get("count", 0) < MIN_COUNT
                    or max(base_p50, cand_p50) < MIN_P50_US
                )
                tag = f"{figure} {bench} {layer}"
                line = (
                    f"{tag}: p50 {base_p50:.1f} -> {cand_p50:.1f} us "
                    f"({change:+.1f}%)"
                )
                if change > args.threshold and not noisy:
                    failures.append(line)
                    print(f"! {line}")
                elif change > args.threshold:
                    print(f"~ {line} [noisy: low count or sub-resolution, ignored]")
                else:
                    print(f"  {line}")

    print(f"\ncompared {compared} layer p50s, {len(failures)} regressions "
          f"over {args.threshold:.0f}%")
    if failures:
        print("\nREGRESSIONS:")
        for line in failures:
            print(f"  {line}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
