// Tests for WS-Notification: topics, filters, subscriptions, delivery,
// pause/resume, raw delivery, and brokered / demand-based publishing.
#include <gtest/gtest.h>

#include "container/container.hpp"
#include "net/virtual_network.hpp"
#include "wsn/broker.hpp"
#include "wsn/client.hpp"
#include "wsn/consumer.hpp"
#include "wsn/producer.hpp"
#include "xml/parser.hpp"

namespace gs::wsn {
namespace {

const char* kNs = "urn:app";
xml::QName app(const char* local) { return {kNs, local}; }

// --- WS-Topics ------------------------------------------------------------------

using Dialect = TopicExpression::Dialect;

struct TopicCase {
  const char* name;
  Dialect dialect;
  const char* expr;
  const char* topic;
  bool match;
};

class TopicMatch : public ::testing::TestWithParam<TopicCase> {};

INSTANTIATE_TEST_SUITE_P(
    Dialects, TopicMatch,
    ::testing::Values(
        TopicCase{"SimpleMatchesRoot", Dialect::kSimple, "job", "job", true},
        TopicCase{"SimpleMatchesSubtree", Dialect::kSimple, "job",
                  "job/status/done", true},
        TopicCase{"SimpleRejectsOther", Dialect::kSimple, "job", "data", false},
        TopicCase{"ConcreteExact", Dialect::kConcrete, "job/status/done",
                  "job/status/done", true},
        TopicCase{"ConcreteRejectsPrefix", Dialect::kConcrete, "job/status",
                  "job/status/done", false},
        TopicCase{"ConcreteRejectsSuffix", Dialect::kConcrete, "job/status/done",
                  "job/status", false},
        TopicCase{"FullStarOneSegment", Dialect::kFull, "job/*/done",
                  "job/status/done", true},
        TopicCase{"FullStarExactlyOne", Dialect::kFull, "job/*/done",
                  "job/a/b/done", false},
        TopicCase{"FullAnyDepth", Dialect::kFull, "job//done",
                  "job/a/b/done", true},
        TopicCase{"FullAnyDepthZero", Dialect::kFull, "job//done", "job/done",
                  true},
        TopicCase{"FullLeadingStar", Dialect::kFull, "*/done", "job/done", true},
        TopicCase{"FullTrailingAnyDepth", Dialect::kFull, "job//", "job/x/y",
                  false}),
    [](const auto& info) { return info.param.name; });

TEST_P(TopicMatch, Matches) {
  if (std::string(GetParam().name) == "FullTrailingAnyDepth") {
    // "job//" has an empty trailing segment: rejected at parse.
    EXPECT_THROW(TopicExpression::parse(GetParam().dialect, GetParam().expr),
                 TopicError);
    return;
  }
  TopicExpression expr =
      TopicExpression::parse(GetParam().dialect, GetParam().expr);
  EXPECT_EQ(expr.matches(GetParam().topic), GetParam().match);
}

TEST(Topics, DialectValidation) {
  EXPECT_THROW(TopicExpression::parse(Dialect::kSimple, "a/b"), TopicError);
  EXPECT_THROW(TopicExpression::parse(Dialect::kSimple, "*"), TopicError);
  EXPECT_THROW(TopicExpression::parse(Dialect::kConcrete, "a/*/b"), TopicError);
  EXPECT_THROW(TopicExpression::parse(Dialect::kConcrete, ""), TopicError);
  EXPECT_NO_THROW(TopicExpression::parse(Dialect::kFull, "a/*/b"));
}

TEST(Topics, DialectUriRoundTrip) {
  for (Dialect d : {Dialect::kSimple, Dialect::kConcrete, Dialect::kFull}) {
    EXPECT_EQ(TopicExpression::dialect_from_uri(TopicExpression::dialect_uri(d)), d);
  }
  EXPECT_THROW(TopicExpression::dialect_from_uri("urn:bogus"), TopicError);
}

TEST(Topics, NamespaceRegistersIntermediates) {
  TopicNamespace ns;
  ns.add("job/status/done");
  EXPECT_TRUE(ns.contains("job"));
  EXPECT_TRUE(ns.contains("job/status"));
  EXPECT_TRUE(ns.contains("job/status/done"));
  EXPECT_FALSE(ns.contains("job/other"));
  EXPECT_EQ(ns.topics().size(), 3u);
}

TEST(Topics, NamespaceExpand) {
  TopicNamespace ns;
  ns.add("job/started");
  ns.add("job/done");
  ns.add("data/uploaded");
  TopicExpression all_job = TopicExpression::parse(Dialect::kFull, "job/*");
  EXPECT_EQ(ns.expand(all_job).size(), 2u);
}

// --- filters ---------------------------------------------------------------------

TEST(Filter, TopicComponent) {
  Filter f;
  f.set_topic(TopicExpression::parse(Dialect::kConcrete, "job/done"));
  auto msg = xml::parse_element("<m/>");
  EXPECT_TRUE(f.accepts("job/done", *msg, nullptr));
  EXPECT_FALSE(f.accepts("job/started", *msg, nullptr));
}

TEST(Filter, MessageContentComponent) {
  Filter f;
  f.set_message_content("/Event[code > 3]");
  EXPECT_TRUE(f.accepts("t", *xml::parse_element("<Event><code>5</code></Event>"),
                        nullptr));
  EXPECT_FALSE(f.accepts("t", *xml::parse_element("<Event><code>2</code></Event>"),
                         nullptr));
}

TEST(Filter, ProducerPropertiesComponent) {
  Filter f;
  f.set_producer_properties("Load < 10");
  auto msg = xml::parse_element("<m/>");
  auto low = xml::parse_element("<RP><Load>3</Load></RP>");
  auto high = xml::parse_element("<RP><Load>30</Load></RP>");
  EXPECT_TRUE(f.accepts("t", *msg, low.get()));
  EXPECT_FALSE(f.accepts("t", *msg, high.get()));
  EXPECT_FALSE(f.accepts("t", *msg, nullptr));  // no RP doc, filter present
}

TEST(Filter, AllComponentsMustPass) {
  Filter f;
  f.set_topic(TopicExpression::parse(Dialect::kConcrete, "job/done"));
  f.set_message_content("/Event[ok='true']");
  auto good = xml::parse_element("<Event><ok>true</ok></Event>");
  auto bad = xml::parse_element("<Event><ok>false</ok></Event>");
  EXPECT_TRUE(f.accepts("job/done", *good, nullptr));
  EXPECT_FALSE(f.accepts("job/done", *bad, nullptr));
  EXPECT_FALSE(f.accepts("job/started", *good, nullptr));
}

TEST(Filter, EmptyFilterAcceptsEverything) {
  Filter f;
  EXPECT_TRUE(f.accepts("anything", *xml::parse_element("<m/>"), nullptr));
}

TEST(Filter, XmlRoundTrip) {
  Filter f;
  f.set_topic(TopicExpression::parse(Dialect::kFull, "job/*"));
  f.set_message_content("/Event[code=1]");
  auto el = f.to_xml(xml::QName(soap::ns::kWsnBase, "Filter"));
  Filter back = Filter::from_xml(*el);
  EXPECT_TRUE(back.accepts("job/x", *xml::parse_element("<Event><code>1</code></Event>"),
                           nullptr));
  EXPECT_FALSE(back.accepts("job/x", *xml::parse_element("<Event><code>2</code></Event>"),
                            nullptr));
}

// --- end-to-end producer/consumer fixture ---------------------------------------------

struct WsnFixture {
  common::ManualClock clock{1000};
  net::VirtualNetwork net;
  xmldb::XmlDatabase db{std::make_unique<xmldb::MemoryBackend>(), {}};
  container::Container container{{.clock = &clock}};
  wsrf::ResourceHome sub_home{db, "subs", &container.lifetime()};
  std::unique_ptr<SubscriptionManagerService> manager;
  std::unique_ptr<container::Service> source_service;
  std::unique_ptr<net::VirtualCaller> caller;
  std::unique_ptr<net::VirtualCaller> sink;
  std::unique_ptr<NotificationProducer> producer;
  NotificationConsumer consumer;

  WsnFixture() {
    manager = std::make_unique<SubscriptionManagerService>(
        sub_home, "http://p/Subscriptions");
    source_service = std::make_unique<container::Service>("Source");
    caller = std::make_unique<net::VirtualCaller>(net, net::VirtualCaller::Options{});
    sink = std::make_unique<net::VirtualCaller>(
        net, net::VirtualCaller::Options{.keep_alive = false});
    TopicNamespace topics;
    topics.add("job/done");
    topics.add("job/started");
    producer = std::make_unique<NotificationProducer>(
        NotificationProducer::Config{sink.get(), "http://p/Source",
                                     manager.get(), &clock},
        std::move(topics));
    producer->register_into(*source_service);
    container.deploy("/Source", *source_service);
    container.deploy("/Subscriptions", *manager);
    net.bind("p", container);
    net.bind("c", consumer);
  }

  NotificationProducerProxy producer_proxy() {
    return NotificationProducerProxy(*caller,
                                     soap::EndpointReference("http://p/Source"));
  }

  Filter topic_filter(const char* topic) {
    Filter f;
    f.set_topic(TopicExpression::parse(Dialect::kConcrete, topic));
    return f;
  }

  std::unique_ptr<xml::Element> event(const char* code = "0") {
    auto e = std::make_unique<xml::Element>(app("Event"));
    e->append_element(app("code")).set_text(code);
    return e;
  }
};

TEST(Notification, SubscribeAndReceiveWrapped) {
  WsnFixture fx;
  auto proxy = fx.producer_proxy();
  proxy.subscribe(soap::EndpointReference("http://c/sink"),
                  fx.topic_filter("job/done"));
  auto ev = fx.event("7");
  EXPECT_EQ(fx.producer->notify("job/done", *ev), 1u);
  ASSERT_TRUE(fx.consumer.wait_for(1, 1000));
  auto received = fx.consumer.received();
  EXPECT_EQ(received[0].topic, "job/done");
  EXPECT_EQ(received[0].producer_address, "http://p/Source");
  ASSERT_TRUE(received[0].payload);
  EXPECT_EQ(received[0].payload->child(app("code"))->text(), "7");
}

TEST(Notification, TopicFilterSuppressesOtherTopics) {
  WsnFixture fx;
  fx.producer_proxy().subscribe(soap::EndpointReference("http://c/sink"),
                                fx.topic_filter("job/done"));
  auto ev = fx.event();
  EXPECT_EQ(fx.producer->notify("job/started", *ev), 0u);
  EXPECT_EQ(fx.consumer.count(), 0u);
}

TEST(Notification, SubscribeToUnsupportedTopicFaults) {
  WsnFixture fx;
  auto proxy = fx.producer_proxy();
  EXPECT_THROW(proxy.subscribe(soap::EndpointReference("http://c/sink"),
                               fx.topic_filter("unknown/topic")),
               soap::SoapFault);
}

TEST(Notification, ContentFilterApplies) {
  WsnFixture fx;
  Filter f;
  f.set_topic(TopicExpression::parse(Dialect::kConcrete, "job/done"));
  f.set_message_content("/Event[code > 5]");
  fx.producer_proxy().subscribe(soap::EndpointReference("http://c/sink"), f);
  auto low = fx.event("2");
  auto high = fx.event("9");
  EXPECT_EQ(fx.producer->notify("job/done", *low), 0u);
  EXPECT_EQ(fx.producer->notify("job/done", *high), 1u);
}

TEST(Notification, MultipleSubscribersAllReceive) {
  WsnFixture fx;
  NotificationConsumer consumer2;
  fx.net.bind("c2", consumer2);
  fx.producer_proxy().subscribe(soap::EndpointReference("http://c/sink"),
                                fx.topic_filter("job/done"));
  fx.producer_proxy().subscribe(soap::EndpointReference("http://c2/sink"),
                                fx.topic_filter("job/done"));
  auto ev = fx.event();
  EXPECT_EQ(fx.producer->notify("job/done", *ev), 2u);
  EXPECT_TRUE(fx.consumer.wait_for(1, 1000));
  EXPECT_TRUE(consumer2.wait_for(1, 1000));
}

TEST(Notification, UnsubscribeStopsDelivery) {
  WsnFixture fx;
  soap::EndpointReference sub_epr = fx.producer_proxy().subscribe(
      soap::EndpointReference("http://c/sink"), fx.topic_filter("job/done"));
  SubscriptionProxy sub(*fx.caller, sub_epr);
  sub.unsubscribe();
  auto ev = fx.event();
  EXPECT_EQ(fx.producer->notify("job/done", *ev), 0u);
}

TEST(Notification, PauseAndResume) {
  WsnFixture fx;
  soap::EndpointReference sub_epr = fx.producer_proxy().subscribe(
      soap::EndpointReference("http://c/sink"), fx.topic_filter("job/done"));
  SubscriptionProxy sub(*fx.caller, sub_epr);
  sub.pause();
  auto ev = fx.event();
  EXPECT_EQ(fx.producer->notify("job/done", *ev), 0u);
  sub.resume();
  EXPECT_EQ(fx.producer->notify("job/done", *ev), 1u);
}

TEST(Notification, SubscriptionLifetimeExpires) {
  WsnFixture fx;
  fx.producer_proxy().subscribe(soap::EndpointReference("http://c/sink"),
                                fx.topic_filter("job/done"),
                                /*initial_lifetime_ms=*/5000);
  auto ev = fx.event();
  EXPECT_EQ(fx.producer->notify("job/done", *ev), 1u);
  fx.clock.advance(5001);
  // A request (any request) sweeps the lifetime manager.
  (void)fx.container.process(soap::Envelope(), "/Subscriptions");
  EXPECT_EQ(fx.producer->notify("job/done", *ev), 0u);
}

TEST(Notification, RawDeliveryLosesTopicContext) {
  // The paper: raw delivery is "particularly problematic ... the
  // information passed with a notification is not well-defined". A raw
  // message arrives as a bare payload: no topic, no producer.
  WsnFixture fx;
  fx.producer_proxy().subscribe(soap::EndpointReference("http://c/sink"),
                                fx.topic_filter("job/done"),
                                /*initial_lifetime_ms=*/-1, /*use_raw=*/true);
  auto ev = fx.event("9");
  EXPECT_EQ(fx.producer->notify("job/done", *ev), 1u);
  ASSERT_TRUE(fx.consumer.wait_for(1, 1000));
  auto received = fx.consumer.received();
  EXPECT_TRUE(received[0].raw);
  EXPECT_EQ(received[0].topic, "");             // gone
  EXPECT_EQ(received[0].producer_address, "");  // gone
  ASSERT_TRUE(received[0].payload);
  EXPECT_EQ(received[0].payload->child(app("code"))->text(), "9");
}

TEST(Notification, ProducerPropertiesFilterAgainstRpDocument) {
  WsnFixture fx;
  Filter f;
  f.set_producer_properties("Load < 5");
  fx.producer_proxy().subscribe(soap::EndpointReference("http://c/sink"), f);
  auto rp_low = xml::parse_element("<RP><Load>1</Load></RP>");
  auto rp_high = xml::parse_element("<RP><Load>50</Load></RP>");
  auto ev = fx.event();
  EXPECT_EQ(fx.producer->notify("t", *ev, rp_low.get()), 1u);
  EXPECT_EQ(fx.producer->notify("t", *ev, rp_high.get()), 0u);
}

TEST(Notification, UnreachableConsumerDoesNotStarveOthers) {
  WsnFixture fx;
  fx.producer_proxy().subscribe(soap::EndpointReference("http://gone/sink"),
                                fx.topic_filter("job/done"));
  fx.producer_proxy().subscribe(soap::EndpointReference("http://c/sink"),
                                fx.topic_filter("job/done"));
  auto ev = fx.event();
  EXPECT_EQ(fx.producer->notify("job/done", *ev), 1u);  // best-effort
  EXPECT_TRUE(fx.consumer.wait_for(1, 1000));
}

// Regression: a Subscribe whose InitialTerminationTime is not a number must
// come back as a Sender fault — it used to reach std::stoll and escape as an
// uncaught std::invalid_argument.
TEST(Notification, GarbageInitialTerminationTimeFaults) {
  WsnFixture fx;
  xml::QName wsnt_q(soap::ns::kWsnBase, "Subscribe");
  for (const char* bad : {"soon-ish", "", "120q", "12 34"}) {
    soap::Envelope request;
    soap::MessageInfo info;
    info.target(soap::EndpointReference("http://p/Source"));
    info.action = actions::kSubscribe;
    info.message_id = "urn:test:garbage-itt";
    request.write_addressing(info);
    xml::Element& sub = request.add_payload(wsnt_q);
    sub.append(soap::EndpointReference("http://c/sink")
                   .to_xml({soap::ns::kWsnBase, "ConsumerReference"}));
    sub.append_element({soap::ns::kWsnBase, "InitialTerminationTime"})
        .set_text(bad);
    soap::Envelope response = fx.caller->call("http://p/Source", request);
    ASSERT_TRUE(response.is_fault()) << "no fault for '" << bad << "'";
    EXPECT_EQ(response.fault().code, "Sender") << "for '" << bad << "'";
  }
  EXPECT_TRUE(fx.manager->subscriptions().empty());
}

// --- broker / demand-based publishing ---------------------------------------------------

struct BrokerFixture {
  common::ManualClock clock{1000};
  net::VirtualNetwork net;
  net::WireMeter meter;
  std::unique_ptr<net::VirtualCaller> caller;

  // Publisher side (a full producer of its own).
  WsnFixture publisher;

  // Broker side.
  xmldb::XmlDatabase broker_db{std::make_unique<xmldb::MemoryBackend>(), {}};
  container::Container broker_container{{.clock = &clock}};
  wsrf::ResourceHome broker_subs{broker_db, "broker-subs",
                                 &broker_container.lifetime()};
  wsrf::ResourceHome registrations{broker_db, "registrations",
                                   &broker_container.lifetime()};
  std::unique_ptr<SubscriptionManagerService> broker_manager;
  std::unique_ptr<BrokerService> broker;

  NotificationConsumer consumer;

  BrokerFixture() {
    caller = std::make_unique<net::VirtualCaller>(
        publisher.net, net::VirtualCaller::Options{.meter = &meter});
    broker_manager = std::make_unique<SubscriptionManagerService>(
        broker_subs, "http://b/Subscriptions");
    TopicNamespace topics;
    topics.add("job/done");
    broker = std::make_unique<BrokerService>(
        BrokerService::Config{caller.get(), "http://b/Broker",
                              broker_manager.get(), &clock},
        registrations, std::move(topics));
    broker_container.deploy("/Broker", *broker);
    broker_container.deploy("/Subscriptions", *broker_manager);
    publisher.net.bind("b", broker_container);
    publisher.net.bind("bc", consumer);
  }

  BrokerProxy broker_proxy() {
    return BrokerProxy(*caller, soap::EndpointReference("http://b/Broker"));
  }
};

TEST(Broker, RelaysPublisherNotificationsToConsumers) {
  BrokerFixture fx;
  // Consumer subscribes at the broker.
  NotificationProducerProxy broker_sub(*fx.caller,
                                       soap::EndpointReference("http://b/Broker"));
  Filter f;
  f.set_topic(TopicExpression::parse(Dialect::kConcrete, "job/done"));
  broker_sub.subscribe(soap::EndpointReference("http://bc/sink"), f);

  // Publisher registers (non-demand) — broker subscribes back to it.
  fx.broker_proxy().register_publisher(
      soap::EndpointReference("http://p/Source"), {"job/done"}, false);

  // Publisher publishes; the broker receives and re-publishes.
  xml::Element ev(app("Event"));
  ev.append_element(app("code")).set_text("1");
  EXPECT_EQ(fx.publisher.producer->notify("job/done", ev), 1u);  // to broker
  ASSERT_TRUE(fx.consumer.wait_for(1, 2000));
  EXPECT_EQ(fx.consumer.received()[0].topic, "job/done");
}

TEST(Broker, DemandBasedRegistrationStartsPaused) {
  BrokerFixture fx;
  fx.broker_proxy().register_publisher(
      soap::EndpointReference("http://p/Source"), {"job/done"}, true);
  // No consumers at the broker: the publisher-side subscription is paused,
  // so a publish reaches nobody.
  xml::Element ev(app("Event"));
  EXPECT_EQ(fx.publisher.producer->notify("job/done", ev), 0u);
}

TEST(Broker, DemandResumesWhenConsumerAppears) {
  BrokerFixture fx;
  fx.broker_proxy().register_publisher(
      soap::EndpointReference("http://p/Source"), {"job/done"}, true);

  // First consumer arrives at the broker: demand now exists, the broker
  // resumes its publisher-side subscription.
  NotificationProducerProxy broker_sub(*fx.caller,
                                       soap::EndpointReference("http://b/Broker"));
  Filter f;
  f.set_topic(TopicExpression::parse(Dialect::kConcrete, "job/done"));
  broker_sub.subscribe(soap::EndpointReference("http://bc/sink"), f);

  xml::Element ev(app("Event"));
  ev.append_element(app("code")).set_text("42");
  EXPECT_EQ(fx.publisher.producer->notify("job/done", ev), 1u);
  ASSERT_TRUE(fx.consumer.wait_for(1, 2000));
}

TEST(Broker, DemandPausesAgainWhenLastConsumerLeaves) {
  BrokerFixture fx;
  fx.broker_proxy().register_publisher(
      soap::EndpointReference("http://p/Source"), {"job/done"}, true);

  NotificationProducerProxy broker_sub(*fx.caller,
                                       soap::EndpointReference("http://b/Broker"));
  Filter f;
  f.set_topic(TopicExpression::parse(Dialect::kConcrete, "job/done"));
  soap::EndpointReference sub_epr =
      broker_sub.subscribe(soap::EndpointReference("http://bc/sink"), f);

  SubscriptionProxy sub(*fx.caller, sub_epr);
  sub.unsubscribe();
  fx.broker->recheck_demand();

  xml::Element ev(app("Event"));
  EXPECT_EQ(fx.publisher.producer->notify("job/done", ev), 0u);  // paused again
}

TEST(Broker, DemandRegistrationAmplifiesMessageCount) {
  // The paper: "a demand based publisher registration interaction can
  // involve as many as six separate Web services" and an order of
  // magnitude more messages. Count the control messages the registration
  // triggers.
  BrokerFixture fx;
  fx.meter.reset();
  fx.broker_proxy().register_publisher(
      soap::EndpointReference("http://p/Source"), {"job/done"}, true);
  // RegisterPublisher + broker->publisher Subscribe + broker->manager
  // Pause, each a request/response pair: >= 6 messages for one logical
  // registration.
  EXPECT_GE(fx.meter.messages(), 6);
}

}  // namespace
}  // namespace gs::wsn
