// SLO burn-rate acceptance: seeded faults drive a container's error ratio
// past its availability objective's budget; the MonitorProducer publishes
// the edge-triggered burn alert over BOTH stacks; the alert, the <t:Slo>
// status rows, and the error-rate series window (showing the spike) are
// readable over the wire via WSRF GetResourceProperty AND WS-Transfer Get;
// recovery produces exactly one clearing transition — no alert floods.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "container/container.hpp"
#include "container/proxy.hpp"
#include "net/retry.hpp"
#include "soap/namespaces.hpp"
#include "net/virtual_network.hpp"
#include "telemetry/cost.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/monitor.hpp"
#include "telemetry/propagation.hpp"
#include "telemetry/service.hpp"
#include "telemetry/slo.hpp"
#include "telemetry/timeseries.hpp"
#include "telemetry/trace.hpp"
#include "wse/service.hpp"
#include "wsn/producer.hpp"
#include "wsrf/resource.hpp"
#include "xmldb/database.hpp"

namespace gs::telemetry {
namespace {

// --- unit: burn-rate math over a hand-fed store ----------------------------

TimeSeriesConfig store_config(MetricsRegistry& reg, const common::Clock& clock) {
  TimeSeriesConfig cfg;
  cfg.registry = &reg;
  cfg.clock = &clock;
  cfg.interval_ms = 1000;
  return cfg;
}

TEST(Slo, AvailabilityBurnNeedsBothWindowsOverThreshold) {
  MetricsRegistry reg;
  common::ManualClock clock{0};
  TimeSeriesStore store(store_config(reg, clock));
  SloTracker slo(&store, &clock);
  slo.add_objective({.name = "availability",
                     .good_metric = "svc.ok",
                     .bad_metrics = {"svc.err"},
                     .target = 0.9,  // 10% error budget
                     .short_window_ms = 3000,
                     .long_window_ms = 10'000,
                     .burn_threshold = 1.0});

  // Ten healthy intervals: 10 good/s, 0 bad/s.
  for (int t = 1; t <= 10; ++t) {
    store.ingest("svc.ok", t * 1000, 10.0);
    store.ingest("svc.err", t * 1000, 0.0);
  }
  clock.set(10'000);
  EXPECT_TRUE(slo.evaluate().empty());
  auto status = slo.status();
  ASSERT_EQ(status.size(), 1u);
  EXPECT_FALSE(status[0].firing);
  EXPECT_DOUBLE_EQ(status[0].error_ratio_short, 0.0);

  // Three bad intervals: 50% errors. Short window (last 3 points) is all
  // bad -> burn 5.0; long window still averages in the healthy history but
  // also exceeds budget -> both over threshold, one firing transition.
  for (int t = 11; t <= 13; ++t) {
    store.ingest("svc.ok", t * 1000, 10.0);
    store.ingest("svc.err", t * 1000, 10.0);
  }
  clock.set(13'000);
  auto alerts = slo.evaluate();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_TRUE(alerts[0].firing);
  EXPECT_EQ(alerts[0].objective, "availability");
  EXPECT_GT(alerts[0].burn_short, 1.0);
  EXPECT_NE(alerts[0].detail.find("burning"), std::string::npos);
  EXPECT_TRUE(slo.evaluate().empty());  // latched: no re-fire while bad
  EXPECT_TRUE(slo.status()[0].firing);

  // Healthy again: the short window clears first, which is enough to end
  // the episode (firing requires BOTH windows over threshold).
  for (int t = 14; t <= 17; ++t) {
    store.ingest("svc.ok", t * 1000, 10.0);
    store.ingest("svc.err", t * 1000, 0.0);
  }
  clock.set(17'000);
  auto cleared = slo.evaluate();
  ASSERT_EQ(cleared.size(), 1u);
  EXPECT_FALSE(cleared[0].firing);
  EXPECT_NE(cleared[0].detail.find("recovered"), std::string::npos);
  EXPECT_TRUE(slo.evaluate().empty());
}

TEST(Slo, LatencyObjectiveCountsSlowIntervalsAgainstP99Series) {
  MetricsRegistry reg;
  common::ManualClock clock{0};
  TimeSeriesStore store(store_config(reg, clock));
  SloTracker slo(&store, &clock);
  slo.add_objective({.name = "latency",
                     .kind = SloObjective::Kind::kLatency,
                     .latency_metric = "svc.us",
                     .threshold_us = 1000.0,
                     .target = 0.5,  // half the intervals may be slow
                     .short_window_ms = 4000,
                     .long_window_ms = 8000});

  for (int t = 1; t <= 8; ++t) {
    store.ingest("svc.us.p99", t * 1000, t <= 4 ? 100.0 : 5000.0);
  }
  clock.set(8000);
  // Short window [4000, 8000]: p99 points at 4000(fast),5000..8000(slow) ->
  // 4/5 slow, burn 1.6; long window: 4/8... the t=4000 fast point is in
  // both. Long [0,8000]: 4 slow of 8 -> ratio 0.5, burn 1.0, NOT over.
  EXPECT_TRUE(slo.evaluate().empty());
  // One more slow interval pushes the long window over budget too.
  store.ingest("svc.us.p99", 9000, 5000.0);
  clock.set(9000);
  auto alerts = slo.evaluate();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_TRUE(alerts[0].firing);
  EXPECT_EQ(alerts[0].objective, "latency");
}

// --- the acceptance scenario: dual-stack, over the wire --------------------

xml::QName t(const char* local) { return {kTelemetryNs, local}; }

class FlakyService : public container::Service {
 public:
  FlakyService() : container::Service("Flaky") {
    register_operation("urn:t/Ok", [](container::RequestContext& ctx) {
      soap::Envelope r = make_response(ctx, "urn:t/OkResponse");
      r.add_payload(xml::QName("urn:t", "Done"));
      return r;
    });
    register_operation("urn:t/Boom", [](container::RequestContext&)
                           -> soap::Envelope {
      throw soap::SoapFault("Receiver", "seeded fault");
    });
  }
};

soap::Envelope request_for(const char* op) {
  soap::Envelope env;
  soap::MessageInfo info;
  info.action = std::string("urn:t/") + op;
  info.message_id = "urn:uuid:slo-1";
  env.write_addressing(info);
  env.add_payload(xml::QName("urn:t", op));
  return env;
}

class RawProxy : public container::ProxyBase {
 public:
  using container::ProxyBase::ProxyBase;
  soap::Envelope call_action(const std::string& action,
                             std::unique_ptr<xml::Element> payload = nullptr) {
    return invoke(action, std::move(payload));
  }
};

const xml::Element* find_named(const std::vector<const xml::Element*>& els,
                               const std::string& local,
                               const std::string& name_attr = "") {
  for (const xml::Element* el : els) {
    if (el->name().local() != local) continue;
    if (!name_attr.empty() && el->attr("name") != name_attr) continue;
    return el;
  }
  return nullptr;
}

/// One app container whose registry feeds a TimeSeriesStore + SloTracker,
/// monitored by a MonitorProducer publishing over wsn AND wse to one
/// consumer per stack (the monitor_test fixture shape, plus retention).
struct SloFixture {
  common::ManualClock clock{1000};
  net::VirtualNetwork net;
  MetricsRegistry registry;
  TimeSeriesStore store{store_config(registry, clock)};
  SloTracker slo{&store, &clock};
  CostAggregator costs{&registry};

  // --- the measured app container ("app") ---
  container::Container app{{.clock = &clock, .metrics = &registry}};
  FlakyService flaky;
  TelemetryService telemetry{"http://app/Telemetry", &registry,
                             &TraceLog::global(), &EventLog::global(),
                             &store, &slo, &costs};

  // --- wsn producer side ("p") ---
  xmldb::XmlDatabase db{std::make_unique<xmldb::MemoryBackend>(), {}};
  container::Container wsn_container{{.clock = &clock}};
  wsrf::ResourceHome sub_home{db, "subs", &wsn_container.lifetime()};
  std::unique_ptr<wsn::SubscriptionManagerService> wsn_manager;
  std::unique_ptr<container::Service> source_service;
  std::unique_ptr<net::VirtualCaller> wsn_sink;
  std::unique_ptr<wsn::NotificationProducer> wsn_producer;

  // --- wse producer side ("s") ---
  container::Container wse_container{{.clock = &clock}};
  wse::SubscriptionStore sub_store;
  std::unique_ptr<wse::WseSubscriptionManagerService> wse_manager;
  std::unique_ptr<wse::EventSourceService> event_source;
  std::unique_ptr<net::VirtualCaller> wse_sink;
  std::unique_ptr<wse::NotificationManager> notifier;

  // --- one consumer per stack, with a fleet store on the wsn side ---
  MonitorConsumer wsn_monitor;
  MonitorConsumer wse_monitor;
  MetricsRegistry fleet_registry;  // backs the consumer-side store
  TimeSeriesStore fleet_store{store_config(fleet_registry, clock)};
  std::unique_ptr<net::VirtualCaller> caller;

  std::unique_ptr<MonitorProducer> producer;

  SloFixture() {
    app.deploy("/Flaky", flaky);
    app.deploy("/Telemetry", telemetry);
    app.set_cost_aggregator(&costs);
    net.bind("app", app);

    caller =
        std::make_unique<net::VirtualCaller>(net, net::VirtualCaller::Options{});

    wsn_manager = std::make_unique<wsn::SubscriptionManagerService>(
        sub_home, "http://p/Subscriptions");
    source_service = std::make_unique<container::Service>("Source");
    wsn_sink = std::make_unique<net::VirtualCaller>(
        net, net::VirtualCaller::Options{.keep_alive = false});
    wsn_producer = std::make_unique<wsn::NotificationProducer>(
        wsn::NotificationProducer::Config{.sink_caller = wsn_sink.get(),
                                          .producer_address = "http://p/Source",
                                          .manager = wsn_manager.get(),
                                          .clock = &clock},
        monitor_topics());
    wsn_producer->register_into(*source_service);
    wsn_container.deploy("/Source", *source_service);
    wsn_container.deploy("/Subscriptions", *wsn_manager);

    wse_manager = std::make_unique<wse::WseSubscriptionManagerService>(
        sub_store, "http://s/Subscriptions", clock);
    event_source = std::make_unique<wse::EventSourceService>(
        "Events", sub_store, *wse_manager, clock);
    wse_sink = std::make_unique<net::VirtualCaller>(
        net, net::VirtualCaller::Options{
                 .transport = net::TransportKind::kSoapTcp});
    notifier = std::make_unique<wse::NotificationManager>(sub_store, *wse_sink,
                                                          clock);
    wse_container.deploy("/Events", *event_source);
    wse_container.deploy("/Subscriptions", *wse_manager);

    net.bind("p", wsn_container);
    net.bind("s", wse_container);
    net.bind("cw", wsn_monitor);
    net.bind("ce", wse_monitor);

    slo.add_objective({.name = "availability",
                       .good_metric = "container.requests",
                       .bad_metrics = {"container.faults"},
                       .target = 0.9,
                       .short_window_ms = 3000,
                       .long_window_ms = 10'000,
                       .burn_threshold = 1.0});

    producer = std::make_unique<MonitorProducer>(MonitorProducer::Config{
        .registry = &registry,
        .producer_address = "http://p/Source",
        .wsn = wsn_producer.get(),
        .wse = notifier.get(),
        .clock = &clock,
        .interval_ms = 1000,
        .series = &store,
        .slo = &slo,
    });

    wsn_monitor.attach_series(&fleet_store);
    wsn_monitor.subscribe_wsn(*caller, "http://p/Source", "http://cw/sink");
    wse_monitor.subscribe_wse(*caller, "http://s/Events", "http://ce/sink");
  }

  void good_request() {
    net::HttpRequest http;
    http.path = "/Flaky";
    http.body = request_for("Ok").to_xml();
    ASSERT_EQ(app.handle(http).status, 200);
  }

  void bad_request() {
    net::HttpRequest http;
    http.path = "/Flaky";
    http.body = request_for("Boom").to_xml();
    ASSERT_NE(app.handle(http).status, 200);
  }
};

TEST(Slo, BurnAlertFiresOverBothStacksAndIsQueryableOverTheWire) {
  SloFixture fx;
  std::uint64_t seq_before = EventLog::global().last_seq();

  // Phase 1: healthy traffic. Five good requests per tick, six ticks.
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 5; ++j) fx.good_request();
    fx.clock.advance(1000);
    fx.producer->tick();
  }
  EXPECT_EQ(fx.producer->alerts_fired(), 0u);
  EXPECT_EQ(fx.wsn_monitor.alert_count(), 0u);
  EXPECT_EQ(fx.wse_monitor.alert_count(), 0u);

  // Phase 2: seeded faults swamp the error budget (95% errors per tick
  // against a 10% budget) until the burn alert fires on both stacks.
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 20; ++j) fx.bad_request();
    fx.good_request();
    fx.clock.advance(1000);
    fx.producer->tick();
  }
  EXPECT_EQ(fx.producer->alerts_fired(), 1u);

  for (MonitorConsumer* monitor : {&fx.wsn_monitor, &fx.wse_monitor}) {
    EXPECT_EQ(monitor->alert_count(), 1u);
    auto state = monitor->state_for("http://p/Source");
    ASSERT_TRUE(state.has_value());
    EXPECT_EQ(state->last_alert, "slo:availability");
    EXPECT_EQ(state->snapshots, 10u);
  }
  // Each stack saw its own framing.
  EXPECT_GT(fx.wsn_monitor.state_for("http://p/Source")->via_wsn, 0u);
  EXPECT_GT(fx.wse_monitor.state_for("http://p/Source")->via_wse, 0u);

  // The consumer-side fleet store retained the producer's series: the
  // remote fault rate shows the same spike, keyed producer|metric.
  auto fleet = fx.fleet_store.query("http://p/Source|container.faults");
  ASSERT_GE(fleet.points.size(), 2u);
  EXPECT_DOUBLE_EQ(fleet.points.front().value, 0.0);
  EXPECT_GT(fleet.points.back().value, 10.0);

  // --- read the firing objective over the wire, both ways ---
  RawProxy proxy(*fx.caller,
                 soap::EndpointReference("http://app/Telemetry"));
  const std::string rp_ns(soap::ns::kWsrfRp);
  const std::string wst_ns(soap::ns::kTransfer);

  // WSRF: GetResourceProperty("Slos").
  auto prop = std::make_unique<xml::Element>(
      xml::QName{soap::ns::kWsrfRp, "GetResourceProperty"});
  prop->set_text("Slos");
  soap::Envelope rp_resp =
      proxy.call_action(rp_ns + "/GetResourceProperty", std::move(prop));
  const xml::Element* slo_el = rp_resp.payload()->child(t("Slo"));
  ASSERT_NE(slo_el, nullptr);
  EXPECT_EQ(slo_el->attr("name"), "availability");
  EXPECT_EQ(slo_el->attr("firing"), "true");
  EXPECT_GT(std::stod(std::string(*slo_el->attr("burn_short"))), 1.0);

  // WS-Transfer: Get returns the whole document with the same row.
  soap::Envelope get_resp = proxy.call_action(wst_ns + "/Get");
  const xml::Element* doc = get_resp.payload();
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->name().local(), "Telemetry");
  const xml::Element* doc_slo =
      find_named(doc->child_elements(), "Slo", "availability");
  ASSERT_NE(doc_slo, nullptr);
  EXPECT_EQ(doc_slo->attr("firing"), "true");
  EXPECT_NE(find_named(doc->child_elements(), "Series", "container.faults"),
            nullptr);

  // --- the series window shows the error-rate spike, both ways ---
  auto series_prop = std::make_unique<xml::Element>(
      xml::QName{soap::ns::kWsrfRp, "GetResourceProperty"});
  series_prop->set_text("Series/container.faults");
  soap::Envelope series_resp = proxy.call_action(
      rp_ns + "/GetResourceProperty", std::move(series_prop));
  const xml::Element* series_el = series_resp.payload()->child(t("Series"));
  ASSERT_NE(series_el, nullptr);
  EXPECT_EQ(series_el->attr("resolution"), "raw");
  auto points = series_el->child_elements();
  ASSERT_GE(points.size(), 8u);  // healthy history + the spike
  EXPECT_DOUBLE_EQ(std::stod(std::string(*points.front()->attr("value"))),
                   0.0);
  EXPECT_GT(std::stod(std::string(*points.back()->attr("value"))), 10.0);

  // Clipped window (WS-Transfer flavor): only the spike remains.
  common::TimeMs start = fx.clock.now() - 3000;
  auto window_req = std::make_unique<xml::Element>(
      xml::QName{soap::ns::kTransfer, "Get"});
  window_req->set_text("Series/container.faults/" + std::to_string(start));
  soap::Envelope window_resp =
      proxy.call_action(wst_ns + "/Get", std::move(window_req));
  const xml::Element* window_el = window_resp.payload();
  ASSERT_NE(window_el, nullptr);
  ASSERT_EQ(window_el->name().local(), "Series");
  auto clipped = window_el->child_elements();
  ASSERT_FALSE(clipped.empty());
  EXPECT_LT(clipped.size(), points.size());
  for (const xml::Element* p : clipped) {
    EXPECT_GE(std::stoll(std::string(*p->attr("t_ms"))), start);
    EXPECT_GT(std::stod(std::string(*p->attr("value"))), 10.0);
  }

  // --- the alert's EventLog story is pullable through the seq cursor ---
  auto events_req = std::make_unique<xml::Element>(
      xml::QName{soap::ns::kWsrfRp, "GetResourceProperty"});
  events_req->set_text("Events/" + std::to_string(seq_before));
  soap::Envelope events_resp = proxy.call_action(
      rp_ns + "/GetResourceProperty", std::move(events_req));
  const xml::Element* events_el = events_resp.payload()->child(t("Events"));
  ASSERT_NE(events_el, nullptr);
  bool saw_alert_event = false;
  for (const xml::Element* ev : events_el->child_elements()) {
    if (ev->attr("component") == "telemetry.monitor" &&
        ev->text() == "alert fired") {
      saw_alert_event = true;
      EXPECT_GT(std::stoull(std::string(*ev->attr("seq"))), seq_before);
    }
  }
  EXPECT_TRUE(saw_alert_event);

  // The app's spend was attributed (untagged in-process traffic -> anon).
  auto anon = fx.costs.tenant("anon");
  ASSERT_TRUE(anon.has_value());
  EXPECT_GT(anon->total.requests, 100u);
  EXPECT_GT(anon->total.faults, 70u);

  // Phase 3: recovery. The short window clears; exactly one clearing
  // transition is published — edge-triggered in both directions.
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) fx.good_request();
    fx.clock.advance(1000);
    fx.producer->tick();
  }
  EXPECT_EQ(fx.producer->alerts_fired(), 2u);
  EXPECT_EQ(fx.wsn_monitor.alert_count(), 2u);
  EXPECT_EQ(fx.wse_monitor.alert_count(), 2u);
  EXPECT_FALSE(fx.slo.status()[0].firing);
}

}  // namespace
}  // namespace gs::telemetry
