// Tests for concurrent dispatch: the pinned service registry, per-resource
// write serialization in the application core, an 8-thread hammer over one
// container (run under SANITIZE=tsan), and binding equivalence — the same
// operation sequence through the WSRF and WS-Transfer front-ends must leave
// the stack-agnostic core in identical state.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "app/counter_core.hpp"
#include "app/job_runner.hpp"
#include "container/container.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/metrics.hpp"
#include "counter/wsrf_counter.hpp"
#include "counter/wst_counter.hpp"
#include "gridbox/clients.hpp"
#include "wsn/consumer.hpp"
#include "wsrf/resource.hpp"
#include "wst/service.hpp"
#include "xml/writer.hpp"

namespace gs {
namespace {

// Prefix-independent canonical form of an element tree: prefixes are
// assigned by whichever parser/writer the document last travelled through,
// so equivalence must compare Clark names, attributes, text and children.
std::string canon(const xml::Element& el) {
  std::string out = "<" + el.name().clark();
  for (const auto& attr : el.attributes()) {
    if (attr.name.local() == "xmlns" ||
        attr.name.ns() == "http://www.w3.org/2000/xmlns/") {
      continue;
    }
    out += " " + attr.name.clark() + "='" + attr.value + "'";
  }
  out += ">";
  std::vector<const xml::Element*> kids = el.child_elements();
  if (kids.empty()) {
    out += el.text();
  } else {
    for (const xml::Element* kid : kids) out += canon(*kid);
  }
  return out + "</>";
}

class EchoService : public container::Service {
 public:
  EchoService() : Service("Echo") {
    register_operation("urn:test/Echo", [](container::RequestContext& ctx) {
      soap::Envelope r = container::make_response(ctx, "urn:test/EchoResponse");
      r.add_payload(xml::QName("urn:test", "Out"));
      return r;
    });
  }
};

// ---------------------------------------------------------------------------
// Service registry: pins and undeploy drains
// ---------------------------------------------------------------------------

TEST(Registry, PinResolvesDeployedService) {
  container::ServiceRegistry registry;
  EchoService svc;
  registry.deploy("/Echo", svc);
  container::ServiceHandle handle = registry.pin("/Echo");
  ASSERT_TRUE(handle);
  EXPECT_EQ(handle.get(), &svc);
  EXPECT_FALSE(registry.pin("/Nope"));
}

TEST(Registry, UndeployAbsentPathReturnsFalse) {
  container::ServiceRegistry registry;
  EXPECT_FALSE(registry.undeploy("/Nope"));
}

TEST(Registry, UndeployBlocksUntilPinReleased) {
  container::ServiceRegistry registry;
  EchoService svc;
  registry.deploy("/Echo", svc);

  container::ServiceHandle handle = registry.pin("/Echo");
  std::atomic<bool> undeployed{false};
  std::thread undeployer([&] {
    registry.undeploy("/Echo");
    undeployed.store(true);
  });

  // The path disappears immediately (no new pins) but the drain must wait
  // for the live handle.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(registry.pin("/Echo"));
  EXPECT_FALSE(undeployed.load());
  EXPECT_EQ(handle.get(), &svc);  // still safe to use while pinned

  handle.release();
  undeployer.join();
  EXPECT_TRUE(undeployed.load());
}

TEST(Registry, RedeployKeepsOldPinsAlive) {
  container::ServiceRegistry registry;
  EchoService old_svc;
  EchoService new_svc;
  registry.deploy("/Echo", old_svc);
  container::ServiceHandle old_pin = registry.pin("/Echo");

  registry.deploy("/Echo", new_svc);
  EXPECT_EQ(old_pin.get(), &old_svc);  // replacement does not invalidate
  container::ServiceHandle new_pin = registry.pin("/Echo");
  EXPECT_EQ(new_pin.get(), &new_svc);
}

// ---------------------------------------------------------------------------
// Application core: per-resource write serialization
// ---------------------------------------------------------------------------

TEST(Concurrency, ConcurrentApplyPutNeverLosesDocument) {
  xmldb::XmlDatabase db(std::make_unique<xmldb::MemoryBackend>(),
                        {.write_through_cache = false});
  app::CounterCore core(db);
  db.store(core.collection(), "shared", *app::CounterCore::make_document(0));

  std::atomic<int> fires{0};
  core.on_value_changed(
      [&](const std::string&, const std::string&) { ++fires; });

  constexpr int kThreads = 8;
  constexpr int kPutsPerThread = 100;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPutsPerThread; ++i) {
        auto doc = app::CounterCore::make_document(t * kPutsPerThread + i);
        core.apply_put("shared", *doc);
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(fires.load(), kThreads * kPutsPerThread);
  auto final_doc = db.load(core.collection(), "shared");
  ASSERT_TRUE(final_doc);
  int value = app::CounterCore::value_of(*final_doc);
  EXPECT_GE(value, 0);
  EXPECT_LT(value, kThreads * kPutsPerThread);
}

// ---------------------------------------------------------------------------
// 8-thread hammer: mixed counter traffic + deploy/undeploy churn
// ---------------------------------------------------------------------------

TEST(Concurrency, EightThreadHammerWithDeployChurn) {
  net::VirtualNetwork net{net::NetworkProfile::colocated()};
  net::VirtualCaller sink(net, {.transport = net::TransportKind::kSoapTcp});
  counter::WstCounterDeployment wst(counter::WstCounterDeployment::Params{
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .container = {},
      .notification_sink = &sink,
      .address_base = "http://hammer.example",
      .subscription_file = {},
  });
  net.bind("hammer.example", wst.container());

  // A counter every worker hammers concurrently.
  net::VirtualCaller setup_caller(net, {});
  counter::WstCounterClient setup(setup_caller, wst.counter_address(),
                                  wst.source_address());
  soap::EndpointReference shared_epr = setup.create();

  constexpr int kWorkers = 6;
  constexpr int kChurners = 2;
  constexpr int kIters = 30;
  std::atomic<int> ops{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;

  for (int t = 0; t < kWorkers; ++t) {
    threads.emplace_back([&, t] {
      try {
        net::VirtualCaller caller(net, {});
        counter::WstCounterClient mine(caller, wst.counter_address(),
                                       wst.source_address());
        counter::WstCounterClient shared(caller, wst.counter_address(),
                                         wst.source_address());
        shared.attach(shared_epr);
        for (int i = 0; i < kIters; ++i) {
          mine.create();
          mine.set(t * kIters + i);
          if (mine.get() != t * kIters + i) failed.store(true);
          mine.remove();
          shared.set(i);
          shared.get();
          ops += 6;
        }
      } catch (...) {
        failed.store(true);
      }
    });
  }
  for (int t = 0; t < kChurners; ++t) {
    threads.emplace_back([&, t] {
      try {
        EchoService churn_svc;
        std::string path = "/Churn-" + std::to_string(t);
        for (int i = 0; i < kIters * 4; ++i) {
          wst.container().deploy(path, churn_svc);
          container::ServiceHandle pin = wst.container().service_at(path);
          if (!pin) failed.store(true);
          pin.release();
          wst.container().undeploy(path);
          ops += 1;
        }
      } catch (...) {
        failed.store(true);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_FALSE(failed.load());
  EXPECT_EQ(ops.load(), kWorkers * kIters * 6 + kChurners * kIters * 4);
  // The shared counter survived the storm with a value some worker wrote.
  int final_value = setup.get();
  EXPECT_GE(final_value, 0);
  EXPECT_LT(final_value, kIters);
}

// ---------------------------------------------------------------------------
// Binding equivalence: identical core state through either stack
// ---------------------------------------------------------------------------

TEST(BindingEquivalence, CounterStateIdenticalAcrossStacks) {
  net::VirtualNetwork net{net::NetworkProfile::colocated()};
  net::VirtualCaller caller(net, {});
  net::VirtualCaller http_sink(net, {.keep_alive = false});
  net::VirtualCaller tcp_sink(net, {.transport = net::TransportKind::kSoapTcp});
  counter::WsrfCounterDeployment wsrf(counter::WsrfCounterDeployment::Params{
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .container = {},
      .notification_sink = &http_sink,
      .address_base = "http://wsrf.example",
  });
  counter::WstCounterDeployment wst(counter::WstCounterDeployment::Params{
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .container = {},
      .notification_sink = &tcp_sink,
      .address_base = "http://wst.example",
      .subscription_file = {},
  });
  net.bind("wsrf.example", wsrf.container());
  net.bind("wst.example", wst.container());

  counter::WsrfCounterClient wsrf_client(caller, wsrf.counter_address());
  counter::WstCounterClient wst_client(caller, wst.counter_address(),
                                       wst.source_address());
  soap::EndpointReference wsrf_epr = wsrf_client.create();
  soap::EndpointReference wst_epr = wst_client.create();
  for (int v : {5, 17, 42}) {
    wsrf_client.set(v);
    wst_client.set(v);
  }
  EXPECT_EQ(wsrf_client.get(), wst_client.get());

  auto wsrf_id = wsrf_epr.reference_property(wsrf::resource_id_qname());
  auto wst_id = wst_epr.reference_property(wst::transfer_id_qname());
  ASSERT_TRUE(wsrf_id.has_value());
  ASSERT_TRUE(wst_id.has_value());
  auto wsrf_doc = wsrf.core().db().load(wsrf.core().collection(), *wsrf_id);
  auto wst_doc = wst.core().db().load(wst.core().collection(), *wst_id);
  ASSERT_TRUE(wsrf_doc);
  ASSERT_TRUE(wst_doc);
  EXPECT_EQ(canon(*wsrf_doc), canon(*wst_doc));
  EXPECT_EQ(app::CounterCore::value_of(*wsrf_doc), 42);
}

TEST(BindingEquivalence, GridAccountsAndSitesIdenticalAcrossStacks) {
  const std::string admin_dn = "CN=admin,O=VO";
  const std::string alice_dn = "CN=alice,O=VO";
  app::SiteInfo site{.host = "node1",
                     .exec_address = "http://node1.example/Exec",
                     .data_address = "http://node1.example/Data",
                     .applications = {"blast", "render"}};

  common::ManualClock clock{1'000'000};
  container::ContainerConfig cc;
  cc.clock = &clock;

  net::VirtualNetwork net;
  net::VirtualCaller caller(net, {});
  net::VirtualCaller outcalls(net, {});
  net::VirtualCaller sink(net, {.keep_alive = false});
  net::VirtualCaller tcp_sink(net, {.transport = net::TransportKind::kSoapTcp});

  gridbox::WsrfGridDeployment wsrf(gridbox::WsrfGridDeployment::Params{
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .central_container = cc,
      .outcall_caller = &outcalls,
      .outcall_security = {},
      .notification_sink = &sink,
      .central_base = "http://wsrf-vo.example",
      .reservation_ttl_ms = 4LL * 3600 * 1000,
      .admin_dn = admin_dn,
  });
  gridbox::WstGridDeployment wst(gridbox::WstGridDeployment::Params{
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .central_container = cc,
      .outcall_caller = &outcalls,
      .outcall_security = {},
      .notification_sink = &tcp_sink,
      .central_base = "http://wst-vo.example",
      .reservation_ttl_ms = 4LL * 3600 * 1000,
      .admin_dn = admin_dn,
  });
  net.bind("wsrf-vo.example", wsrf.central_container());
  net.bind("wst-vo.example", wst.central_container());

  gridbox::WsrfAdminClient wsrf_admin(caller, wsrf, {admin_dn, {}});
  gridbox::WstAdminClient wst_admin(caller, wst, {admin_dn, {}});
  wsrf_admin.add_account(alice_dn, {gridbox::kPrivilegeSubmit});
  wst_admin.add_account(alice_dn, {gridbox::kPrivilegeSubmit});
  wsrf_admin.register_site(site);
  wst_admin.register_site(site);

  // The stack-agnostic core persisted byte-identical state either way.
  auto wsrf_account = wsrf.central_db().load("accounts", alice_dn);
  auto wst_account = wst.central_db().load("accounts", alice_dn);
  ASSERT_TRUE(wsrf_account);
  ASSERT_TRUE(wst_account);
  EXPECT_EQ(canon(*wsrf_account), canon(*wst_account));

  auto wsrf_site = wsrf.central_db().load("sites", "node1");
  auto wst_site = wst.central_db().load("sites", "node1");
  ASSERT_TRUE(wsrf_site);
  ASSERT_TRUE(wst_site);
  EXPECT_EQ(canon(*wsrf_site), canon(*wst_site));
  EXPECT_EQ(app::SiteInfo::from_xml(*wsrf_site).applications,
            app::SiteInfo::from_xml(*wst_site).applications);
}

// ---------------------------------------------------------------------------
// JobRunner edge cases: the exec-substrate contracts the batch scheduler
// leans on — kill fires the exit callback, reap refuses running jobs,
// callbacks run outside the runner lock, and misconfigured submissions are
// visible instead of silently "succeeding".
// ---------------------------------------------------------------------------

TEST(JobRunnerEdge, KillFiresExitCallbackThenReapRetires) {
  common::ManualClock clock(1000);
  app::JobRunner runner(clock);

  std::vector<std::pair<std::string, app::JobRunner::Status>> exits;
  std::string pid = runner.spawn(
      "sim:duration=60000,exit=0", "",
      [&](const std::string& p, const app::JobRunner::Status& s) {
        exits.emplace_back(p, s);
      });

  ASSERT_TRUE(runner.kill(pid));
  ASSERT_EQ(exits.size(), 1u);
  EXPECT_EQ(exits[0].first, pid);
  EXPECT_EQ(exits[0].second.state, app::JobRunner::State::kKilled);
  EXPECT_EQ(exits[0].second.exit_code, -9);
  EXPECT_EQ(exits[0].second.ended, clock.now());

  // Killing an already-dead job neither fires again nor succeeds.
  EXPECT_FALSE(runner.kill(pid));
  EXPECT_EQ(exits.size(), 1u);
  EXPECT_TRUE(runner.reap(pid));
  EXPECT_FALSE(runner.reap(pid));
}

TEST(JobRunnerEdge, ReapRefusesRunningJobs) {
  common::ManualClock clock(1000);
  app::JobRunner runner(clock);
  std::string pid = runner.spawn("sim:duration=60000,exit=0", "");
  // Still running: reap must refuse — the slot stays until the job ends.
  EXPECT_FALSE(runner.reap(pid));
  EXPECT_EQ(runner.running_count(), 1u);
  ASSERT_TRUE(runner.kill(pid));
  EXPECT_TRUE(runner.reap(pid));
  EXPECT_EQ(runner.running_count(), 0u);
}

TEST(JobRunnerEdge, ExitCallbacksMayReenterTheRunner) {
  common::ManualClock clock(1000);
  app::JobRunner runner(clock);

  // A callback that calls straight back into the runner (reap itself and
  // spawn a successor) would deadlock if callbacks fired under the lock —
  // this is exactly what the scheduler's on_runner_exit path does.
  std::string chained;
  std::string pid = runner.spawn(
      "sim:duration=1000,exit=0", "",
      [&](const std::string& p, const app::JobRunner::Status&) {
        EXPECT_TRUE(runner.reap(p));
        chained = runner.spawn("sim:duration=1000,exit=0", "");
      });

  clock.advance(1000);
  EXPECT_EQ(runner.poll(), 1u);
  ASSERT_FALSE(chained.empty());
  EXPECT_EQ(runner.running_count(), 1u);
  EXPECT_FALSE(runner.status(pid).has_value());  // reaped from the callback

  // The kill path fires callbacks outside the lock too.
  bool reentered = false;
  std::string pid2 = runner.spawn(
      "sim:duration=60000,exit=0", "",
      [&](const std::string& p, const app::JobRunner::Status&) {
        reentered = runner.reap(p);
      });
  ASSERT_TRUE(runner.kill(pid2));
  EXPECT_TRUE(reentered);
}

TEST(JobRunnerEdge, UnrecognizedCommandWarnsAndCounts) {
  common::ManualClock clock(1000);
  app::JobRunner runner(clock);
  auto& counter = telemetry::MetricsRegistry::global().counter(
      "jobrunner.unrecognized_command");
  std::uint64_t count_before = counter.value();
  std::uint64_t warns_before =
      telemetry::EventLog::global().count(telemetry::Level::kWarn);

  // Neither "sim:" nor "exec:": runs as a 0 ms simulation, but loudly.
  std::string pid = runner.spawn("/usr/bin/blast -query q.fa", "");
  EXPECT_EQ(counter.value(), count_before + 1);
  EXPECT_GT(telemetry::EventLog::global().count(telemetry::Level::kWarn),
            warns_before);
  runner.poll();
  auto status = runner.status(pid);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, app::JobRunner::State::kExited);

  // Well-formed commands stay silent.
  runner.spawn("sim:duration=0,exit=0", "");
  EXPECT_EQ(counter.value(), count_before + 1);
}

TEST(JobRunnerEdge, ConcurrentKillPollAndSpawnStayConsistent) {
  common::ManualClock clock(1000);
  app::JobRunner runner(clock);

  constexpr int kJobs = 64;
  std::atomic<int> exits{0};
  std::vector<std::string> pids;
  for (int i = 0; i < kJobs; ++i) {
    pids.push_back(runner.spawn(
        "sim:duration=500,exit=0", "",
        [&](const std::string&, const app::JobRunner::Status&) { ++exits; }));
  }

  // Half the jobs get killed while pollers race to retire the other half
  // past their deadline; every job must exit exactly once.
  clock.advance(500);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] { runner.poll(); });
  }
  for (int i = 0; i < kJobs; i += 2) {
    threads.emplace_back([&, i] { runner.kill(pids[i]); });
  }
  for (std::thread& th : threads) th.join();
  runner.poll();

  EXPECT_EQ(exits.load(), kJobs);
  EXPECT_EQ(runner.running_count(), 0u);
  for (const std::string& pid : pids) {
    auto status = runner.status(pid);
    ASSERT_TRUE(status.has_value());
    EXPECT_NE(status->state, app::JobRunner::State::kRunning);
    EXPECT_TRUE(runner.reap(pid));
  }
}

}  // namespace
}  // namespace gs
