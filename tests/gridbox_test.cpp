// Tests for Grid-in-a-Box on both stacks: the full Figure-5 workflow,
// authorization, resource modeling differences, lifetime management
// (automatic vs manual unreserve, including the leak), and outcall counts
// (the quantity Figure 6 turns on).
#include <gtest/gtest.h>

#include <filesystem>

#include "common/encoding.hpp"
#include "gridbox/clients.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/metrics.hpp"
#include "wsn/consumer.hpp"
#include "wst/service.hpp"

namespace gs::gridbox {
namespace {

const std::string kAdminDn = "CN=admin,O=VO";
const std::string kAliceDn = "CN=alice,O=VO";
const std::string kMalloryDn = "CN=mallory,O=Evil";

std::filesystem::path temp_dir(const std::string& tag) {
  auto p = std::filesystem::temp_directory_path() / ("gs-gridbox-" + tag);
  std::filesystem::remove_all(p);
  return p;
}

// ---------------------------------------------------------------------------
// WSRF fixture
// ---------------------------------------------------------------------------

struct WsrfFixture {
  common::ManualClock clock{1'000'000};
  net::VirtualNetwork net;
  net::WireMeter meter;
  std::unique_ptr<net::VirtualCaller> caller;     // client traffic
  std::unique_ptr<net::VirtualCaller> outcalls;   // server-to-server
  std::unique_ptr<net::VirtualCaller> sink;       // notifications
  std::unique_ptr<WsrfGridDeployment> grid;
  wsn::NotificationConsumer consumer;

  WsrfFixture() {
    caller = std::make_unique<net::VirtualCaller>(
        net, net::VirtualCaller::Options{.meter = &meter});
    outcalls = std::make_unique<net::VirtualCaller>(
        net, net::VirtualCaller::Options{.meter = &meter});
    sink = std::make_unique<net::VirtualCaller>(
        net, net::VirtualCaller::Options{.keep_alive = false});
    container::ContainerConfig cc;
    cc.clock = &clock;
    grid = std::make_unique<WsrfGridDeployment>(WsrfGridDeployment::Params{
        .backend = std::make_unique<xmldb::MemoryBackend>(),
        .central_container = cc,
        .outcall_caller = outcalls.get(),
        .outcall_security = {},
        .notification_sink = sink.get(),
        .central_base = "http://vo.example",
        .reservation_ttl_ms = 4LL * 3600 * 1000,
        .admin_dn = kAdminDn,
    });
    grid->add_host({.host = "node1",
                    .base = "http://node1.example",
                    .backend = std::make_unique<xmldb::MemoryBackend>(),
                    .container = cc,
                    .file_root = temp_dir("wsrf-node1")});
    net.bind("vo.example", grid->central_container());
    net.bind("node1.example", grid->host_container("node1"));
    net.bind("user.example", consumer);

    WsrfAdminClient admin(*caller, *grid, {kAdminDn, {}});
    admin.add_account(kAliceDn, {kPrivilegeSubmit});
    admin.register_site({"node1", grid->exec_address("node1"),
                         grid->data_address("node1"), {"blast", "render"}});
  }

  WsrfUserClient alice() { return WsrfUserClient(*caller, *grid, {kAliceDn, {}}); }
  WsrfUserClient mallory() {
    return WsrfUserClient(*caller, *grid, {kMalloryDn, {}});
  }
};

// ---------------------------------------------------------------------------
// WST fixture
// ---------------------------------------------------------------------------

struct WstFixture {
  common::ManualClock clock{1'000'000};
  net::VirtualNetwork net;
  net::WireMeter meter;
  std::unique_ptr<net::VirtualCaller> caller;
  std::unique_ptr<net::VirtualCaller> outcalls;
  std::unique_ptr<net::VirtualCaller> tcp_sink;
  std::unique_ptr<WstGridDeployment> grid;
  wsn::NotificationConsumer consumer;

  WstFixture() {
    caller = std::make_unique<net::VirtualCaller>(
        net, net::VirtualCaller::Options{.meter = &meter});
    outcalls = std::make_unique<net::VirtualCaller>(
        net, net::VirtualCaller::Options{.meter = &meter});
    tcp_sink = std::make_unique<net::VirtualCaller>(
        net, net::VirtualCaller::Options{.transport = net::TransportKind::kSoapTcp});
    container::ContainerConfig cc;
    cc.clock = &clock;
    grid = std::make_unique<WstGridDeployment>(WstGridDeployment::Params{
        .backend = std::make_unique<xmldb::MemoryBackend>(),
        .central_container = cc,
        .outcall_caller = outcalls.get(),
        .outcall_security = {},
        .notification_sink = tcp_sink.get(),
        .central_base = "http://vo.example",
        .reservation_ttl_ms = 4LL * 3600 * 1000,
        .admin_dn = kAdminDn,
    });
    grid->add_host({.host = "node1",
                    .base = "http://node1.example",
                    .backend = std::make_unique<xmldb::MemoryBackend>(),
                    .container = cc,
                    .file_root = temp_dir("wst-node1"),
                    .subscription_file = {}});
    net.bind("vo.example", grid->central_container());
    net.bind("node1.example", grid->host_container("node1"));
    net.bind("user.example", consumer);

    WstAdminClient admin(*caller, *grid, {kAdminDn, {}});
    admin.add_account(kAliceDn, {kPrivilegeSubmit});
    admin.register_site({"node1", grid->exec_address("node1"),
                         grid->data_address("node1"), {"blast", "render"}});
  }

  WstUserClient alice() { return WstUserClient(*caller, *grid, {kAliceDn, {}}); }
  WstUserClient mallory() {
    return WstUserClient(*caller, *grid, {kMalloryDn, {}});
  }
};

// ---------------------------------------------------------------------------
// WSRF variant
// ---------------------------------------------------------------------------

TEST(WsrfGrid, FullWorkflowFigure5) {
  WsrfFixture fx;
  auto alice = fx.alice();

  // 1. What resources are available for my application?
  auto sites = alice.get_available_resources("blast");
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].host, "node1");

  // 4. Reserve.
  auto reservation = alice.make_reservation("node1");

  // 5-7. Create a data resource and stage in.
  auto directory = alice.create_directory(sites[0].data_address);
  alice.upload(directory, "input.dat", "sequence data");
  EXPECT_EQ(alice.list_files(directory),
            std::vector<std::string>{"input.dat"});

  // 9-10a. Subscribe for completion, start the job.
  auto sub = alice.subscribe_completion(
      sites[0].exec_address, soap::EndpointReference("http://user.example/s"));
  auto job = alice.start_job(sites[0].exec_address, "sim:duration=100,exit=0",
                             reservation, directory);
  EXPECT_EQ(alice.job_status(job), "running");
  EXPECT_FALSE(alice.job_exit_code(job).has_value());

  // The job finishes; the notification carries the job EPR.
  fx.clock.advance(150);
  fx.grid->job_runner("node1").poll();
  EXPECT_EQ(alice.job_status(job), "exited");
  EXPECT_EQ(alice.job_exit_code(job), 0);
  ASSERT_TRUE(fx.consumer.wait_for(1, 2000));
  auto received = fx.consumer.received();
  EXPECT_EQ(received[0].topic, kJobCompletedTopic);
  EXPECT_NE(received[0].payload->child_local("JobEPR"), nullptr);

  // 11. Cleanup.
  alice.delete_file(directory, "input.dat");
  alice.destroy(job);
  alice.destroy(directory);
}

TEST(WsrfGrid, ReservationRemovesHostFromAvailability) {
  WsrfFixture fx;
  auto alice = fx.alice();
  alice.make_reservation("node1");
  EXPECT_TRUE(alice.get_available_resources("blast").empty());
}

TEST(WsrfGrid, DoubleReservationRejected) {
  WsrfFixture fx;
  auto alice = fx.alice();
  alice.make_reservation("node1");
  EXPECT_THROW(alice.make_reservation("node1"), soap::SoapFault);
}

TEST(WsrfGrid, AutomaticUnreserveAfterJobCompletes) {
  // "Un-reserving a resource also happens automatically in the WSRF
  // version (so no time is reported)." Claimed reservations are destroyed
  // by the ExecService when the job exits.
  WsrfFixture fx;
  auto alice = fx.alice();
  auto reservation = alice.make_reservation("node1");
  auto directory = alice.create_directory(fx.grid->data_address("node1"));
  auto job = alice.start_job(fx.grid->exec_address("node1"),
                             "sim:duration=50,exit=0", reservation, directory);
  EXPECT_TRUE(alice.get_available_resources("blast").empty());
  fx.clock.advance(100);
  fx.grid->job_runner("node1").poll();
  EXPECT_EQ(alice.get_available_resources("blast").size(), 1u);
  (void)job;
}

TEST(WsrfGrid, UnclaimedReservationExpiresByScheduledTermination) {
  // Reservations get "current time plus an administrator specified delta";
  // if never claimed, the lifetime manager reclaims the host.
  WsrfFixture fx;
  auto alice = fx.alice();
  alice.make_reservation("node1");
  fx.clock.advance(4LL * 3600 * 1000 + 1);
  EXPECT_EQ(alice.get_available_resources("blast").size(), 1u);
}

TEST(WsrfGrid, ClaimedReservationDoesNotExpire) {
  WsrfFixture fx;
  auto alice = fx.alice();
  auto reservation = alice.make_reservation("node1");
  auto directory = alice.create_directory(fx.grid->data_address("node1"));
  // Claim happens inside start_job (termination time -> infinity). A job
  // longer than the reservation TTL keeps the host.
  (void)alice.start_job(fx.grid->exec_address("node1"),
                        "sim:duration=100000000,exit=0", reservation, directory);
  fx.clock.advance(5LL * 3600 * 1000);
  EXPECT_TRUE(alice.get_available_resources("blast").empty());
}

TEST(WsrfGrid, UnknownUserRejected) {
  WsrfFixture fx;
  auto mallory = fx.mallory();
  EXPECT_THROW(mallory.get_available_resources("blast"), soap::SoapFault);
  EXPECT_THROW(mallory.make_reservation("node1"), soap::SoapFault);
}

TEST(WsrfGrid, JobNeedsCallersOwnReservation) {
  WsrfFixture fx;
  auto alice = fx.alice();
  auto reservation = alice.make_reservation("node1");
  auto directory = alice.create_directory(fx.grid->data_address("node1"));
  // Mallory (even with an account) cannot use alice's reservation.
  WsrfAdminClient admin(*fx.caller, *fx.grid, {kAdminDn, {}});
  admin.add_account(kMalloryDn, {kPrivilegeSubmit});
  auto mallory = fx.mallory();
  EXPECT_THROW(mallory.start_job(fx.grid->exec_address("node1"), "sim:exit=0",
                                 reservation, directory),
               soap::SoapFault);
}

TEST(WsrfGrid, SubmitPrivilegeRequired) {
  WsrfFixture fx;
  WsrfAdminClient admin(*fx.caller, *fx.grid, {kAdminDn, {}});
  admin.add_account("CN=bob,O=VO", {});  // account, but no submit privilege
  WsrfUserClient bob(*fx.caller, *fx.grid, {"CN=bob,O=VO", {}});
  auto reservation = bob.make_reservation("node1");
  auto directory = bob.create_directory(fx.grid->data_address("node1"));
  EXPECT_THROW(bob.start_job(fx.grid->exec_address("node1"), "sim:exit=0",
                             reservation, directory),
               soap::SoapFault);
}

TEST(WsrfGrid, DirectoryOwnershipEnforced) {
  WsrfFixture fx;
  auto alice = fx.alice();
  auto directory = alice.create_directory(fx.grid->data_address("node1"));
  alice.upload(directory, "secret.txt", "classified");
  WsrfAdminClient admin(*fx.caller, *fx.grid, {kAdminDn, {}});
  admin.add_account(kMalloryDn, {kPrivilegeSubmit});
  auto mallory = fx.mallory();
  EXPECT_THROW(mallory.download(directory, "secret.txt"), soap::SoapFault);
  EXPECT_THROW(mallory.upload(directory, "virus.txt", "x"), soap::SoapFault);
}

TEST(WsrfGrid, FilesPropertyIsComputedFromDirectory) {
  WsrfFixture fx;
  auto alice = fx.alice();
  auto directory = alice.create_directory(fx.grid->data_address("node1"));
  EXPECT_TRUE(alice.list_files(directory).empty());
  alice.upload(directory, "b.txt", "2");
  alice.upload(directory, "a.txt", "1");
  std::vector<std::string> expected = {"a.txt", "b.txt"};
  EXPECT_EQ(alice.list_files(directory), expected);
  alice.delete_file(directory, "a.txt");
  EXPECT_EQ(alice.list_files(directory), std::vector<std::string>{"b.txt"});
}

TEST(WsrfGrid, DestroyDirectoryRemovesFiles) {
  WsrfFixture fx;
  auto alice = fx.alice();
  auto directory = alice.create_directory(fx.grid->data_address("node1"));
  alice.upload(directory, "data.txt", "x");
  alice.destroy(directory);
  EXPECT_THROW(alice.list_files(directory), soap::SoapFault);
}

TEST(WsrfGrid, DestroyKillsRunningJob) {
  WsrfFixture fx;
  auto alice = fx.alice();
  auto reservation = alice.make_reservation("node1");
  auto directory = alice.create_directory(fx.grid->data_address("node1"));
  auto job = alice.start_job(fx.grid->exec_address("node1"),
                             "sim:duration=1000000,exit=0", reservation,
                             directory);
  EXPECT_EQ(fx.grid->job_runner("node1").running_count(), 1u);
  alice.destroy(job);
  EXPECT_EQ(fx.grid->job_runner("node1").running_count(), 0u);
}

TEST(WsrfGrid, DownloadReturnsUploadedBytes) {
  WsrfFixture fx;
  auto alice = fx.alice();
  auto directory = alice.create_directory(fx.grid->data_address("node1"));
  std::string payload = "binary\0data\xff with arbitrary bytes";
  alice.upload(directory, "out.bin", payload);
  EXPECT_EQ(alice.download(directory, "out.bin"), payload);
}

// ---------------------------------------------------------------------------
// WST variant
// ---------------------------------------------------------------------------

TEST(WstGrid, FullWorkflow) {
  WstFixture fx;
  auto alice = fx.alice();

  auto sites = alice.get_available_resources("blast");
  ASSERT_EQ(sites.size(), 1u);

  alice.make_reservation("node1");
  alice.upload(sites[0].data_address, "input.dat", "sequence data");
  EXPECT_EQ(alice.list_files(sites[0].data_address),
            std::vector<std::string>{"input.dat"});

  alice.subscribe_completion(fx.grid->event_source_address("node1"),
                             soap::EndpointReference("http://user.example/s"));
  auto job = alice.start_job(sites[0].exec_address, "sim:duration=100,exit=3");
  EXPECT_EQ(alice.job_status(job), "running");

  fx.clock.advance(150);
  fx.grid->job_runner("node1").poll();
  EXPECT_EQ(alice.job_status(job), "exited");
  EXPECT_EQ(alice.job_exit_code(job), 3);
  ASSERT_TRUE(fx.consumer.wait_for(1, 2000));

  alice.delete_file(sites[0].data_address, "input.dat");
  alice.remove(job);
  alice.unreserve("node1");
  EXPECT_EQ(alice.get_available_resources("blast").size(), 1u);
}

TEST(WstGrid, NonOpaqueFileIds) {
  // "The EPR of the resource (file) is in the format user's DN/filename" —
  // the name is legible and client-predictable.
  WstFixture fx;
  auto alice = fx.alice();
  alice.make_reservation("node1");
  auto epr = alice.upload(fx.grid->data_address("node1"), "input.dat", "x");
  EXPECT_EQ(*epr.reference_property(wst::transfer_id_qname()),
            kAliceDn + "/input.dat");
}

TEST(WstGrid, UploadRequiresReservation) {
  WstFixture fx;
  auto alice = fx.alice();
  // No reservation: the Data service's outcall to the allocation service
  // rejects the upload.
  EXPECT_THROW(alice.upload(fx.grid->data_address("node1"), "f.txt", "x"),
               soap::SoapFault);
}

TEST(WstGrid, ManualUnreserveRequired_TheLeak) {
  // WS-Transfer lacks lifetime management: "A failure to destroy a
  // reservation after a job is finished would prevent the subsequent use
  // of that execution resource." The host stays reserved forever.
  WstFixture fx;
  auto alice = fx.alice();
  alice.make_reservation("node1");
  auto job = alice.start_job(fx.grid->exec_address("node1"),
                             "sim:duration=50,exit=0");
  fx.clock.advance(100);
  fx.grid->job_runner("node1").poll();
  EXPECT_EQ(alice.job_status(job), "exited");
  // Job done, client "forgets" to unreserve. Even days later the host is
  // still unavailable — the leak.
  fx.clock.advance(72LL * 3600 * 1000);
  EXPECT_TRUE(alice.get_available_resources("blast").empty());
  // Recovery is manual.
  alice.unreserve("node1");
  EXPECT_EQ(alice.get_available_resources("blast").size(), 1u);
}

TEST(WstGrid, OnlyHolderCanUnreserve) {
  WstFixture fx;
  auto alice = fx.alice();
  alice.make_reservation("node1");
  WstAdminClient admin(*fx.caller, *fx.grid, {kAdminDn, {}});
  admin.add_account(kMalloryDn, {kPrivilegeSubmit});
  auto mallory = fx.mallory();
  EXPECT_THROW(mallory.unreserve("node1"), soap::SoapFault);
}

TEST(WstGrid, ReservationRequiredForJobs) {
  WstFixture fx;
  auto alice = fx.alice();
  EXPECT_THROW(alice.start_job(fx.grid->exec_address("node1"), "sim:exit=0"),
               soap::SoapFault);
}

TEST(WstGrid, UnknownUserCannotReserve) {
  WstFixture fx;
  auto mallory = fx.mallory();
  EXPECT_THROW(mallory.make_reservation("node1"), soap::SoapFault);
}

TEST(WstGrid, GetModesDispatchOnIdShape) {
  // Get with "1<app>" = availability query; Get with "<host>" =
  // reservation probe — one operation, two meanings (the paper's CRUD
  // overloading trade-off).
  WstFixture fx;
  auto alice = fx.alice();
  EXPECT_EQ(alice.get_available_resources("render").size(), 1u);
  alice.make_reservation("node1");

  // Raw reservation probe, as the Exec/Data services use it.
  soap::EndpointReference probe(fx.grid->allocation_address());
  probe.add_reference_property(wst::transfer_id_qname(), "node1");
  wst::TransferProxy proxy(*fx.caller, with_identity(probe, {kAliceDn, {}}));
  auto info = proxy.get();
  EXPECT_EQ(info->name().local(), "ReservationInfo");
  EXPECT_EQ(info->child_local("Owner")->text(), kAliceDn);
}

TEST(WstGrid, FileOverwriteViaPut) {
  WstFixture fx;
  auto alice = fx.alice();
  alice.make_reservation("node1");
  auto epr = alice.upload(fx.grid->data_address("node1"), "f.txt", "v1");
  // Put overrides an existing file with a newer version.
  wst::TransferProxy proxy(*fx.caller, with_identity(epr, {kAliceDn, {}}));
  auto doc = std::make_unique<xml::Element>(gb("File"));
  doc->set_attr("name", "f.txt");
  doc->append_element(gb("Content"))
      .set_text(common::base64_encode(common::as_bytes(std::string("v2"))));
  proxy.put(std::move(doc));
  EXPECT_EQ(alice.download(fx.grid->data_address("node1"), "f.txt"), "v2");
}

TEST(WstGrid, DirectoryListingViaTrailingSlash) {
  WstFixture fx;
  auto alice = fx.alice();
  alice.make_reservation("node1");
  alice.upload(fx.grid->data_address("node1"), "a.txt", "1");
  alice.upload(fx.grid->data_address("node1"), "b.txt", "2");
  std::vector<std::string> expected = {"a.txt", "b.txt"};
  EXPECT_EQ(alice.list_files(fx.grid->data_address("node1")), expected);
}

TEST(WstGrid, AdminOperationsRejectNonAdmins) {
  WstFixture fx;
  WstAdminClient fake_admin(*fx.caller, *fx.grid, {kAliceDn, {}});
  EXPECT_THROW(fake_admin.add_account("CN=x", {}), soap::SoapFault);
  EXPECT_THROW(fake_admin.register_site({"node2", "http://x", "http://y", {}}),
               soap::SoapFault);
}

TEST(WstGrid, RetimeModeAdjustsReservationWindow) {
  // Put mode 'T': "change the time to which a site is reserved."
  WstFixture fx;
  auto alice = fx.alice();
  alice.make_reservation("node1");

  soap::EndpointReference epr(fx.grid->allocation_address());
  epr.add_reference_property(wst::transfer_id_qname(),
                             std::string(1, kModeRetime) + "node1");
  wst::TransferProxy proxy(*fx.caller, with_identity(epr, {kAliceDn, {}}));
  auto retime = std::make_unique<xml::Element>(gb("Retime"));
  retime->append_element(gb("Until")).set_text("123456789");
  proxy.put(std::move(retime));

  // The reservation probe reflects the new window.
  soap::EndpointReference probe(fx.grid->allocation_address());
  probe.add_reference_property(wst::transfer_id_qname(), "node1");
  wst::TransferProxy probe_proxy(*fx.caller, with_identity(probe, {kAliceDn, {}}));
  auto info = probe_proxy.get();
  EXPECT_EQ(info->child_local("Until")->text(), "123456789");
}

TEST(WstGrid, RetimeWithoutReservationFaults) {
  WstFixture fx;
  auto alice = fx.alice();
  soap::EndpointReference epr(fx.grid->allocation_address());
  epr.add_reference_property(wst::transfer_id_qname(),
                             std::string(1, kModeRetime) + "node1");
  wst::TransferProxy proxy(*fx.caller, with_identity(epr, {kAliceDn, {}}));
  auto retime = std::make_unique<xml::Element>(gb("Retime"));
  retime->append_element(gb("Until")).set_text("1");
  EXPECT_THROW(proxy.put(std::move(retime)), soap::SoapFault);
}

// ---------------------------------------------------------------------------
// Multi-host VOs
// ---------------------------------------------------------------------------

TEST(MultiHost, WsrfSchedulingAcrossTwoHosts) {
  WsrfFixture fx;
  fx.grid->add_host({.host = "node2",
                     .base = "http://node2.example",
                     .backend = std::make_unique<xmldb::MemoryBackend>(),
                     .container = {container::SecurityMode::kNone, nullptr,
                                   nullptr, &fx.clock},
                     .file_root = temp_dir("wsrf-node2")});
  fx.net.bind("node2.example", fx.grid->host_container("node2"));
  WsrfAdminClient admin(*fx.caller, *fx.grid, {kAdminDn, {}});
  admin.register_site({"node2", fx.grid->exec_address("node2"),
                       fx.grid->data_address("node2"), {"blast"}});

  auto alice = fx.alice();
  EXPECT_EQ(alice.get_available_resources("blast").size(), 2u);

  // Reserve both; run a job on each; they are fully independent.
  auto res1 = alice.make_reservation("node1");
  auto res2 = alice.make_reservation("node2");
  EXPECT_TRUE(alice.get_available_resources("blast").empty());

  auto dir1 = alice.create_directory(fx.grid->data_address("node1"));
  auto dir2 = alice.create_directory(fx.grid->data_address("node2"));
  auto job1 = alice.start_job(fx.grid->exec_address("node1"),
                              "sim:duration=100,exit=1", res1, dir1);
  auto job2 = alice.start_job(fx.grid->exec_address("node2"),
                              "sim:duration=200,exit=2", res2, dir2);
  fx.clock.advance(150);
  fx.grid->job_runner("node1").poll();
  fx.grid->job_runner("node2").poll();
  EXPECT_EQ(alice.job_status(job1), "exited");
  EXPECT_EQ(alice.job_status(job2), "running");
  fx.clock.advance(100);
  fx.grid->job_runner("node2").poll();
  EXPECT_EQ(alice.job_exit_code(job1), 1);
  EXPECT_EQ(alice.job_exit_code(job2), 2);
}

TEST(MultiHost, ReservationIsPerHost) {
  // A reservation for node1 cannot start jobs on node2.
  WsrfFixture fx;
  fx.grid->add_host({.host = "node2",
                     .base = "http://node2.example",
                     .backend = std::make_unique<xmldb::MemoryBackend>(),
                     .container = {container::SecurityMode::kNone, nullptr,
                                   nullptr, &fx.clock},
                     .file_root = temp_dir("wsrf-node2b")});
  fx.net.bind("node2.example", fx.grid->host_container("node2"));
  WsrfAdminClient admin(*fx.caller, *fx.grid, {kAdminDn, {}});
  admin.register_site({"node2", fx.grid->exec_address("node2"),
                       fx.grid->data_address("node2"), {"blast"}});

  auto alice = fx.alice();
  auto res1 = alice.make_reservation("node1");
  auto dir2 = alice.create_directory(fx.grid->data_address("node2"));
  EXPECT_THROW(alice.start_job(fx.grid->exec_address("node2"), "sim:exit=0",
                               res1, dir2),
               soap::SoapFault);
}

// ---------------------------------------------------------------------------
// The outcall asymmetry behind Figure 6
// ---------------------------------------------------------------------------

TEST(OutcallCounts, InstantiateJobNeedsMoreCallsOnWsrf) {
  // "due to the design of its services the WSRF implementation requires
  // several more outcalls to Instantiate a Job than the WS-Transfer
  // version."
  std::int64_t wsrf_messages;
  {
    WsrfFixture fx;
    auto alice = fx.alice();
    auto reservation = alice.make_reservation("node1");
    auto directory = alice.create_directory(fx.grid->data_address("node1"));
    fx.meter.reset();
    (void)alice.start_job(fx.grid->exec_address("node1"),
                          "sim:duration=1000000,exit=0", reservation, directory);
    wsrf_messages = fx.meter.messages();
  }
  std::int64_t wst_messages;
  {
    WstFixture fx;
    auto alice = fx.alice();
    alice.make_reservation("node1");
    fx.meter.reset();
    (void)alice.start_job(fx.grid->exec_address("node1"),
                          "sim:duration=1000000,exit=0");
    wst_messages = fx.meter.messages();
  }
  // WSRF: client call + 3 outcalls = 8 messages; WST: client call +
  // 1 outcall = 4 messages.
  EXPECT_EQ(wst_messages, 4);
  EXPECT_EQ(wsrf_messages, 8);
}

TEST(OutcallCounts, DeleteFileIsOneCallOnBothStacks) {
  // "The Delete File operation involves a single call in both
  // implementations."
  std::int64_t wsrf_messages;
  {
    WsrfFixture fx;
    auto alice = fx.alice();
    auto directory = alice.create_directory(fx.grid->data_address("node1"));
    alice.upload(directory, "f.txt", "x");
    fx.meter.reset();
    alice.delete_file(directory, "f.txt");
    wsrf_messages = fx.meter.messages();
  }
  std::int64_t wst_messages;
  {
    WstFixture fx;
    auto alice = fx.alice();
    alice.make_reservation("node1");
    alice.upload(fx.grid->data_address("node1"), "f.txt", "x");
    fx.meter.reset();
    alice.delete_file(fx.grid->data_address("node1"), "f.txt");
    wst_messages = fx.meter.messages();
  }
  EXPECT_EQ(wsrf_messages, 2);  // one request/response pair
  EXPECT_EQ(wst_messages, 2);
}

TEST(OutcallCounts, UploadIsAPairOfCallsOnBothStacks) {
  // "Upload File requires a pair of calls in both."
  std::int64_t wsrf_messages;
  {
    WsrfFixture fx;
    auto alice = fx.alice();
    auto directory = alice.create_directory(fx.grid->data_address("node1"));
    fx.meter.reset();
    alice.upload(directory, "f.txt", "x");
    wsrf_messages = fx.meter.messages();
  }
  std::int64_t wst_messages;
  {
    WstFixture fx;
    auto alice = fx.alice();
    alice.make_reservation("node1");
    fx.meter.reset();
    alice.upload(fx.grid->data_address("node1"), "f.txt", "x");
    wst_messages = fx.meter.messages();
  }
  EXPECT_EQ(wsrf_messages, wst_messages);
}

// ---------------------------------------------------------------------------
// Malformed numeric input (strict-parsing sweep)
// ---------------------------------------------------------------------------

TEST(WsrfGrid, MalformedSimParamsKeepDefaultsAndWarn) {
  // "duration=5x" used to truncate to 5 under stoll; now the malformed
  // pieces keep their defaults, the job still runs, and the mangling is
  // reported (counter + warn) instead of silently reshaping the job.
  WsrfFixture fx;
  auto alice = fx.alice();
  auto reservation = alice.make_reservation("node1");
  auto directory = alice.create_directory(fx.grid->data_address("node1"));

  auto& malformed = telemetry::MetricsRegistry::global().counter(
      "jobrunner.malformed_command_params");
  std::uint64_t before = malformed.value();
  std::uint64_t warns =
      telemetry::EventLog::global().count(telemetry::Level::kWarn);

  auto job = alice.start_job(fx.grid->exec_address("node1"),
                             "sim:duration=5x,exit=zz", reservation, directory);
  EXPECT_EQ(malformed.value(), before + 2);  // one per bad parameter
  EXPECT_EQ(telemetry::EventLog::global().count(telemetry::Level::kWarn),
            warns + 2);

  // Defaults survived: duration 0 (exits on the next poll), exit code 0.
  fx.clock.advance(1);
  fx.grid->job_runner("node1").poll();
  EXPECT_EQ(alice.job_status(job), "exited");
  EXPECT_EQ(alice.job_exit_code(job), 0);
}

TEST(WstGrid, MalformedExitCodeReadsAsNotYetExited) {
  // The ExitCode text comes from a remote job document; a broken or
  // hostile execution service must not be able to throw std::stoi
  // exceptions out of a status poll. The client warns and reports "no
  // exit code yet".
  WstFixture fx;

  class BrokenExecService : public container::Service {
   public:
    BrokenExecService() : container::Service("BrokenExec") {
      register_operation(
          wst::actions::kGet, [](container::RequestContext& ctx) {
            soap::Envelope r =
                container::make_response(ctx, wst::actions::kGet + "Response");
            xml::Element& job =
                r.add_payload(xml::QName(soap::ns::kGridBox, "Job"));
            job.append_element(xml::QName(soap::ns::kGridBox, "Status"))
                .set_text("exited");
            job.append_element(xml::QName(soap::ns::kGridBox, "ExitCode"))
                .set_text("boom");
            return r;
          });
    }
  };

  container::Container stub({});
  BrokenExecService svc;
  stub.deploy("/Job", svc);
  fx.net.bind("stub.example", stub);

  auto& malformed = telemetry::MetricsRegistry::global().counter(
      "gridbox.malformed_exit_codes");
  std::uint64_t before = malformed.value();
  std::uint64_t warns =
      telemetry::EventLog::global().count(telemetry::Level::kWarn);

  auto alice = fx.alice();
  soap::EndpointReference job("http://stub.example/Job");
  EXPECT_EQ(alice.job_status(job), "exited");
  EXPECT_FALSE(alice.job_exit_code(job).has_value());
  EXPECT_EQ(malformed.value(), before + 1);
  EXPECT_EQ(telemetry::EventLog::global().count(telemetry::Level::kWarn),
            warns + 1);
}

}  // namespace
}  // namespace gs::gridbox
