// Tests for the batch scheduler subsystem: node registry liveness,
// fair-share policy, priority placement, EASY backfill's hard guarantee,
// cross-tier preemption, arrays and dependencies, the dual-stack
// SchedService (WSRF resource properties + WS-Transfer CRUD), heartbeats
// over the fabric, and the acceptance scenario — the same job's state
// transitions observed via WS-Notification AND WS-Eventing through routes
// dropping 30% of exchanges, with no lost terminal-state notification.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "container/container.hpp"
#include "net/retry.hpp"
#include "net/virtual_network.hpp"
#include "sched/client.hpp"
#include "sched/scheduler.hpp"
#include "sched/service.hpp"
#include "soap/envelope.hpp"
#include "wse/client.hpp"
#include "wse/service.hpp"
#include "wsn/client.hpp"
#include "wsn/consumer.hpp"
#include "wsn/producer.hpp"
#include "wsrf/resource.hpp"
#include "xmldb/database.hpp"

namespace gs::sched {
namespace {

// ---------------------------------------------------------------------------
// Core fixture: scheduler over a local registry/runner, no network.
// ---------------------------------------------------------------------------

struct SchedFixture {
  common::ManualClock clock{1000};
  app::JobRunner runner{clock};
  NodeRegistry nodes;
  telemetry::MetricsRegistry registry;  // local: counters independent of
                                        // other tests' global activity
  std::unique_ptr<Scheduler> sched;

  explicit SchedFixture(common::TimeMs heartbeat_timeout_ms = 30'000) {
    Scheduler::Config config;
    config.clock = &clock;
    config.runner = &runner;
    config.nodes = &nodes;
    config.heartbeat_timeout_ms = heartbeat_timeout_ms;
    config.metrics = &registry;
    sched = std::make_unique<Scheduler>(config);
  }

  void add_batch_partition() { sched->add_partition({.name = "batch"}); }

  void add_nodes(size_t count, unsigned cpus, std::uint64_t mem_mb,
                 std::vector<std::string> partitions = {"batch"}) {
    for (size_t i = 0; i < count; ++i) {
      nodes.upsert("n" + std::to_string(i), partitions, cpus, mem_mb,
                   clock.now());
    }
  }

  void heartbeat_all() {
    for (const NodeInfo& n : nodes.snapshot()) {
      nodes.heartbeat(n.name, clock.now());
    }
  }

  JobSpec sim_job(common::TimeMs duration_ms, unsigned cpus = 1,
                  common::TimeMs limit_ms = 0, int exit_code = 0) {
    JobSpec spec;
    spec.partition = "batch";
    spec.command = "sim:duration=" + std::to_string(duration_ms) +
                   ",exit=" + std::to_string(exit_code);
    spec.cpus = cpus;
    spec.time_limit_ms = limit_ms;
    return spec;
  }

  /// Drives passes and simulated time until the queue drains (or gives
  /// up); returns the number of passes run.
  int drain(int max_steps = 1000) {
    for (int i = 1; i <= max_steps; ++i) {
      sched->schedule_pass();
      if (sched->queue_depth() == 0 && sched->running_count() == 0) return i;
      auto next = sched->next_event_time();
      if (next && *next > clock.now()) {
        clock.advance(*next - clock.now());
      } else if (!next) {
        clock.advance(1000);
      }
      heartbeat_all();
    }
    return max_steps;
  }
};

// ---------------------------------------------------------------------------
// Node registry
// ---------------------------------------------------------------------------

TEST(NodeRegistry, TracksPartitionsSlotsAndLiveness) {
  common::ManualClock clock(1000);
  NodeRegistry reg;
  reg.upsert("n0", {"batch", "scavenge"}, 8, 16'000, clock.now());
  reg.upsert("n1", {"batch"}, 4, 8'000, clock.now());

  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.cpus_total(), 12u);
  EXPECT_EQ(reg.partition_nodes("batch").size(), 2u);
  EXPECT_EQ(reg.partition_nodes("scavenge").size(), 1u);
  EXPECT_FALSE(reg.find_fit("batch", 16, 1000).has_value());

  // First fit honors free slots.
  ASSERT_TRUE(reg.allocate("n0", 6, 1000));
  auto fit = reg.find_fit("batch", 4, 1000);
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(*fit, "n1");
  EXPECT_FALSE(reg.allocate("n0", 4, 1000));  // over-commit refused
  reg.release("n0", 6, 1000);
  EXPECT_EQ(reg.info("n0")->cpus_free(), 8u);

  // Drained nodes are excluded from placement but not downed.
  ASSERT_TRUE(reg.drain("n0"));
  EXPECT_EQ(*reg.find_fit("batch", 1, 1), "n1");
  ASSERT_TRUE(reg.resume("n0", clock.now()));

  // Silent nodes go DOWN on sweep; a heartbeat revives.
  clock.advance(60'000);
  reg.heartbeat("n1", clock.now());
  std::vector<std::string> downed = reg.sweep(clock.now(), 30'000);
  ASSERT_EQ(downed.size(), 1u);
  EXPECT_EQ(downed[0], "n0");
  EXPECT_EQ(reg.info("n0")->state, NodeState::kDown);
  EXPECT_EQ(reg.count(NodeState::kUp), 1u);
  EXPECT_TRUE(reg.heartbeat("n0", clock.now()));
  EXPECT_EQ(reg.info("n0")->state, NodeState::kUp);
  EXPECT_FALSE(reg.heartbeat("ghost", clock.now()));
}

TEST(NodeRegistry, ReRegistrationRefreshesPartitionsAndPreservesDrain) {
  common::ManualClock clock(1000);
  NodeRegistry reg;
  reg.upsert("n0", {"batch"}, 4, 8'000, clock.now());
  ASSERT_TRUE(reg.drain("n0"));
  reg.upsert("n0", {"scavenge"}, 8, 8'000, clock.now());
  EXPECT_EQ(reg.info("n0")->state, NodeState::kDrain);  // admin decision persists
  EXPECT_EQ(reg.info("n0")->cpus, 8u);
  EXPECT_TRUE(reg.partition_nodes("batch").empty());
  EXPECT_EQ(reg.partition_nodes("scavenge").size(), 1u);
}

// ---------------------------------------------------------------------------
// Fair-share
// ---------------------------------------------------------------------------

TEST(FairShare, HogsDecayTowardZeroAndHalfLifeForgives) {
  FairShareTracker fs(1000);  // half-life 1 s
  fs.set_shares("alice", 1.0);
  fs.set_shares("bob", 1.0);
  fs.decay(0);

  EXPECT_DOUBLE_EQ(fs.factor("alice"), 1.0);  // idle system
  fs.record_usage("alice", 10'000);
  // Alice holds 100% of usage with 50% of shares: F = 2^-2 = 0.25.
  EXPECT_NEAR(fs.factor("alice"), 0.25, 1e-9);
  EXPECT_NEAR(fs.factor("bob"), 1.0, 1e-9);  // bob used nothing

  fs.record_usage("bob", 10'000);
  // Equal usage, equal shares: both at 2^-1 = 0.5.
  EXPECT_NEAR(fs.factor("alice"), 0.5, 1e-9);
  EXPECT_NEAR(fs.factor("bob"), 0.5, 1e-9);

  fs.decay(1000);  // one half-life halves usage but not the ratio
  EXPECT_NEAR(fs.usage("alice"), 5'000, 1e-6);
  EXPECT_NEAR(fs.factor("alice"), 0.5, 1e-9);
}

// ---------------------------------------------------------------------------
// Scheduler core
// ---------------------------------------------------------------------------

TEST(Scheduler, PlacesRunsAndCompletesJobs) {
  SchedFixture fx;
  fx.add_batch_partition();
  fx.add_nodes(2, 4, 8'000);

  std::vector<std::pair<std::string, std::string>> seen;  // (id, to)
  fx.sched->on_transition([&](const JobInfo& info, JobState, JobState to) {
    seen.push_back({info.id, job_state_name(to)});
  });

  auto ids = fx.sched->submit(fx.sim_job(2000, 2));
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(fx.sched->queue_depth(), 1u);

  auto result = fx.sched->schedule_pass();
  EXPECT_EQ(result.placed, 1u);
  EXPECT_EQ(result.backfilled, 0u);
  EXPECT_EQ(fx.sched->running_count(), 1u);
  auto info = fx.sched->info(ids[0]);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->state, JobState::kRunning);
  EXPECT_FALSE(info->node.empty());
  EXPECT_EQ(fx.nodes.cpus_used(), 2u);

  fx.clock.advance(2000);
  fx.heartbeat_all();
  fx.sched->schedule_pass();
  info = fx.sched->info(ids[0]);
  EXPECT_EQ(info->state, JobState::kCompleted);
  EXPECT_EQ(info->exit_code, 0);
  EXPECT_EQ(fx.nodes.cpus_used(), 0u);

  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<std::string, std::string>{ids[0], "RUNNING"}));
  EXPECT_EQ(seen[1], (std::pair<std::string, std::string>{ids[0], "COMPLETED"}));

  // CPU-time was charged to the account, and the telemetry moved.
  EXPECT_GT(fx.sched->fairshare_factor("other"),
            fx.sched->fairshare_factor("default"));
  EXPECT_EQ(fx.registry.counter("sched.jobs_placed").value(), 1u);
  EXPECT_EQ(fx.registry.counter("sched.jobs_completed").value(), 1u);
  EXPECT_EQ(fx.registry.gauge("sched.queue_depth").value(), 0);
  EXPECT_GT(fx.registry.histogram("sched.placement_wait_us").count(), 0u);
}

TEST(Scheduler, FairShareOrdersCompetingAccounts) {
  SchedFixture fx;
  fx.add_batch_partition();
  fx.add_nodes(1, 1, 1'000);  // room for exactly one job at a time
  fx.sched->set_account_shares("hog", 1.0);
  fx.sched->set_account_shares("fresh", 1.0);

  // The hog burns CPU time first.
  JobSpec hog_warmup = fx.sim_job(60'000);
  hog_warmup.account = "hog";
  fx.sched->submit(hog_warmup);
  fx.sched->schedule_pass();
  fx.clock.advance(60'000);
  fx.heartbeat_all();
  fx.sched->schedule_pass();

  // Same instant, same spec — only the account differs.
  JobSpec hog_job = fx.sim_job(1000);
  hog_job.account = "hog";
  JobSpec fresh_job = fx.sim_job(1000);
  fresh_job.account = "fresh";
  std::string hog_id = fx.sched->submit(hog_job)[0];     // submitted first...
  std::string fresh_id = fx.sched->submit(fresh_job)[0];

  EXPECT_GT(fx.sched->priority_of(fresh_id), fx.sched->priority_of(hog_id));
  fx.sched->schedule_pass();
  // ...but the fresh account's job runs first anyway.
  EXPECT_EQ(fx.sched->info(fresh_id)->state, JobState::kRunning);
  EXPECT_EQ(fx.sched->info(hog_id)->state, JobState::kPending);
}

TEST(Scheduler, BackfillFillsGapsButNeverDelaysTheReservedHead) {
  SchedFixture fx;
  fx.add_batch_partition();
  fx.add_nodes(1, 5, 10'000);

  // A occupies 3/5 cpus until t+100s (limit == duration).
  std::string a = fx.sched->submit(fx.sim_job(100'000, 3, 100'000))[0];
  // B needs the whole node: blocked, reserved (shadow = A's end).
  std::string b = fx.sched->submit(fx.sim_job(1000, 5, 10'000))[0];
  // C fits the gap and ends before the shadow: backfills.
  std::string c = fx.sched->submit(fx.sim_job(10'000, 1, 50'000))[0];
  // D fits the gap too but could outlive the shadow: must wait.
  std::string d = fx.sched->submit(fx.sim_job(10'000, 1, 200'000))[0];

  auto result = fx.sched->schedule_pass();
  EXPECT_EQ(result.placed, 2u);      // A and C
  EXPECT_EQ(result.backfilled, 1u);  // C only
  EXPECT_EQ(fx.sched->info(a)->state, JobState::kRunning);
  EXPECT_EQ(fx.sched->info(b)->state, JobState::kPending);
  EXPECT_EQ(fx.sched->info(b)->reason, "resources");
  EXPECT_EQ(fx.sched->info(c)->state, JobState::kRunning);
  EXPECT_TRUE(fx.sched->info(c)->backfilled);
  // The conservative guarantee: D stays pending although a cpu is free.
  EXPECT_EQ(fx.sched->info(d)->state, JobState::kPending);
  EXPECT_EQ(fx.nodes.info("n0")->cpus_free(), 1u);
  EXPECT_EQ(fx.registry.counter("sched.backfill_placed").value(), 1u);

  // Everything still completes, B without ever being delayed past A.
  fx.drain();
  for (const std::string& id : {a, b, c, d}) {
    EXPECT_EQ(fx.sched->info(id)->state, JobState::kCompleted) << id;
  }
  EXPECT_FALSE(fx.sched->info(b)->backfilled);
  EXPECT_EQ(fx.sched->info(b)->start_time, 101'000);  // exactly A's end
}

TEST(Scheduler, HigherTierPreemptsScavengeAndRequeuesVictims) {
  SchedFixture fx;
  fx.sched->add_partition(
      {.name = "batch", .priority = 10, .preempt_tier = 1});
  fx.sched->add_partition(
      {.name = "scavenge", .priority = 0, .preempt_tier = 0,
       .preemptable = true});
  fx.add_nodes(1, 4, 8'000, {"batch", "scavenge"});

  // Fill the node with scavenge work.
  JobSpec scav = fx.sim_job(100'000, 1, 200'000);
  scav.partition = "scavenge";
  std::vector<std::string> victims;
  for (int i = 0; i < 4; ++i) victims.push_back(fx.sched->submit(scav)[0]);
  fx.sched->schedule_pass();
  EXPECT_EQ(fx.sched->running_count(), 4u);

  // A batch job needing the whole node preempts all four.
  std::string batch_id = fx.sched->submit(fx.sim_job(5000, 4, 10'000))[0];
  std::vector<std::string> preempted_events;
  fx.sched->on_transition([&](const JobInfo& info, JobState, JobState to) {
    if (to == JobState::kPreempted) preempted_events.push_back(info.id);
  });
  auto result = fx.sched->schedule_pass();
  EXPECT_EQ(result.preempted, 4u);
  EXPECT_EQ(result.placed, 1u);
  EXPECT_EQ(fx.sched->info(batch_id)->state, JobState::kRunning);
  EXPECT_EQ(preempted_events.size(), 4u);
  for (const std::string& id : victims) {
    EXPECT_EQ(fx.sched->info(id)->state, JobState::kPending) << id;
    EXPECT_EQ(fx.sched->info(id)->preempt_count, 1);
    EXPECT_EQ(fx.sched->info(id)->reason, "preempted");
  }
  EXPECT_EQ(fx.runner.running_count(), 1u);  // victims really were killed

  // Scavenge jobs rerun after the batch job finishes; everything drains.
  fx.drain();
  for (const std::string& id : victims) {
    EXPECT_EQ(fx.sched->info(id)->state, JobState::kCompleted) << id;
  }
  EXPECT_EQ(fx.registry.counter("sched.jobs_preempted").value(), 4u);
}

TEST(Scheduler, TimeLimitKillsOverrunningJobs) {
  SchedFixture fx;
  fx.add_batch_partition();
  fx.add_nodes(1, 4, 8'000);
  // Wants 50 s but is only allowed 2 s.
  std::string id = fx.sched->submit(fx.sim_job(50'000, 1, 2000))[0];
  fx.sched->schedule_pass();
  fx.clock.advance(2000);
  fx.heartbeat_all();
  auto result = fx.sched->schedule_pass();
  EXPECT_EQ(result.timed_out, 1u);
  EXPECT_EQ(fx.sched->info(id)->state, JobState::kFailed);
  EXPECT_EQ(fx.sched->info(id)->reason, "timeout");
  EXPECT_EQ(fx.runner.running_count(), 0u);
  EXPECT_EQ(fx.nodes.cpus_used(), 0u);
  EXPECT_EQ(fx.registry.counter("sched.jobs_timed_out").value(), 1u);
}

TEST(Scheduler, SilentNodeGoesDownAndItsJobsRequeueElsewhere) {
  SchedFixture fx(/*heartbeat_timeout_ms=*/5000);
  fx.add_batch_partition();
  fx.add_nodes(2, 1, 1'000);

  std::string a = fx.sched->submit(fx.sim_job(20'000, 1, 60'000))[0];
  std::string b = fx.sched->submit(fx.sim_job(20'000, 1, 60'000))[0];
  fx.sched->schedule_pass();
  std::string a_node = fx.sched->info(a)->node;
  std::vector<std::string> requeue_reasons;
  fx.sched->on_transition([&](const JobInfo& info, JobState from, JobState to) {
    if (from == JobState::kRunning && to == JobState::kPending) {
      requeue_reasons.push_back(info.reason);
    }
  });

  // Only the OTHER node keeps heartbeating; a's node falls silent.
  fx.clock.advance(6000);
  for (const NodeInfo& n : fx.nodes.snapshot()) {
    if (n.name != a_node) fx.nodes.heartbeat(n.name, fx.clock.now());
  }
  auto result = fx.sched->schedule_pass();
  EXPECT_EQ(result.requeued, 1u);
  EXPECT_EQ(fx.nodes.info(a_node)->state, NodeState::kDown);
  auto info = fx.sched->info(a);
  // Requeued — and re-placed in the same pass only if the other node is
  // free, which it is not (b runs there): still pending. The requeue
  // transition carried the cause; the live reason now shows what blocks
  // the re-placement (SLURM's "Resources").
  EXPECT_EQ(info->state, JobState::kPending);
  ASSERT_EQ(requeue_reasons.size(), 1u);
  EXPECT_EQ(requeue_reasons[0], "node_fail");
  EXPECT_EQ(info->reason, "resources");
  EXPECT_EQ(fx.registry.counter("sched.nodes_downed").value(), 1u);

  // The downed node reports back in; everything drains.
  fx.nodes.heartbeat(a_node, fx.clock.now());
  fx.drain();
  EXPECT_EQ(fx.sched->info(a)->state, JobState::kCompleted);
  EXPECT_EQ(fx.sched->info(b)->state, JobState::kCompleted);
}

TEST(Scheduler, ArraysExpandAndAfterokDependenciesGate) {
  SchedFixture fx;
  fx.add_batch_partition();
  fx.add_nodes(2, 4, 8'000);

  JobSpec array = fx.sim_job(1000);
  array.array_count = 3;
  auto task_ids = fx.sched->submit(array);
  ASSERT_EQ(task_ids.size(), 3u);
  EXPECT_EQ(task_ids[1], task_ids[0].substr(0, task_ids[0].size() - 2) + "_1");

  JobSpec child = fx.sim_job(1000);
  child.depends_on = {task_ids[0], task_ids[1]};
  std::string child_id = fx.sched->submit(child)[0];

  fx.sched->schedule_pass();
  EXPECT_EQ(fx.sched->info(child_id)->state, JobState::kPending);  // gated
  EXPECT_EQ(fx.sched->running_count(), 3u);

  fx.drain();
  EXPECT_EQ(fx.sched->info(child_id)->state, JobState::kCompleted);

  // afterok means OK: a failing parent cancels the chain.
  std::string bad_parent =
      fx.sched->submit(fx.sim_job(1000, 1, 0, /*exit_code=*/7))[0];
  JobSpec doomed = fx.sim_job(1000);
  doomed.depends_on = {bad_parent};
  std::string doomed_id = fx.sched->submit(doomed)[0];
  JobSpec grandchild = fx.sim_job(1000);
  grandchild.depends_on = {doomed_id};
  std::string grandchild_id = fx.sched->submit(grandchild)[0];

  fx.drain();
  EXPECT_EQ(fx.sched->info(bad_parent)->state, JobState::kFailed);
  EXPECT_EQ(fx.sched->info(doomed_id)->state, JobState::kCancelled);
  EXPECT_EQ(fx.sched->info(doomed_id)->reason, "dependency");
  EXPECT_EQ(fx.sched->info(grandchild_id)->state, JobState::kCancelled);

  // Unknown dependencies are rejected outright.
  JobSpec orphan = fx.sim_job(1000);
  orphan.depends_on = {"job-9999"};
  EXPECT_THROW(fx.sched->submit(orphan), soap::SoapFault);
}

TEST(Scheduler, CancelKillsRunningJobsAndRejectsInvalidSubmits) {
  SchedFixture fx;
  fx.add_batch_partition();
  fx.add_nodes(1, 4, 8'000);

  std::string pending = fx.sched->submit(fx.sim_job(1000, 4))[0];
  std::string running = fx.sched->submit(fx.sim_job(100'000, 4))[0];
  fx.sched->schedule_pass();  // 'pending' was submitted first and runs
  EXPECT_EQ(fx.sched->info(pending)->state, JobState::kRunning);

  EXPECT_TRUE(fx.sched->cancel(pending));
  EXPECT_EQ(fx.sched->info(pending)->state, JobState::kCancelled);
  EXPECT_EQ(fx.runner.running_count(), 0u);
  EXPECT_EQ(fx.nodes.cpus_used(), 0u);
  EXPECT_TRUE(fx.sched->cancel(running));  // still pending: plain cancel
  EXPECT_FALSE(fx.sched->cancel(running));  // terminal: refused
  EXPECT_FALSE(fx.sched->cancel("job-404"));

  JobSpec bad = fx.sim_job(1000);
  bad.partition = "nope";
  EXPECT_THROW(fx.sched->submit(bad), soap::SoapFault);
  EXPECT_THROW(fx.sched->submit(fx.sim_job(1000, 64)), soap::SoapFault);
  JobSpec empty;
  empty.partition = "batch";
  EXPECT_THROW(fx.sched->submit(empty), soap::SoapFault);
}

// ---------------------------------------------------------------------------
// Dual-stack fixture: SchedService in a container on the virtual fabric,
// job events published through wsn AND wse, one consumer per stack.
// ---------------------------------------------------------------------------

struct ServiceFixture {
  common::ManualClock clock{1000};
  net::VirtualNetwork net;
  telemetry::MetricsRegistry registry;
  app::JobRunner runner{clock};
  NodeRegistry nodes;
  std::unique_ptr<Scheduler> sched;

  xmldb::XmlDatabase db{std::make_unique<xmldb::MemoryBackend>(), {}};
  container::Container container{{.clock = &clock}};
  wsrf::ResourceHome sub_home{db, "subs", &container.lifetime()};
  std::unique_ptr<wsn::SubscriptionManagerService> wsn_manager;
  std::unique_ptr<SchedService> service;
  std::unique_ptr<net::VirtualCaller> caller;        // clients and the fleet
  std::unique_ptr<net::VirtualCaller> wsn_raw_sink;  // producer -> consumers
  std::unique_ptr<net::RetryingCaller> wsn_sink;
  std::unique_ptr<wsn::NotificationProducer> wsn_producer;

  wse::SubscriptionStore store;
  std::unique_ptr<wse::WseSubscriptionManagerService> wse_manager;
  std::unique_ptr<wse::EventSourceService> event_source;
  std::unique_ptr<net::VirtualCaller> wse_raw_sink;
  std::unique_ptr<net::RetryingCaller> wse_sink;
  std::unique_ptr<wse::NotificationManager> notifier;

  wsn::NotificationConsumer wsn_consumer;  // at http://cw
  wsn::NotificationConsumer wse_consumer;  // at http://ce

  ServiceFixture() {
    Scheduler::Config config;
    config.clock = &clock;
    config.runner = &runner;
    config.nodes = &nodes;
    config.metrics = &registry;
    sched = std::make_unique<Scheduler>(config);
    sched->add_partition({.name = "batch"});

    // Retries advance nothing and sleep nowhere: the schedule is simulated,
    // so recovery through the seeded drops is deterministic and instant.
    net::RetryPolicy retry{
        .max_attempts = 8, .base_delay_ms = 1, .jitter = 0.0, .seed = 11};

    service = std::make_unique<SchedService>("http://sched/Sched", sched.get());
    wsn_manager = std::make_unique<wsn::SubscriptionManagerService>(
        sub_home, "http://sched/Subscriptions");
    wsn_raw_sink = std::make_unique<net::VirtualCaller>(
        net, net::VirtualCaller::Options{.keep_alive = false});
    wsn_sink = std::make_unique<net::RetryingCaller>(*wsn_raw_sink, retry,
                                                     &clock,
                                                     [](common::TimeMs) {});
    wsn_producer = std::make_unique<wsn::NotificationProducer>(
        wsn::NotificationProducer::Config{
            .sink_caller = wsn_sink.get(),
            .producer_address = "http://sched/Sched",
            .manager = wsn_manager.get(),
            .clock = &clock},
        sched_topics());
    wsn_producer->register_into(*service);

    wse_manager = std::make_unique<wse::WseSubscriptionManagerService>(
        store, "http://sched/WseSubscriptions", clock);
    event_source = std::make_unique<wse::EventSourceService>(
        "Events", store, *wse_manager, clock);
    wse_raw_sink = std::make_unique<net::VirtualCaller>(
        net, net::VirtualCaller::Options{});
    wse_sink = std::make_unique<net::RetryingCaller>(*wse_raw_sink, retry,
                                                     &clock,
                                                     [](common::TimeMs) {});
    notifier = std::make_unique<wse::NotificationManager>(store, *wse_sink,
                                                          clock);

    attach_job_publisher(*sched,
                         {.wsn = wsn_producer.get(), .wse = notifier.get()});

    container.deploy("/Sched", *service);
    container.deploy("/Subscriptions", *wsn_manager);
    container.deploy("/Events", *event_source);
    container.deploy("/WseSubscriptions", *wse_manager);
    net.bind("sched", container);
    net.bind("cw", wsn_consumer);
    net.bind("ce", wse_consumer);

    caller =
        std::make_unique<net::VirtualCaller>(net, net::VirtualCaller::Options{});
  }

  SchedClient client() { return SchedClient(*caller, "http://sched/Sched"); }

  void subscribe_both_stacks() {
    wsn::Filter filter;
    filter.set_topic(wsn::TopicExpression::parse(
        wsn::TopicExpression::Dialect::kConcrete, kJobTopic));
    wsn::NotificationProducerProxy wsn_proxy(
        *caller, soap::EndpointReference("http://sched/Sched"));
    wsn_proxy.subscribe(soap::EndpointReference("http://cw/sink"), filter);

    wse::EventSourceProxy wse_proxy(
        *caller, soap::EndpointReference("http://sched/Events"));
    wse_proxy.subscribe(soap::EndpointReference("http://ce/sink"),
                        wse::FilterDialect::kTopic, kJobTopic);
  }
};

TEST(SchedService, TransferCrudAndResourcePropertiesAgreeAcrossStacks) {
  ServiceFixture fx;
  SchedClient client = fx.client();

  // The fleet reports in over the fabric.
  FleetSimulator fleet(*fx.caller, "http://sched/Sched");
  fleet.provision(3, {"batch"}, 4, 8'000);
  EXPECT_EQ(fx.nodes.size(), 3u);
  EXPECT_EQ(fleet.tick(), 3u);

  // Submit (WS-Transfer Create) and run one pass through the service.
  JobSpec spec;
  spec.name = "render";
  spec.partition = "batch";
  spec.command = "sim:duration=2000,exit=0";
  spec.cpus = 2;
  auto ids = client.submit(spec);
  ASSERT_EQ(ids.size(), 1u);

  SchedClient::PassCounts counts = client.schedule_pass();
  EXPECT_EQ(counts.placed, 1u);
  EXPECT_EQ(counts.running, 1u);

  // Both stacks serve the same job state.
  auto wsrf_doc = client.document_wsrf();
  auto wst_doc = client.document_wst();
  for (xml::Element* doc : {wsrf_doc.get(), wst_doc.get()}) {
    bool found = false;
    for (const xml::Element* el : doc->child_elements()) {
      if (el->name().local() == "Job" && el->attr("id") == ids[0]) {
        EXPECT_EQ(el->attr("state"), std::optional<std::string>("RUNNING"));
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }

  // WSRF property selection: the queue element and one job by id.
  auto queue = client.property("Queue");
  ASSERT_FALSE(queue->child_elements().empty());
  EXPECT_EQ(queue->child_elements()[0]->attr("running"),
            std::optional<std::string>("1"));
  auto by_id = client.property(ids[0]);
  ASSERT_FALSE(by_id->child_elements().empty());
  EXPECT_EQ(by_id->child_elements()[0]->attr("id"),
            std::optional<std::string>(ids[0]));
  EXPECT_THROW(client.property("job-404"), soap::SoapFault);

  // WS-Transfer Get of one job; Delete cancels it.
  auto job_el = client.job(ids[0]);
  EXPECT_EQ(job_el->attr("state"), std::optional<std::string>("RUNNING"));
  EXPECT_TRUE(client.cancel(ids[0]));
  EXPECT_EQ(client.job(ids[0])->attr("state"),
            std::optional<std::string>("CANCELLED"));
  EXPECT_THROW(client.cancel("job-404"), soap::SoapFault);

  // Drain/Resume through the service.
  client.drain(fleet.names()[0]);
  EXPECT_EQ(fx.nodes.info(fleet.names()[0])->state, NodeState::kDrain);
  client.resume(fleet.names()[0]);
  EXPECT_EQ(fx.nodes.info(fleet.names()[0])->state, NodeState::kUp);
  EXPECT_THROW(client.drain("ghost"), soap::SoapFault);
}

TEST(SchedService, FleetHeartbeatsOverFabricKeepNodesAliveAndReRegister) {
  ServiceFixture fx;
  SchedClient client = fx.client();
  FleetSimulator fleet(*fx.caller, "http://sched/Sched");
  fleet.provision(4, {"batch"}, 2, 4'000);

  // A node that stops heartbeating goes DOWN after the sweep timeout...
  fleet.fail("node3");
  fx.clock.advance(31'000);
  fleet.tick();
  client.schedule_pass();
  EXPECT_EQ(fx.nodes.info("node3")->state, NodeState::kDown);
  EXPECT_EQ(fx.nodes.count(NodeState::kUp), 3u);

  // ...and its first heartbeat after recovery revives it.
  fleet.recover("node3");
  fleet.tick();
  EXPECT_EQ(fx.nodes.info("node3")->state, NodeState::kUp);

  // An unknown node heartbeating (controller restart) re-registers itself.
  EXPECT_FALSE(client.heartbeat("nodeX"));
  FleetSimulator fresh(*fx.caller, "http://sched/Sched");
  fresh.provision(1, {"batch"}, 2, 4'000, "late");
  EXPECT_TRUE(client.heartbeat("late0"));
}

// The issue's acceptance scenario: the same job's transitions observed via
// WS-Notification AND WS-Eventing under a 30% seeded drop rate — the PR-2
// retry path recovers every drop, so neither stack loses the terminal
// transition.
TEST(SchedService, DualStackSubscribersSeeSameTransitionsThroughFaultyRoutes) {
  ServiceFixture fx;
  fx.subscribe_both_stacks();
  fx.net.set_fault_policy("cw", {.drop_probability = 0.3, .seed = 1234});
  fx.net.set_fault_policy("ce", {.drop_probability = 0.3, .seed = 4321});
  std::uint64_t faults_before = telemetry::MetricsRegistry::global()
                                    .counter("net.faults.injected")
                                    .value();

  FleetSimulator fleet(*fx.caller, "http://sched/Sched");
  fleet.provision(2, {"batch"}, 4, 8'000);

  SchedClient client = fx.client();
  JobSpec spec;
  spec.name = "observed";
  spec.partition = "batch";
  spec.command = "sim:duration=2000,exit=0";
  std::string id = client.submit(spec)[0];

  client.schedule_pass();        // PENDING -> RUNNING
  fx.clock.advance(2000);
  fleet.tick();
  client.schedule_pass();        // RUNNING -> COMPLETED

  ASSERT_TRUE(fx.wsn_consumer.wait_for(2, 1000));
  ASSERT_TRUE(fx.wse_consumer.wait_for(2, 1000));

  // Each stack saw the full life of the same job, in order, including the
  // terminal transition.
  struct Seen {
    std::vector<std::pair<std::string, std::string>> transitions;
  };
  auto digest = [&](const wsn::NotificationConsumer& consumer, bool expect_raw) {
    Seen seen;
    for (const wsn::ReceivedNotification& n : consumer.received()) {
      EXPECT_EQ(n.raw, expect_raw);
      if (!expect_raw) EXPECT_EQ(n.topic, kJobTopic);
      if (!n.payload) {
        ADD_FAILURE() << "notification with no payload";
        continue;
      }
      EXPECT_EQ(n.payload->attr("id"), std::optional<std::string>(id));
      seen.transitions.push_back({n.payload->attr("from").value_or(""),
                                  n.payload->attr("to").value_or("")});
    }
    return seen;
  };
  // wse raw events arrive unwrapped; wsn arrives Notify-wrapped with topic.
  Seen via_wsn = digest(fx.wsn_consumer, false);
  Seen via_wse = digest(fx.wse_consumer, true);
  std::vector<std::pair<std::string, std::string>> expected = {
      {"PENDING", "RUNNING"}, {"RUNNING", "COMPLETED"}};
  EXPECT_EQ(via_wsn.transitions, expected);
  EXPECT_EQ(via_wse.transitions, expected);

  // The faults really fired (the routes were not silently clean).
  EXPECT_GT(telemetry::MetricsRegistry::global()
                .counter("net.faults.injected")
                .value(),
            faults_before);
}

}  // namespace
}  // namespace gs::sched
