// Tests for WS-Transfer: the four CRUD operations, server naming,
// out-of-band resources, best-effort semantics, multi-type services, and
// the schema gap the paper highlights.
#include <gtest/gtest.h>

#include "container/container.hpp"
#include "net/virtual_network.hpp"
#include "wst/client.hpp"
#include "xml/parser.hpp"
#include "xml/schema.hpp"

namespace gs::wst {
namespace {

const char* kNs = "urn:app";
xml::QName app(const char* local) { return {kNs, local}; }

struct Fixture {
  net::VirtualNetwork net;
  xmldb::XmlDatabase db{std::make_unique<xmldb::MemoryBackend>(), {}};
  container::Container container{{}};
  std::unique_ptr<TransferService> service;
  std::unique_ptr<net::VirtualCaller> caller;

  explicit Fixture(TransferService::Hooks hooks = {}) {
    service = std::make_unique<TransferService>("Things", db, "things",
                                                "http://h/Things",
                                                std::move(hooks));
    container.deploy("/Things", *service);
    net.bind("h", container);
    caller = std::make_unique<net::VirtualCaller>(net, net::VirtualCaller::Options{});
  }

  TransferProxy factory() {
    return TransferProxy(*caller, soap::EndpointReference("http://h/Things"));
  }
  TransferProxy at(const soap::EndpointReference& epr) {
    return TransferProxy(*caller, epr);
  }

  static std::unique_ptr<xml::Element> thing(const std::string& value) {
    auto doc = std::make_unique<xml::Element>(app("Thing"));
    doc->append_element(app("value")).set_text(value);
    return doc;
  }
};

// --- Create --------------------------------------------------------------------

TEST(Create, ReturnsEprWithGuidId) {
  Fixture fx;
  auto result = fx.factory().create(Fixture::thing("1"));
  EXPECT_EQ(result.resource.address(), "http://h/Things");
  auto id = result.resource.reference_property(transfer_id_qname());
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(id->size(), 36u);  // default naming: GUID
}

TEST(Create, StoresRepresentationUnmodified) {
  Fixture fx;
  auto result = fx.factory().create(Fixture::thing("42"));
  // No Representation echoed back — the input was stored as-is.
  EXPECT_EQ(result.representation, nullptr);
  auto doc = fx.at(result.resource).get();
  EXPECT_TRUE(xml::Element::deep_equal(*doc, *Fixture::thing("42")));
}

TEST(Create, EchoesRepresentationWhenServiceModifiesIt) {
  TransferService::Hooks hooks;
  hooks.on_create = [](const xml::Element& representation,
                       container::RequestContext&) {
    auto modified = representation.clone_element();
    modified->append_element(app("stamp")).set_text("server-added");
    return std::make_pair(std::string("fixed-id"), std::move(modified));
  };
  Fixture fx(std::move(hooks));
  auto result = fx.factory().create(Fixture::thing("1"));
  ASSERT_TRUE(result.representation);
  EXPECT_EQ(result.representation->child(app("stamp"))->text(), "server-added");
  EXPECT_EQ(*result.resource.reference_property(transfer_id_qname()), "fixed-id");
}

TEST(Create, EachCreateMintsDistinctResource) {
  Fixture fx;
  auto a = fx.factory().create(Fixture::thing("1")).resource;
  auto b = fx.factory().create(Fixture::thing("2")).resource;
  EXPECT_NE(*a.reference_property(transfer_id_qname()),
            *b.reference_property(transfer_id_qname()));
  EXPECT_EQ(fx.at(a).get()->child(app("value"))->text(), "1");
  EXPECT_EQ(fx.at(b).get()->child(app("value"))->text(), "2");
}

// --- Get ------------------------------------------------------------------------

TEST(Get, ReturnsSnapshotOfRepresentation) {
  Fixture fx;
  auto epr = fx.factory().create(Fixture::thing("5")).resource;
  auto snapshot = fx.at(epr).get();
  // Mutating the snapshot does not touch the stored resource.
  snapshot->child(app("value"))->set_text("999");
  EXPECT_EQ(fx.at(epr).get()->child(app("value"))->text(), "5");
}

TEST(Get, UnknownResourceFaults) {
  Fixture fx;
  soap::EndpointReference epr("http://h/Things");
  epr.add_reference_property(transfer_id_qname(), "no-such-id");
  EXPECT_THROW(fx.at(epr).get(), soap::SoapFault);
}

TEST(Get, MissingIdHeaderFaults) {
  Fixture fx;
  EXPECT_THROW(fx.factory().get(), soap::SoapFault);
}

TEST(Get, WorksOnOutOfBandResources) {
  // "There is a possibility that a resource is created by an out of band
  // mechanism. It can still be identified by EPR in Get(), Set(), and
  // Delete()." — seed the database directly, no Create issued.
  Fixture fx;
  fx.db.store("things", "seeded-id", *Fixture::thing("77"));
  soap::EndpointReference epr("http://h/Things");
  epr.add_reference_property(transfer_id_qname(), "seeded-id");
  EXPECT_EQ(fx.at(epr).get()->child(app("value"))->text(), "77");
}

// --- Put ------------------------------------------------------------------------

TEST(Put, ReplacesRepresentationWholesale) {
  Fixture fx;
  auto epr = fx.factory().create(Fixture::thing("1")).resource;
  auto replacement = std::make_unique<xml::Element>(app("Thing"));
  replacement->append_element(app("value")).set_text("2");
  replacement->append_element(app("extra")).set_text("new-field");
  fx.at(epr).put(std::move(replacement));
  auto doc = fx.at(epr).get();
  EXPECT_EQ(doc->child(app("value"))->text(), "2");
  EXPECT_NE(doc->child(app("extra")), nullptr);
}

TEST(Put, NeedNotMatchGetSchema) {
  // "Put updated a resource by providing a replacement representation.
  // This is not required to be the same XML representation as in the Get;
  // in this case, the semantics ... are defined by the resource."
  TransferService::Hooks hooks;
  hooks.on_put = [](const std::string& id, const xml::Element& replacement,
                    container::RequestContext& ctx) -> std::unique_ptr<xml::Element> {
    (void)id;
    (void)ctx;
    // Accepts a different document type: <Increment by="N"/>.
    EXPECT_EQ(replacement.name(), app("Increment"));
    return nullptr;
  };
  Fixture fx(std::move(hooks));
  auto epr = fx.factory().create(Fixture::thing("1")).resource;
  auto increment = std::make_unique<xml::Element>(app("Increment"));
  increment->set_attr("by", "5");
  EXPECT_NO_THROW(fx.at(epr).put(std::move(increment)));
}

TEST(Put, UnknownResourceFaultsByDefault) {
  Fixture fx;
  soap::EndpointReference epr("http://h/Things");
  epr.add_reference_property(transfer_id_qname(), "nope");
  EXPECT_THROW(fx.at(epr).put(Fixture::thing("1")), soap::SoapFault);
}

TEST(Put, OutOfBandResourceIsUpdatable) {
  Fixture fx;
  fx.db.store("things", "seeded", *Fixture::thing("1"));
  soap::EndpointReference epr("http://h/Things");
  epr.add_reference_property(transfer_id_qname(), "seeded");
  fx.at(epr).put(Fixture::thing("2"));
  EXPECT_EQ(fx.at(epr).get()->child(app("value"))->text(), "2");
}

// --- Delete ---------------------------------------------------------------------

TEST(Delete, InvalidatesRepresentation) {
  Fixture fx;
  auto epr = fx.factory().create(Fixture::thing("1")).resource;
  fx.at(epr).remove();
  EXPECT_THROW(fx.at(epr).get(), soap::SoapFault);
  EXPECT_THROW(fx.at(epr).remove(), soap::SoapFault);
}

TEST(Delete, BestEffortResurrection) {
  // "the server ... may bring back a resource that was deleted" — with the
  // out-of-band path, a deleted id can come back; clients must tolerate it.
  Fixture fx;
  auto epr = fx.factory().create(Fixture::thing("1")).resource;
  std::string id = *epr.reference_property(transfer_id_qname());
  fx.at(epr).remove();
  fx.db.store("things", id, *Fixture::thing("resurrected"));
  EXPECT_EQ(fx.at(epr).get()->child(app("value"))->text(), "resurrected");
}

// --- multi-type services -----------------------------------------------------------

TEST(MultiType, OneServiceServesMultipleResourceTypes) {
  // WS-Transfer is "potentially allowing multiple types of resources to be
  // associated with a single service" — dispatch on id structure, exactly
  // like the unified Grid-in-a-Box allocation service.
  TransferService::Hooks hooks;
  hooks.on_get = [](const std::string& id, container::RequestContext&)
      -> std::unique_ptr<xml::Element> {
    if (id.starts_with("site:")) {
      auto doc = std::make_unique<xml::Element>(app("Site"));
      doc->set_text(id.substr(5));
      return doc;
    }
    if (id.starts_with("res:")) {
      auto doc = std::make_unique<xml::Element>(app("Reservation"));
      doc->set_text(id.substr(4));
      return doc;
    }
    return nullptr;
  };
  Fixture fx(std::move(hooks));

  soap::EndpointReference site("http://h/Things");
  site.add_reference_property(transfer_id_qname(), "site:node1");
  EXPECT_EQ(fx.at(site).get()->name(), app("Site"));

  soap::EndpointReference res("http://h/Things");
  res.add_reference_property(transfer_id_qname(), "res:node1");
  EXPECT_EQ(fx.at(res).get()->name(), app("Reservation"));
}

TEST(MultiType, EprContentIsClientVisible) {
  // The resource "name" leaks structure to clients — the opposite of the
  // WSRF GUID convention. Clients can (and in Grid-in-a-Box must)
  // construct ids by service-specific rules.
  Fixture fx;
  fx.db.store("things", "users/alice/files/data.txt", *Fixture::thing("f"));
  soap::EndpointReference epr("http://h/Things");
  epr.add_reference_property(transfer_id_qname(), "users/alice/files/data.txt");
  EXPECT_NO_THROW(fx.at(epr).get());
}

// --- the schema gap ------------------------------------------------------------------

TEST(SchemaGap, ClientWithWrongHardcodedSchemaBreaksSilently) {
  // WS-Transfer carries no input/output schema (<xsd:any> only). A client
  // whose hard-coded expectations drift from the service contract gets no
  // wire-level error: Create succeeds and Get hands back a document the
  // client cannot interpret. Only validation against the out-of-band
  // schema detects the drift.
  Fixture fx;
  // Service contract (out of band): <Thing><value>int</value></Thing>.
  xml::ElementDecl decl(app("Thing"));
  decl.child(xml::ElementDecl(app("value"), xml::ContentType::kInteger));
  xml::Schema contract(std::move(decl));

  // A drifted client uploads <Thing><val>..</val></Thing> — wrong element.
  auto wrong = std::make_unique<xml::Element>(app("Thing"));
  wrong->append_element(app("val")).set_text("1");
  auto result = fx.factory().create(std::move(wrong));  // no error!

  auto doc = fx.at(result.resource).get();
  EXPECT_FALSE(contract.validate(*doc).valid());  // only the schema notices
}

TEST(SchemaGap, WellFormedDocumentsPassTheContract) {
  Fixture fx;
  xml::ElementDecl decl(app("Thing"));
  decl.child(xml::ElementDecl(app("value"), xml::ContentType::kInteger));
  xml::Schema contract(std::move(decl));
  auto result = fx.factory().create(Fixture::thing("3"));
  EXPECT_TRUE(contract.validate(*fx.at(result.resource).get()).valid());
}

// --- resource vs representation -------------------------------------------------------

TEST(ResourceVsRepresentation, RepresentationOutlivesActiveResource) {
  // "The representation of the resource may remain even when the resource
  // (e.g., process) does not exist anymore." Model an active resource via
  // hooks: the representation stays after the entity dies.
  bool process_alive = true;
  TransferService::Hooks hooks;
  hooks.on_get = [&process_alive](const std::string&, container::RequestContext&)
      -> std::unique_ptr<xml::Element> {
    auto doc = std::make_unique<xml::Element>(app("Process"));
    doc->append_element(app("state"))
        .set_text(process_alive ? "running" : "dead");
    return doc;
  };
  Fixture fx(std::move(hooks));
  soap::EndpointReference epr("http://h/Things");
  epr.add_reference_property(transfer_id_qname(), "pid-1");
  EXPECT_EQ(fx.at(epr).get()->child(app("state"))->text(), "running");
  process_alive = false;  // the process exits...
  // ...but Get on the EPR still answers with a representation.
  EXPECT_EQ(fx.at(epr).get()->child(app("state"))->text(), "dead");
}

}  // namespace
}  // namespace gs::wst
