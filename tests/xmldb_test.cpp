// Tests for the Xindice-substitute XML database: both backends, the
// write-through cache, and XPath queries over collections.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "xml/parser.hpp"
#include "xmldb/database.hpp"
#include "xmldb/log_device.hpp"
#include "xmldb/wal.hpp"

namespace gs::xmldb {
namespace {

std::unique_ptr<xml::Element> doc(const std::string& text) {
  return xml::parse_element(text);
}

// --- backends, parameterized over both implementations ---------------------------

enum class BackendKind { kMemory, kFile, kWal };

class BackendTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    if (GetParam() == BackendKind::kFile) {
      root_ = std::filesystem::temp_directory_path() /
              ("gs-xmldb-test-" + std::to_string(::getpid()) + "-" +
               ::testing::UnitTest::GetInstance()->current_test_info()->name());
      std::filesystem::remove_all(root_);
      backend_ = std::make_unique<FileBackend>(root_);
    } else if (GetParam() == BackendKind::kWal) {
      backend_ = std::make_unique<WalBackend>(
          std::make_shared<MemoryLogDevice>(),
          std::make_shared<MemoryLogDevice>());
    } else {
      backend_ = std::make_unique<MemoryBackend>();
    }
  }
  void TearDown() override {
    backend_.reset();
    if (!root_.empty()) std::filesystem::remove_all(root_);
  }

  std::unique_ptr<Backend> backend_;
  std::filesystem::path root_;
};

INSTANTIATE_TEST_SUITE_P(All, BackendTest,
                         ::testing::Values(BackendKind::kMemory,
                                           BackendKind::kFile,
                                           BackendKind::kWal),
                         [](const auto& info) {
                           switch (info.param) {
                             case BackendKind::kMemory: return "Memory";
                             case BackendKind::kFile: return "File";
                             default: return "Wal";
                           }
                         });

TEST_P(BackendTest, PutGetRoundTrip) {
  backend_->put("col", "id1", "<a>1</a>");
  EXPECT_EQ(backend_->get("col", "id1"), "<a>1</a>");
  EXPECT_FALSE(backend_->get("col", "missing").has_value());
  EXPECT_FALSE(backend_->get("other", "id1").has_value());
}

TEST_P(BackendTest, PutReplaces) {
  backend_->put("col", "id1", "<a>1</a>");
  backend_->put("col", "id1", "<a>2</a>");
  EXPECT_EQ(backend_->get("col", "id1"), "<a>2</a>");
}

TEST_P(BackendTest, Remove) {
  backend_->put("col", "id1", "<a/>");
  EXPECT_TRUE(backend_->remove("col", "id1"));
  EXPECT_FALSE(backend_->remove("col", "id1"));
  EXPECT_FALSE(backend_->contains("col", "id1"));
}

TEST_P(BackendTest, ListIsSortedPerCollection) {
  backend_->put("col", "b", "<x/>");
  backend_->put("col", "a", "<x/>");
  backend_->put("col2", "z", "<x/>");
  std::vector<std::string> expected = {"a", "b"};
  EXPECT_EQ(backend_->list("col"), expected);
  EXPECT_EQ(backend_->list("empty").size(), 0u);
}

TEST_P(BackendTest, AwkwardIdsSurvive) {
  // Grid-in-a-Box ids contain DNs and slashes: "CN=alice,O=VO/input.dat".
  std::string id = "CN=alice,O=VO/input dat & more";
  backend_->put("col", id, "<f/>");
  EXPECT_EQ(backend_->get("col", id), "<f/>");
  EXPECT_EQ(backend_->list("col"), std::vector<std::string>{id});
  EXPECT_TRUE(backend_->remove("col", id));
}

TEST(FileBackend, PersistsAcrossInstances) {
  auto root = std::filesystem::temp_directory_path() / "gs-xmldb-persist";
  std::filesystem::remove_all(root);
  {
    FileBackend backend(root);
    backend.put("col", "id", "<a>persisted</a>");
  }
  {
    FileBackend backend(root);
    EXPECT_EQ(backend.get("col", "id"), "<a>persisted</a>");
  }
  std::filesystem::remove_all(root);
}

// --- database ---------------------------------------------------------------------

TEST(XmlDatabase, StoreLoadRoundTripsTree) {
  XmlDatabase db(std::make_unique<MemoryBackend>());
  db.store("c", "1", *doc("<r a=\"1\"><c>x</c></r>"));
  auto loaded = db.load("c", "1");
  ASSERT_TRUE(loaded);
  EXPECT_TRUE(xml::Element::deep_equal(*loaded, *doc("<r a=\"1\"><c>x</c></r>")));
}

TEST(XmlDatabase, LoadMissingReturnsNull) {
  XmlDatabase db(std::make_unique<MemoryBackend>());
  EXPECT_EQ(db.load("c", "nope"), nullptr);
}

TEST(XmlDatabase, CacheServesLoadsWithoutBackendReads) {
  XmlDatabase db(std::make_unique<MemoryBackend>(), {.write_through_cache = true});
  db.store("c", "1", *doc("<r/>"));
  (void)db.load("c", "1");
  (void)db.load("c", "1");
  DbStats stats = db.stats();
  EXPECT_EQ(stats.loads, 2u);
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_EQ(stats.backend_reads, 0u);
}

TEST(XmlDatabase, NoCacheAlwaysReadsBackend) {
  XmlDatabase db(std::make_unique<MemoryBackend>(), {.write_through_cache = false});
  db.store("c", "1", *doc("<r/>"));
  (void)db.load("c", "1");
  (void)db.load("c", "1");
  DbStats stats = db.stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.backend_reads, 2u);
}

TEST(XmlDatabase, CacheReturnsIndependentCopies) {
  XmlDatabase db(std::make_unique<MemoryBackend>(), {.write_through_cache = true});
  db.store("c", "1", *doc("<r>v1</r>"));
  auto first = db.load("c", "1");
  first->set_text("mutated");
  auto second = db.load("c", "1");
  EXPECT_EQ(second->text(), "v1");
}

TEST(XmlDatabase, RemoveEvictsCache) {
  XmlDatabase db(std::make_unique<MemoryBackend>(), {.write_through_cache = true});
  db.store("c", "1", *doc("<r/>"));
  EXPECT_TRUE(db.remove("c", "1"));
  EXPECT_EQ(db.load("c", "1"), nullptr);
  EXPECT_FALSE(db.contains("c", "1"));
}

TEST(XmlDatabase, StoreUpdatesCachedVersion) {
  XmlDatabase db(std::make_unique<MemoryBackend>(), {.write_through_cache = true});
  db.store("c", "1", *doc("<r>v1</r>"));
  (void)db.load("c", "1");
  db.store("c", "1", *doc("<r>v2</r>"));
  EXPECT_EQ(db.load("c", "1")->text(), "v2");
}

TEST(XmlDatabase, QuerySelectsMatchingDocuments) {
  XmlDatabase db(std::make_unique<MemoryBackend>());
  db.store("jobs", "1", *doc("<Job><Status>running</Status></Job>"));
  db.store("jobs", "2", *doc("<Job><Status>exited</Status></Job>"));
  db.store("jobs", "3", *doc("<Job><Status>running</Status></Job>"));
  auto expr = xml::XPathExpr::compile("/Job[Status='running']");
  auto matches = db.query("jobs", expr);
  EXPECT_EQ(matches.size(), 2u);
  for (const auto& m : matches) {
    EXPECT_NE(m.id, "2");
    ASSERT_TRUE(m.document);
  }
}

TEST(XmlDatabase, QueryWithBooleanExpression) {
  XmlDatabase db(std::make_unique<MemoryBackend>());
  db.store("c", "small", *doc("<v>3</v>"));
  db.store("c", "big", *doc("<v>30</v>"));
  auto expr = xml::XPathExpr::compile("number(/v) > 10");
  auto matches = db.query("c", expr);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].id, "big");
}

TEST(XmlDatabase, QueryAcrossEmptyCollection) {
  XmlDatabase db(std::make_unique<MemoryBackend>());
  auto expr = xml::XPathExpr::compile("anything");
  EXPECT_TRUE(db.query("nothing", expr).empty());
}

TEST(XmlDatabase, StatsCountOperations) {
  XmlDatabase db(std::make_unique<MemoryBackend>());
  db.store("c", "1", *doc("<r/>"));
  (void)db.load("c", "1");
  db.remove("c", "1");
  (void)db.query("c", xml::XPathExpr::compile("r"));
  DbStats stats = db.stats();
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(stats.loads, 1u);
  EXPECT_EQ(stats.removes, 1u);
  EXPECT_EQ(stats.queries, 1u);
  db.reset_stats();
  EXPECT_EQ(db.stats().stores, 0u);
}

TEST(XmlDatabase, IdsDelegatesToBackend) {
  XmlDatabase db(std::make_unique<MemoryBackend>());
  db.store("c", "b", *doc("<r/>"));
  db.store("c", "a", *doc("<r/>"));
  std::vector<std::string> expected = {"a", "b"};
  EXPECT_EQ(db.ids("c"), expected);
}

// --- cache coherence under concurrency --------------------------------------------

// Regression test for a load-vs-remove race: load() used to re-fill the
// cache after its (unlocked) backend read with no ordering against a
// concurrent remove() or store(), so a removed document could resurrect
// in the cache and a stale octet string could shadow a newer store.
// Mutations now bump an epoch and loads decline to fill when it moved.
// The schedule is only reliably explored under TSan (scripts/tier1.sh
// SANITIZE=tsan runs this suite), but the final coherence sweep below is
// a real assertion in every mode.
TEST(XmlDatabaseConcurrency, LoadStoreRemoveQueryHammer) {
  XmlDatabase db(std::make_unique<WalBackend>(
      std::make_shared<MemoryLogDevice>(), std::make_shared<MemoryLogDevice>()));
  constexpr int kKeys = 4;
  constexpr int kIters = 300;
  auto key = [](int k) { return "doc-" + std::to_string(k); };

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      while (!go.load()) {}
      for (int i = 0; i < kIters; ++i) {
        int k = (i + w) % kKeys;
        if (i % 3 == 2) {
          db.remove("c", key(k));
        } else {
          db.store("c", key(k), *doc("<r v=\"" + std::to_string(i) + "\"/>"));
        }
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      while (!go.load()) {}
      for (int i = 0; i < kIters; ++i) {
        int k = (i + r) % kKeys;
        // A loaded document, if present, must be a well-formed <r>: a torn
        // cache fill would surface here as a wrong or unparsable root.
        if (auto loaded = db.load("c", key(k))) {
          EXPECT_EQ(loaded->name().local(), "r");
        }
        (void)db.contains("c", key(k));
        (void)db.load_octets("c", key(k));
      }
    });
  }
  threads.emplace_back([&] {
    while (!go.load()) {}
    auto expr = xml::XPathExpr::compile("r");
    for (int i = 0; i < kIters / 4; ++i) (void)db.query("c", expr);
  });
  go.store(true);
  for (auto& t : threads) t.join();

  // Coherence sweep: after removing a key, the cache must not serve it.
  // Before the epoch guard a late load-side fill could leave a ghost
  // entry that this load would return.
  for (int k = 0; k < kKeys; ++k) {
    db.remove("c", key(k));
    EXPECT_EQ(db.load("c", key(k)), nullptr) << key(k);
    EXPECT_EQ(db.load_octets("c", key(k)), nullptr) << key(k);
    EXPECT_FALSE(db.contains("c", key(k))) << key(k);
  }
}

}  // namespace
}  // namespace gs::xmldb
