// Crash-safety tests for the durable state layer: the WAL engine's
// group-commit/recovery contract ("after a crash at any byte offset,
// exactly the acknowledged writes are visible"), snapshot compaction,
// DurableStore schema headers, and the container recovery phase that
// rehydrates WSRF resources, WSN/WSE subscriptions and scheduler state
// after a simulated kill -9. Crashes are injected through
// MemoryLogDevice's seeded kill points; "reboot" means constructing a
// fresh engine over what the crash left durable.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "counter/wsrf_counter.hpp"
#include "counter/wst_counter.hpp"
#include "sched/durable.hpp"
#include "sched/scheduler.hpp"
#include "wsn/consumer.hpp"
#include "wsrf/resource.hpp"
#include "wst/service.hpp"
#include "xmldb/database.hpp"
#include "xmldb/durable_store.hpp"
#include "xmldb/log_device.hpp"
#include "xmldb/wal.hpp"

namespace gs {
namespace {

using xmldb::LogDeviceError;
using xmldb::MemoryLogDevice;
using xmldb::WalBackend;
using xmldb::WalOptions;

// The persistent medium: one log device + one snapshot device. The
// devices outlive any WalBackend, exactly like a disk outlives a
// process; after_crash() is the next boot's view of them.
struct Medium {
  std::shared_ptr<MemoryLogDevice> log = std::make_shared<MemoryLogDevice>();
  std::shared_ptr<MemoryLogDevice> snap = std::make_shared<MemoryLogDevice>();

  Medium() = default;
  Medium(std::string log_bytes, std::string snap_bytes)
      : log(std::make_shared<MemoryLogDevice>(std::move(log_bytes))),
        snap(std::make_shared<MemoryLogDevice>(std::move(snap_bytes))) {}

  /// What a machine that lost power sees on the next boot: the durable
  /// bytes, on healthy devices.
  Medium after_crash() const { return Medium(log->contents(), snap->contents()); }

  std::unique_ptr<WalBackend> open(WalOptions options = {}) const {
    return std::make_unique<WalBackend>(log, snap, options);
  }
};

// --- the WAL engine itself ---------------------------------------------------------

TEST(Wal, AckedWritesSurviveCrash) {
  Medium medium;
  {
    auto wal = medium.open();
    wal->put("c", "a", "<a/>");
    wal->put("c", "b", "<b/>");
    wal->put("other", "a", "<x/>");
    EXPECT_TRUE(wal->remove("c", "b"));
    medium.log->crash_now();  // power off; nothing depends on the dtor
  }
  auto wal = medium.after_crash().open();
  EXPECT_EQ(wal->get("c", "a"), "<a/>");
  EXPECT_FALSE(wal->get("c", "b").has_value());
  EXPECT_EQ(wal->get("other", "a"), "<x/>");
  EXPECT_EQ(wal->stats().recovered_records, 4u);  // 3 puts + 1 remove
  EXPECT_EQ(wal->stats().corrupt_records, 0u);
}

TEST(Wal, GroupCommitCoalescesConcurrentWriters) {
  Medium medium;
  auto wal = medium.open();
  wal->pause_commits();
  std::vector<std::thread> writers;
  for (int i = 0; i < 8; ++i) {
    writers.emplace_back([&, i] {
      wal->put("c", "id" + std::to_string(i), "<v/>");
    });
  }
  // Writers block on their durability ack while commits are paused; wait
  // for all of them to reach the queue, then release them as one batch.
  while (wal->pending() < 8) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  wal->resume_commits();
  for (auto& w : writers) w.join();

  xmldb::WalStats st = wal->stats();
  EXPECT_EQ(st.records, 8u);
  EXPECT_EQ(st.batches, 1u);  // all eight drained as one group commit
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(wal->contains("c", "id" + std::to_string(i)));
  }
}

TEST(Wal, UnackedWriteInvisibleAfterTornAppend) {
  Medium medium;
  auto wal = medium.open();
  wal->put("c", "acked", "<a/>");
  // The next append dies mid-write: a few bytes of the record reach the
  // medium (a torn write), the rest never will. The writer gets an
  // exception — this write was never acknowledged.
  medium.log->crash_at_bytes(medium.log->size() + 4, 3);
  EXPECT_THROW(wal->put("c", "unacked", "<b/>"), LogDeviceError);

  auto wal2 = medium.after_crash().open();
  EXPECT_EQ(wal2->get("c", "acked"), "<a/>");
  EXPECT_FALSE(wal2->get("c", "unacked").has_value());
  // A torn tail is the normal crash artifact, not corruption.
  EXPECT_EQ(wal2->stats().corrupt_records, 0u);
}

TEST(Wal, UnackedWriteInvisibleAfterPartialFsync) {
  Medium medium;
  auto wal = medium.open();
  wal->put("c", "acked", "<a/>");
  // The next fsync makes only half the batch durable, then the device
  // dies — the commit marker can't be complete, so recovery must discard
  // the in-flight batch wholesale.
  medium.log->crash_at_sync(1, 0.5);
  EXPECT_THROW(wal->put("c", "unacked", "<b/>"), LogDeviceError);

  auto wal2 = medium.after_crash().open();
  EXPECT_EQ(wal2->get("c", "acked"), "<a/>");
  EXPECT_FALSE(wal2->get("c", "unacked").has_value());
}

TEST(Wal, DeviceFailureFailsEveryLaterWrite) {
  Medium medium;
  auto wal = medium.open();
  wal->put("c", "a", "<a/>");
  medium.log->crash_now();
  EXPECT_THROW(wal->put("c", "b", "<b/>"), LogDeviceError);
  // Fail-fast from here on: the engine refuses writes it could never ack.
  EXPECT_THROW(wal->put("c", "c", "<c/>"), LogDeviceError);
  // Reads still work — the table is intact, only durability is gone.
  EXPECT_EQ(wal->get("c", "a"), "<a/>");
}

TEST(Wal, MidLogCorruptionSkipsRecordAndKeepsLaterBatches) {
  Medium medium;
  {
    auto wal = medium.open();
    wal->put("c", "a", "<a/>");
    wal->put("c", "b", "<b/>");
    wal->put("c", "c", "<c/>");
  }
  // Bit rot: flip the op byte of the first record (payload starts after
  // the 8-byte [len][crc] header), failing its CRC. Its batch must be
  // dropped — applying a subset of a group commit is worse than losing
  // it — but the later committed batches must still be applied.
  std::string log = medium.log->contents();
  ASSERT_GT(log.size(), 8u);
  log[8] = static_cast<char>(log[8] ^ 0x40);
  Medium rotted(std::move(log), medium.snap->contents());

  auto wal = rotted.open();
  EXPECT_FALSE(wal->get("c", "a").has_value());
  EXPECT_EQ(wal->get("c", "b"), "<b/>");
  EXPECT_EQ(wal->get("c", "c"), "<c/>");
  // The flipped record counts as corruption, not as a discarded tail.
  EXPECT_GE(wal->stats().corrupt_records, 1u);
}

TEST(Wal, RemoveOfAbsentIdWritesNothing) {
  Medium medium;
  auto wal = medium.open();
  EXPECT_FALSE(wal->remove("c", "never-stored"));
  EXPECT_EQ(medium.log->size(), 0u);
  EXPECT_EQ(wal->stats().records, 0u);
}

TEST(Wal, PipelinedWritesAreDurableAfterDrain) {
  Medium medium;
  {
    auto wal = medium.open();
    for (int i = 0; i < 100; ++i) {
      wal->put_async("c", "id-" + std::to_string(i),
                     "<v>" + std::to_string(i) + "</v>");
    }
    wal->drain();
    // The whole window coalesced: far fewer syncs than records (the point
    // of the pipelined path), but after drain() every one is applied.
    EXPECT_EQ(wal->stats().records, 100u);
    EXPECT_LT(wal->stats().batches, 100u);
    medium.log->crash_now();
  }
  auto wal = medium.after_crash().open();
  EXPECT_EQ(wal->stats().recovered_records, 100u);
  EXPECT_EQ(wal->get("c", "id-99"), "<v>99</v>");
}

TEST(Wal, DrainThrowsWhenDeviceDiesUnderPipelinedWrites) {
  Medium medium;
  auto wal = medium.open();
  wal->put("c", "acked", "<a/>");
  medium.log->crash_now();
  // put_async itself cannot fail (nothing is acknowledged yet); the
  // barrier is where the bad news arrives.
  wal->put_async("c", "lost", "<b/>");
  EXPECT_THROW(wal->drain(), LogDeviceError);
  EXPECT_EQ(wal->get("c", "acked"), "<a/>");
}

TEST(Wal, CompactionTruncatesLogAndPreservesState) {
  Medium medium;
  auto wal = medium.open();
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      wal->put("c", "id" + std::to_string(i),
               "<v round=\"" + std::to_string(round) + "\"/>");
    }
  }
  EXPECT_GT(wal->log_bytes(), 0u);
  wal->compact();
  EXPECT_EQ(wal->log_bytes(), 0u);       // log truncated...
  EXPECT_GT(wal->snapshot_bytes(), 0u);  // ...state moved to the snapshot
  EXPECT_EQ(wal->stats().compactions, 1u);

  // Live reads and post-reboot reads both see the last round only.
  auto wal2 = medium.after_crash().open();
  EXPECT_EQ(wal2->list("c").size(), 20u);
  EXPECT_EQ(wal2->get("c", "id7"), "<v round=\"4\"/>");
}

TEST(Wal, CrashBetweenSnapshotInstallAndLogTruncateIsIdempotent) {
  Medium medium;
  auto wal = medium.open();
  wal->put("c", "a", "<a/>");
  wal->put("c", "b", "<b/>");
  std::string old_log = medium.log->contents();
  wal->compact();
  // Simulated worst case: power dies after the snapshot was installed
  // but before the log was truncated — the next boot replays the ENTIRE
  // old log over the new snapshot. Replay is idempotent, so the state
  // must come out identical, not doubled or failed.
  Medium torn_boot(std::move(old_log), medium.snap->contents());
  auto wal2 = torn_boot.open();
  EXPECT_EQ(wal2->get("c", "a"), "<a/>");
  EXPECT_EQ(wal2->get("c", "b"), "<b/>");
  EXPECT_EQ(wal2->list("c").size(), 2u);
}

TEST(Wal, ThresholdTriggersCompactionAutomatically) {
  Medium medium;
  auto wal = medium.open(WalOptions{.compact_threshold_bytes = 2048});
  std::string blob(100, 'x');
  for (int i = 0; i < 60; ++i) {
    wal->put("c", "id" + std::to_string(i % 10), "<v>" + blob + "</v>");
  }
  // Compaction runs on the commit thread after the triggering batch.
  for (int waited = 0; wal->stats().compactions == 0 && waited < 200; ++waited) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(wal->stats().compactions, 1u);
  EXPECT_EQ(wal->list("c").size(), 10u);
  EXPECT_EQ(wal->get("c", "id3"), "<v>" + blob + "</v>");
}

// --- the DurableStore facade -------------------------------------------------------

TEST(DurableStoreTest, RecordsAndValidatesCollectionHeaders) {
  Medium medium;
  {
    xmldb::XmlDatabase db(medium.open());
    xmldb::DurableStore store(db);
    EXPECT_EQ(store.open_collection("jobs", "sched.job", 1), 0u);  // new
  }
  Medium boot = medium.after_crash();
  xmldb::XmlDatabase db(boot.open());
  xmldb::DurableStore store(db);
  // Matching reopen sees the recorded version.
  EXPECT_EQ(store.open_collection("jobs", "sched.job", 1), 1u);
  // A different layer claiming the same collection fails loudly, before
  // any document is parsed.
  EXPECT_THROW(store.open_collection("jobs", "wse.subscription", 1),
               std::runtime_error);
  // Code older than the medium must not run against it.
  xmldb::DurableStore store2(db);
  store2.open_collection("newer", "x", 3);
  EXPECT_THROW(store2.open_collection("newer", "x", 2), std::runtime_error);
}

TEST(DurableStoreTest, VersionDriftRunsMigrationHook) {
  Medium medium;
  xmldb::XmlDatabase db(medium.open());
  {
    xmldb::DurableStore store(db);
    store.open_collection("jobs", "sched.job", 1);
    db.store("jobs", "j1", *xml::parse_element("<job v=\"old\"/>"));
  }
  xmldb::DurableStore store(db);
  // Without a migrator the drift is refused...
  EXPECT_THROW(store.open_collection("jobs", "sched.job", 2),
               std::runtime_error);
  // ...with one, the hook rewrites documents and the header moves on.
  bool migrated = false;
  EXPECT_EQ(store.open_collection(
                "jobs", "sched.job", 2,
                [&](xmldb::XmlDatabase& mdb, const std::string& coll,
                    std::uint32_t found) {
                  EXPECT_EQ(found, 1u);
                  auto doc = mdb.load(coll, "j1");
                  doc->set_attr(xml::QName("v"), "new");
                  mdb.store(coll, "j1", *doc);
                  migrated = true;
                  return true;
                }),
            1u);
  EXPECT_TRUE(migrated);
  bool found_header = false;
  for (const auto& h : store.headers()) {
    if (h.collection == "jobs") {
      EXPECT_EQ(h.version, 2u);
      found_header = true;
    }
  }
  EXPECT_TRUE(found_header);
}

// --- container recovery: the restarted deployments ---------------------------------

// Kill a WSRF counter deployment mid-life, reboot over the surviving
// medium, and read the SAME recovered state through both stacks: the
// WSRF GetResourceProperty path and the WS-Transfer Get path. The WSN
// subscription made before the crash must keep delivering afterwards.
TEST(Durability, CounterStateSurvivesRestartOnBothStacks) {
  net::VirtualNetwork net{net::NetworkProfile::colocated()};
  auto caller = std::make_unique<net::VirtualCaller>(net, net::VirtualCaller::Options{});
  auto sink = std::make_unique<net::VirtualCaller>(
      net, net::VirtualCaller::Options{.keep_alive = false});
  wsn::NotificationConsumer consumer;
  net.bind("client.example", consumer);

  Medium medium;
  soap::EndpointReference epr;
  {
    counter::WsrfCounterDeployment before(counter::WsrfCounterDeployment::Params{
        .backend = medium.open(),
        .container = {},
        .notification_sink = sink.get(),
        .address_base = "http://wsrf.example",
    });
    net.bind("wsrf.example", before.container());
    counter::WsrfCounterClient client(*caller, before.counter_address());
    epr = client.create();
    client.set(41);
    client.subscribe(soap::EndpointReference("http://client.example/sink"));
    client.set(42);  // delivery works before the crash
    ASSERT_TRUE(consumer.wait_for(1, 2000));
    medium.log->crash_now();  // kill -9
  }

  // Reboot: same medium, fresh deployment, explicit recovery phase.
  Medium boot = medium.after_crash();
  counter::WsrfCounterDeployment after(counter::WsrfCounterDeployment::Params{
      .backend = boot.open(),
      .container = {},
      .notification_sink = sink.get(),
      .address_base = "http://wsrf.example",
  });
  net.bind("wsrf.example", after.container());
  EXPECT_GE(after.recover(), 2u);  // counter home + subscriptions hooks ran

  counter::WsrfCounterClient client(*caller, after.counter_address());
  client.attach(epr);
  EXPECT_EQ(client.get(), 42);          // WSRF GetResourceProperty
  EXPECT_EQ(client.double_value(), 84);  // the computed property too

  // The recovered subscription still delivers — a restarted producer that
  // believed it had zero subscribers would silently stop notifying.
  client.set(43);
  EXPECT_TRUE(consumer.wait_for(2, 2000));

  // Same medium served through the OTHER stack: WS-Transfer Get must
  // return the document WSRF recovered — the two views never diverge.
  Medium wst_boot = medium.after_crash();
  counter::WstCounterDeployment wst(counter::WstCounterDeployment::Params{
      .backend = wst_boot.open(),
      .container = {},
      .notification_sink = sink.get(),
      .address_base = "http://wst.example",
      .subscription_file = {},
  });
  net.bind("wst.example", wst.container());
  auto id = epr.reference_property(wsrf::resource_id_qname());
  ASSERT_TRUE(id.has_value());
  soap::EndpointReference wst_epr(wst.counter_address());
  wst_epr.add_reference_property(wst::transfer_id_qname(), *id);
  counter::WstCounterClient wst_client(*caller, wst.counter_address(),
                                       wst.source_address());
  wst_client.attach(wst_epr);
  EXPECT_EQ(wst_client.get(), 42);  // WS-Transfer Get, same recovered state
}

// WS-Eventing subscriptions kept as per-entry documents in the database
// (subscriptions_in_db) survive the crash and deliver after recovery.
TEST(Durability, WseSubscriptionsSurviveRestart) {
  net::VirtualNetwork net{net::NetworkProfile::colocated()};
  auto caller = std::make_unique<net::VirtualCaller>(net, net::VirtualCaller::Options{});
  auto sink = std::make_unique<net::VirtualCaller>(
      net, net::VirtualCaller::Options{
               .transport = net::TransportKind::kSoapTcp});
  wsn::NotificationConsumer consumer;
  net.bind("client.example", consumer);

  Medium medium;
  soap::EndpointReference epr;
  {
    counter::WstCounterDeployment before(counter::WstCounterDeployment::Params{
        .backend = medium.open(),
        .container = {},
        .notification_sink = sink.get(),
        .address_base = "http://wst.example",
        .subscription_file = {},
        .subscriptions_in_db = true,
    });
    net.bind("wst.example", before.container());
    counter::WstCounterClient client(*caller, before.counter_address(),
                                     before.source_address());
    epr = client.create();
    client.subscribe(soap::EndpointReference("http://client.example/sink"));
    EXPECT_EQ(before.subscription_store().size(), 1u);
    medium.log->crash_now();
  }

  Medium boot = medium.after_crash();
  counter::WstCounterDeployment after(counter::WstCounterDeployment::Params{
      .backend = boot.open(),
      .container = {},
      .notification_sink = sink.get(),
      .address_base = "http://wst.example",
      .subscription_file = {},
      .subscriptions_in_db = true,
  });
  net.bind("wst.example", after.container());
  after.recover();
  EXPECT_EQ(after.subscription_store().size(), 1u);

  counter::WstCounterClient client(*caller, after.counter_address(),
                                   after.source_address());
  client.attach(epr);
  client.set(7);
  EXPECT_TRUE(consumer.wait_for(1, 2000));
}

// Scheduler state: a RUNNING job is requeued as PENDING with reason
// "container_restart" (its node allocation died with the machine), a
// pending job stays pending, partitions and nodes come back, and the
// restored scheduler can place work again.
TEST(Durability, SchedulerStateSurvivesRestart) {
  common::ManualClock clock{1000};
  Medium medium;
  std::string running_id, pending_id;
  {
    xmldb::XmlDatabase db(medium.open());
    xmldb::DurableStore store(db);
    app::JobRunner runner{clock};
    sched::NodeRegistry nodes;
    telemetry::MetricsRegistry registry;
    sched::Scheduler sched({.clock = &clock,
                            .runner = &runner,
                            .nodes = &nodes,
                            .metrics = &registry});
    sched::DurableSchedStore dstore(store, sched);
    dstore.attach();

    sched::Partition batch{.name = "batch"};
    sched.add_partition(batch);
    dstore.save_partition(batch);
    nodes.upsert("n0", {"batch"}, 2, 1024, clock.now());
    dstore.save_node(*nodes.info("n0"));

    sched::JobSpec spec;
    spec.partition = "batch";
    spec.command = "sim:duration=60000";
    spec.cpus = 2;
    running_id = sched.submit(spec).at(0);
    sched.schedule_pass();
    ASSERT_EQ(sched.info(running_id)->state, sched::JobState::kRunning);
    pending_id = sched.submit(spec).at(0);  // node full: stays pending
    ASSERT_EQ(sched.info(pending_id)->state, sched::JobState::kPending);
    medium.log->crash_now();
  }

  Medium boot = medium.after_crash();
  xmldb::XmlDatabase db(boot.open());
  xmldb::DurableStore store(db);
  app::JobRunner runner{clock};
  sched::NodeRegistry nodes;
  telemetry::MetricsRegistry registry;
  sched::Scheduler sched({.clock = &clock,
                          .runner = &runner,
                          .nodes = &nodes,
                          .metrics = &registry});
  sched::DurableSchedStore dstore(store, sched);
  sched::RestoreSummary summary = dstore.restore();
  dstore.attach();
  EXPECT_EQ(summary.partitions, 1u);
  EXPECT_EQ(summary.nodes, 1u);
  EXPECT_EQ(summary.jobs, 2u);

  // The job that was RUNNING when the container died is pending again,
  // its placement cleared, with the restart recorded as the reason.
  auto restored = sched.info(running_id);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->state, sched::JobState::kPending);
  EXPECT_EQ(restored->reason, "container_restart");
  EXPECT_TRUE(restored->node.empty());
  EXPECT_EQ(sched.info(pending_id)->state, sched::JobState::kPending);

  // And the restored controller schedules: the requeued job lands on the
  // restored node.
  nodes.heartbeat("n0", clock.now());
  sched::Scheduler::PassResult pass = sched.schedule_pass();
  EXPECT_GE(pass.placed, 1u);
  EXPECT_EQ(sched.info(running_id)->state, sched::JobState::kRunning);

  // New submissions don't collide with restored ids.
  sched::JobSpec spec;
  spec.partition = "batch";
  spec.command = "sim:duration=10";
  std::string fresh = sched.submit(spec).at(0);
  EXPECT_NE(fresh, running_id);
  EXPECT_NE(fresh, pending_id);
}

}  // namespace
}  // namespace gs
