// Cross-stack integration tests: the paper's qualitative findings (§2.3,
// §4.1.3, §4.2.3, §5) exercised end to end, including fully-secured
// deployments where every message is X.509-signed and every outcall
// authenticated.
#include <gtest/gtest.h>

#include <filesystem>

#include "counter/wsrf_counter.hpp"
#include "counter/wst_counter.hpp"
#include "gridbox/clients.hpp"
#include "net/tcp.hpp"
#include "wsn/consumer.hpp"

namespace gs {
namespace {

// One PKI for everything, built once (keygen is the slow part).
struct Pki {
  std::mt19937_64 rng{424242};
  security::CertificateAuthority ca =
      security::CertificateAuthority::create("CN=GridCA,O=VO", 512, rng);
  security::Credential vo_host = issue("CN=vo-host,O=VO");
  security::Credential node_host = issue("CN=node1-host,O=VO");
  security::Credential admin = issue("CN=admin,O=VO");
  security::Credential alice = issue("CN=alice,O=VO");

  security::Credential issue(const std::string& dn) {
    return ca.issue(dn, 512, rng, 0,
                    std::numeric_limits<common::TimeMs>::max());
  }

  static Pki& instance() {
    static Pki pki;
    return pki;
  }
};

container::ProxySecurity security_for(const security::Credential& cred) {
  return {&cred, &Pki::instance().ca.root(), &common::RealClock::instance()};
}

// ---------------------------------------------------------------------------
// Fully-signed counter deployments (the Figure 4 configuration)
// ---------------------------------------------------------------------------

TEST(SecuredCounter, WsrfEndToEndWithX509) {
  Pki& pki = Pki::instance();
  net::VirtualNetwork net;
  net::VirtualCaller caller(net, {});
  net::VirtualCaller sink(net, {.keep_alive = false});

  counter::WsrfCounterDeployment dep({
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .write_through_cache = true,
      .container = {.security = container::SecurityMode::kX509,
                    .anchor = &pki.ca.root(),
                    .credential = &pki.vo_host},
      .notification_sink = &sink,
      .address_base = "http://vo.example",
  });
  net.bind("vo.example", dep.container());

  counter::WsrfCounterClient client(caller, dep.counter_address(),
                                    security_for(pki.alice));
  client.create();
  client.set(7);
  EXPECT_EQ(client.get(), 7);
  client.destroy();

  // Unsigned clients are rejected outright (the signed fault surfaces as a
  // SoapFault at the anonymous proxy, which cannot verify signatures).
  counter::WsrfCounterClient anonymous(caller, dep.counter_address());
  EXPECT_THROW(anonymous.create(), soap::SoapFault);
}

TEST(SecuredCounter, WstEndToEndWithX509) {
  Pki& pki = Pki::instance();
  net::VirtualNetwork net;
  net::VirtualCaller caller(net, {});
  net::VirtualCaller sink(net, {.transport = net::TransportKind::kSoapTcp});

  counter::WstCounterDeployment dep({
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .container = {.security = container::SecurityMode::kX509,
                    .anchor = &pki.ca.root(),
                    .credential = &pki.vo_host},
      .notification_sink = &sink,
      .address_base = "http://vo.example",
      .subscription_file = {},
  });
  net.bind("vo.example", dep.container());

  counter::WstCounterClient client(caller, dep.counter_address(),
                                   dep.source_address(),
                                   security_for(pki.alice));
  client.create();
  client.set(9);
  EXPECT_EQ(client.get(), 9);
  client.remove();
}

TEST(SecuredCounter, HttpsTransportCarriesBothStacks) {
  // The Figure 3 configuration: no message signing, TLS-lite transport.
  Pki& pki = Pki::instance();
  net::VirtualNetwork net;
  net::VirtualCaller caller(net, {.transport = net::TransportKind::kHttps,
                                  .anchor = &pki.ca.root()});
  net::VirtualCaller sink(net, {.keep_alive = false});

  counter::WsrfCounterDeployment dep({
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .container = {.credential = &pki.vo_host},  // TLS identity only
      .notification_sink = &sink,
      .address_base = "https://vo.example",
  });
  net.bind("vo.example", dep.container());

  counter::WsrfCounterClient client(caller, dep.counter_address());
  client.create();
  client.set(3);
  EXPECT_EQ(client.get(), 3);
}

// ---------------------------------------------------------------------------
// Fully-signed Grid-in-a-Box (the Figure 6 configuration)
// ---------------------------------------------------------------------------

TEST(SecuredGrid, WsrfWorkflowAllMessagesSigned) {
  Pki& pki = Pki::instance();
  common::ManualClock clock(1'000'000);
  net::VirtualNetwork net;
  net::VirtualCaller caller(net, {});
  net::VirtualCaller outcalls(net, {});
  net::VirtualCaller sink(net, {.keep_alive = false});

  container::ContainerConfig central_cc{container::SecurityMode::kX509,
                                        &pki.ca.root(), &pki.vo_host, &clock};
  container::ContainerConfig node_cc{container::SecurityMode::kX509,
                                     &pki.ca.root(), &pki.node_host, &clock};

  gridbox::WsrfGridDeployment grid({
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .central_container = central_cc,
      .outcall_caller = &outcalls,
      .outcall_security = security_for(pki.node_host),
      .notification_sink = &sink,
      .central_base = "http://vo.example",
      .reservation_ttl_ms = 4LL * 3600 * 1000,
      .admin_dn = "CN=admin,O=VO",
  });
  auto file_root = std::filesystem::temp_directory_path() / "gs-int-wsrf";
  std::filesystem::remove_all(file_root);
  grid.add_host({.host = "node1",
                 .base = "http://node1.example",
                 .backend = std::make_unique<xmldb::MemoryBackend>(),
                 .container = node_cc,
                 .file_root = file_root});
  net.bind("vo.example", grid.central_container());
  net.bind("node1.example", grid.host_container("node1"));
  wsn::NotificationConsumer consumer;
  net.bind("user.example", consumer);

  gridbox::WsrfAdminClient admin(caller, grid,
                                 {"CN=admin,O=VO", security_for(pki.admin)});
  admin.add_account("CN=alice,O=VO", {gridbox::kPrivilegeSubmit});
  admin.register_site({"node1", grid.exec_address("node1"),
                       grid.data_address("node1"), {"blast"}});

  gridbox::WsrfUserClient alice(caller, grid,
                                {"CN=alice,O=VO", security_for(pki.alice)});
  auto sites = alice.get_available_resources("blast");
  ASSERT_EQ(sites.size(), 1u);
  auto reservation = alice.make_reservation("node1");
  auto directory = alice.create_directory(sites[0].data_address);
  alice.upload(directory, "in.dat", "payload");
  auto job = alice.start_job(sites[0].exec_address, "sim:duration=100,exit=0",
                             reservation, directory);
  EXPECT_EQ(alice.job_status(job), "running");
  clock.advance(200);
  grid.job_runner("node1").poll();
  EXPECT_EQ(alice.job_status(job), "exited");

  // Identity spoofing is dead: the OnBehalfOf header is overridden by the
  // signature, so mallory signing as herself cannot act as alice.
  security::Credential mallory_cred = pki.issue("CN=mallory,O=Evil");
  gridbox::WsrfUserClient spoof(caller, grid,
                                {"CN=alice,O=VO", security_for(mallory_cred)});
  EXPECT_THROW(spoof.get_available_resources("blast"), soap::SoapFault);
}

// ---------------------------------------------------------------------------
// The paper's §5 switching question, exercised literally
// ---------------------------------------------------------------------------

TEST(Switching, WsrfClientCannotDriveCorrespondingWstService) {
  // "an existing WSRF-speaking client cannot simply be aimed at the
  // 'corresponding' WS-Transfer-based services."
  net::VirtualNetwork net;
  net::VirtualCaller caller(net, {});
  net::VirtualCaller sink(net, {.transport = net::TransportKind::kSoapTcp});
  counter::WstCounterDeployment wst_dep({
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .container = {},
      .notification_sink = &sink,
      .address_base = "http://wst.example",
      .subscription_file = {},
  });
  net.bind("wst.example", wst_dep.container());

  // A WSRF client aimed at the WS-Transfer counter: the action URIs do not
  // exist there.
  counter::WsrfCounterClient wsrf_client(caller, wst_dep.counter_address());
  EXPECT_THROW(wsrf_client.create(), soap::SoapFault);
}

TEST(Switching, BothStacksShareTheWireInfrastructure) {
  // "since both stacks are WS-I+ compliant, it should be possible to build
  // client proxies with commercial tools right now" — both speak
  // SOAP + WS-Addressing over the same container and transports; one
  // generic proxy layer drives both.
  net::VirtualNetwork net;
  net::VirtualCaller caller(net, {});
  net::VirtualCaller sink(net, {.keep_alive = false});
  net::VirtualCaller tcp_sink(net, {.transport = net::TransportKind::kSoapTcp});

  counter::WsrfCounterDeployment wsrf_dep({
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .container = {},
      .notification_sink = &sink,
      .address_base = "http://a.example",
  });
  counter::WstCounterDeployment wst_dep({
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .container = {},
      .notification_sink = &tcp_sink,
      .address_base = "http://b.example",
      .subscription_file = {},
  });
  net.bind("a.example", wsrf_dep.container());
  net.bind("b.example", wst_dep.container());

  // The same caller object (same wire machinery) drives both stacks.
  counter::WsrfCounterClient wsrf_client(caller, wsrf_dep.counter_address());
  counter::WstCounterClient wst_client(caller, wst_dep.counter_address(),
                                       wst_dep.source_address());
  wsrf_client.create();
  wst_client.create();
  wsrf_client.set(1);
  wst_client.set(1);
  EXPECT_EQ(wsrf_client.get(), wst_client.get());
}

TEST(Switching, BothEprsNeedCorrectHeaderContent) {
  // "Both suffer from the need to add the correct WS-Addressing header
  // content": strip the reference properties and either stack faults.
  net::VirtualNetwork net;
  net::VirtualCaller caller(net, {});
  net::VirtualCaller sink(net, {.keep_alive = false});
  counter::WsrfCounterDeployment dep({
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .container = {},
      .notification_sink = &sink,
      .address_base = "http://a.example",
  });
  net.bind("a.example", dep.container());
  counter::WsrfCounterClient client(caller, dep.counter_address());
  client.create();
  // Re-attach with a bare EPR (no ResourceID header).
  client.attach(soap::EndpointReference(dep.counter_address()));
  EXPECT_THROW(client.get(), soap::SoapFault);
}

// ---------------------------------------------------------------------------
// Real sockets: the whole stack over localhost TCP
// ---------------------------------------------------------------------------

// An ephemeral-port server must exist before the deployment can know its
// own base URL; this forwarder breaks the cycle.
class ForwardingEndpoint final : public net::Endpoint {
 public:
  net::Endpoint* target = nullptr;
  net::HttpResponse handle(const net::HttpRequest& request) override {
    return target->handle(request);
  }
};

TEST(RealSockets, WsrfCounterOverLocalhost) {
  net::VirtualNetwork unused_net;
  net::VirtualCaller sink(unused_net, {.keep_alive = false});
  ForwardingEndpoint forward;
  net::HttpServer server(forward, 0, 2);
  std::string base = server.base_url();
  counter::WsrfCounterDeployment dep({
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .container = {},
      .notification_sink = &sink,
      .address_base = base,
  });
  forward.target = &dep.container();

  net::TcpSoapCaller caller;
  counter::WsrfCounterClient client(caller, base + "/Counter");
  client.create();
  client.set(123);
  EXPECT_EQ(client.get(), 123);
  EXPECT_EQ(client.double_value(), 246);
  client.destroy();
  server.stop();
}

TEST(RealSockets, WstCounterOverLocalhost) {
  net::VirtualNetwork unused_net;
  net::VirtualCaller sink(unused_net, {.transport = net::TransportKind::kSoapTcp});
  ForwardingEndpoint forward;
  net::HttpServer server(forward, 0, 2);
  counter::WstCounterDeployment dep({
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .container = {},
      .notification_sink = &sink,
      .address_base = server.base_url(),
      .subscription_file = {},
  });
  forward.target = &dep.container();
  net::TcpSoapCaller caller;
  counter::WstCounterClient client(caller, server.base_url() + "/Counter",
                                   server.base_url() + "/CounterEvents");
  client.create();
  client.set(5);
  EXPECT_EQ(client.get(), 5);
  client.remove();
  server.stop();
}

}  // namespace
}  // namespace gs
