// Tests for the extension surfaces: WS-MetadataExchange (the paper's
// suggested fix for WS-Transfer's schema gap), WSN GetCurrentMessage, and
// the real-process JobRunner mode.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "gridbox/clients.hpp"
#include "net/virtual_network.hpp"
#include "wsn/client.hpp"
#include "wsn/consumer.hpp"
#include "wsn/producer.hpp"
#include "wst/client.hpp"
#include "wst/metadata.hpp"
#include "xml/parser.hpp"

namespace gs {
namespace {

const char* kNs = "urn:app";
xml::QName app(const char* local) { return {kNs, local}; }

// ---------------------------------------------------------------------------
// WS-MetadataExchange
// ---------------------------------------------------------------------------

struct MexFixture {
  net::VirtualNetwork net;
  xmldb::XmlDatabase db{std::make_unique<xmldb::MemoryBackend>(), {}};
  container::Container container{{}};
  wst::TransferService service{"Things", db, "things", "http://h/Things"};
  wst::MetadataExtension mex{service};
  std::unique_ptr<net::VirtualCaller> caller;

  MexFixture() {
    xml::ElementDecl thing(app("Thing"));
    thing.child(xml::ElementDecl(app("value"), xml::ContentType::kInteger));
    mex.declare("Thing", std::move(thing));
    container.deploy("/Things", service);
    net.bind("h", container);
    caller = std::make_unique<net::VirtualCaller>(net, net::VirtualCaller::Options{});
  }

  wst::MetadataProxy proxy() {
    return wst::MetadataProxy(*caller, soap::EndpointReference("http://h/Things"));
  }
};

TEST(MetadataExchange, SchemaRoundTripsTheWire) {
  MexFixture fx;
  auto schemas = fx.proxy().get_metadata();
  ASSERT_EQ(schemas.size(), 1u);
  ASSERT_TRUE(schemas.contains("Thing"));
  const xml::Schema& schema = schemas.at("Thing");
  EXPECT_EQ(schema.root().name(), app("Thing"));
  ASSERT_EQ(schema.root().children().size(), 1u);
  EXPECT_EQ(schema.root().children()[0].decl->content(),
            xml::ContentType::kInteger);
}

TEST(MetadataExchange, FetchedSchemaValidatesDocuments) {
  MexFixture fx;
  xml::Schema schema = fx.proxy().get_schema("Thing");

  auto good = xml::parse_element("<Thing xmlns=\"urn:app\"><value>3</value></Thing>");
  EXPECT_TRUE(schema.validate(*good).valid());
  auto bad = xml::parse_element("<Thing xmlns=\"urn:app\"><val>3</val></Thing>");
  EXPECT_FALSE(schema.validate(*bad).valid());
}

TEST(MetadataExchange, ClosesTheSchemaGap) {
  // The wst_test SchemaGap scenario, repaired: a client that discovers the
  // schema via mex catches its drift BEFORE uploading, instead of storing
  // garbage the typed reader chokes on later.
  MexFixture fx;
  xml::Schema contract = fx.proxy().get_schema("Thing");

  auto drifted = std::make_unique<xml::Element>(app("Thing"));
  drifted->append_element(app("val")).set_text("1");  // wrong element name
  ASSERT_FALSE(contract.validate(*drifted).valid());  // caught client-side

  // A conforming document passes and the upload proceeds.
  auto ok = std::make_unique<xml::Element>(app("Thing"));
  ok->append_element(app("value")).set_text("1");
  ASSERT_TRUE(contract.validate(*ok).valid());
  wst::TransferProxy factory(*fx.caller,
                             soap::EndpointReference("http://h/Things"));
  EXPECT_NO_THROW(factory.create(std::move(ok)));
}

TEST(MetadataExchange, UnknownTypeFaults) {
  MexFixture fx;
  auto proxy = fx.proxy();
  EXPECT_THROW(proxy.get_schema("Nope"), soap::SoapFault);
}

TEST(MetadataExchange, MultipleTypesAdvertisedTogether) {
  MexFixture fx;
  xml::ElementDecl site(app("Site"));
  site.require_attr(xml::QName("host"));
  site.open_content();
  fx.mex.declare("Site", std::move(site));

  auto schemas = fx.proxy().get_metadata();
  EXPECT_EQ(schemas.size(), 2u);
  // Occurrence bounds and flags survive the wire.
  EXPECT_TRUE(schemas.at("Site").root().is_open());
  EXPECT_EQ(schemas.at("Site").root().required_attrs().size(), 1u);
}

TEST(MetadataExchange, UnboundedOccursSurvivesWire) {
  MexFixture fx;
  xml::ElementDecl list(app("List"));
  list.child_unbounded(xml::ElementDecl(app("item"), xml::ContentType::kString));
  fx.mex.declare("List", std::move(list));
  xml::Schema schema = fx.proxy().get_schema("List");
  auto many = xml::parse_element(
      "<List xmlns=\"urn:app\"><item>a</item><item>b</item><item>c</item></List>");
  EXPECT_TRUE(schema.validate(*many).valid());
  auto none = xml::parse_element("<List xmlns=\"urn:app\"/>");
  EXPECT_TRUE(schema.validate(*none).valid());  // minOccurs 0
}

// ---------------------------------------------------------------------------
// WSN GetCurrentMessage
// ---------------------------------------------------------------------------

struct CurrentMessageFixture {
  common::ManualClock clock{0};
  net::VirtualNetwork net;
  xmldb::XmlDatabase db{std::make_unique<xmldb::MemoryBackend>(), {}};
  container::Container container{{.clock = &clock}};
  wsrf::ResourceHome sub_home{db, "subs", &container.lifetime()};
  std::unique_ptr<wsn::SubscriptionManagerService> manager;
  std::unique_ptr<container::Service> source;
  std::unique_ptr<net::VirtualCaller> caller;
  std::unique_ptr<wsn::NotificationProducer> producer;

  CurrentMessageFixture() {
    manager = std::make_unique<wsn::SubscriptionManagerService>(
        sub_home, "http://p/Subs");
    source = std::make_unique<container::Service>("Source");
    caller = std::make_unique<net::VirtualCaller>(net, net::VirtualCaller::Options{});
    wsn::TopicNamespace topics;
    topics.add("job/done");
    producer = std::make_unique<wsn::NotificationProducer>(
        wsn::NotificationProducer::Config{caller.get(), "http://p/Source",
                                          manager.get(), &clock},
        std::move(topics));
    producer->register_into(*source);
    container.deploy("/Source", *source);
    net.bind("p", container);
  }

  wsn::NotificationProducerProxy proxy() {
    return wsn::NotificationProducerProxy(
        *caller, soap::EndpointReference("http://p/Source"));
  }
};

TEST(GetCurrentMessage, ReturnsLastPublishedMessage) {
  CurrentMessageFixture fx;
  xml::Element first(app("Event"));
  first.append_element(app("seq")).set_text("1");
  xml::Element second(app("Event"));
  second.append_element(app("seq")).set_text("2");
  fx.producer->notify("job/done", first);
  fx.producer->notify("job/done", second);

  auto current = fx.proxy().get_current_message("job/done");
  ASSERT_TRUE(current);
  EXPECT_EQ(current->child(app("seq"))->text(), "2");
}

TEST(GetCurrentMessage, FaultsBeforeAnyPublish) {
  CurrentMessageFixture fx;
  auto proxy = fx.proxy();
  EXPECT_THROW(proxy.get_current_message("job/done"), soap::SoapFault);
}

TEST(GetCurrentMessage, FaultsOnUnsupportedTopic) {
  CurrentMessageFixture fx;
  auto proxy = fx.proxy();
  EXPECT_THROW(proxy.get_current_message("not/a/topic"), soap::SoapFault);
}

TEST(GetCurrentMessage, PublishWithZeroSubscribersStillRecorded) {
  // Late joiners can catch up even though delivery fanned out to nobody.
  CurrentMessageFixture fx;
  xml::Element ev(app("Event"));
  ev.append_element(app("seq")).set_text("7");
  EXPECT_EQ(fx.producer->notify("job/done", ev), 0u);
  auto current = fx.proxy().get_current_message("job/done");
  ASSERT_TRUE(current);
  EXPECT_EQ(current->child(app("seq"))->text(), "7");
}

// ---------------------------------------------------------------------------
// Real-process jobs
// ---------------------------------------------------------------------------

TEST(RealJobs, RunsARealProcessToCompletion) {
  common::ManualClock clock(0);
  gridbox::JobRunner runner(clock);
  std::string pid = runner.spawn("exec:exit 0", "");
  // Wait for the child (bounded).
  for (int i = 0; i < 200; ++i) {
    auto status = runner.status(pid);
    ASSERT_TRUE(status.has_value());
    if (status->state != gridbox::JobRunner::State::kRunning) break;
    ::usleep(10'000);
  }
  auto status = runner.status(pid);
  EXPECT_EQ(status->state, gridbox::JobRunner::State::kExited);
  EXPECT_EQ(status->exit_code, 0);
}

TEST(RealJobs, PropagatesExitCode) {
  common::ManualClock clock(0);
  gridbox::JobRunner runner(clock);
  std::string pid = runner.spawn("exec:exit 17", "");
  for (int i = 0; i < 200; ++i) {
    if (runner.status(pid)->state != gridbox::JobRunner::State::kRunning) break;
    ::usleep(10'000);
  }
  EXPECT_EQ(runner.status(pid)->exit_code, 17);
}

TEST(RealJobs, RunsInWorkingDirectory) {
  common::ManualClock clock(0);
  auto dir = std::filesystem::temp_directory_path() / "gs-realjob";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  gridbox::JobRunner runner(clock);
  std::string pid = runner.spawn("exec:echo computed-output > result.txt", dir);
  for (int i = 0; i < 200; ++i) {
    if (runner.status(pid)->state != gridbox::JobRunner::State::kRunning) break;
    ::usleep(10'000);
  }
  EXPECT_EQ(runner.status(pid)->exit_code, 0);
  std::ifstream in(dir / "result.txt");
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "computed-output");
  std::filesystem::remove_all(dir);
}

TEST(RealJobs, KillTerminatesRealProcess) {
  common::ManualClock clock(0);
  gridbox::JobRunner runner(clock);
  std::string pid = runner.spawn("exec:sleep 30", "");
  EXPECT_EQ(runner.status(pid)->state, gridbox::JobRunner::State::kRunning);
  EXPECT_TRUE(runner.kill(pid));
  EXPECT_EQ(runner.status(pid)->state, gridbox::JobRunner::State::kKilled);
  EXPECT_EQ(runner.running_count(), 0u);
}

TEST(RealJobs, ExitCallbackFiresOnPoll) {
  common::ManualClock clock(0);
  gridbox::JobRunner runner(clock);
  std::string completed_pid;
  std::string pid = runner.spawn(
      "exec:exit 3", "",
      [&](const std::string& p, const gridbox::JobRunner::Status& status) {
        completed_pid = p;
        EXPECT_EQ(status.exit_code, 3);
      });
  for (int i = 0; i < 200 && completed_pid.empty(); ++i) {
    runner.poll();
    ::usleep(10'000);
  }
  EXPECT_EQ(completed_pid, pid);
}

TEST(RealJobs, EndToEndThroughTheExecService) {
  // A real shell job through the full WSRF Grid-in-a-Box path: the job
  // reads the staged input and writes an output file, which the client
  // downloads afterwards — the complete Figure-5 loop with a real process.
  common::ManualClock clock(1'000'000);
  net::VirtualNetwork net;
  net::VirtualCaller caller(net, {});
  net::VirtualCaller outcalls(net, {});
  net::VirtualCaller sink(net, {.keep_alive = false});
  container::ContainerConfig cc;
  cc.clock = &clock;
  gridbox::WsrfGridDeployment grid({
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .central_container = cc,
      .outcall_caller = &outcalls,
      .outcall_security = {},
      .notification_sink = &sink,
      .central_base = "http://vo.example",
      .reservation_ttl_ms = 4LL * 3600 * 1000,
      .admin_dn = "CN=admin,O=VO",
  });
  auto scratch = std::filesystem::temp_directory_path() / "gs-realjob-grid";
  std::filesystem::remove_all(scratch);
  grid.add_host({.host = "node1",
                 .base = "http://node1.example",
                 .backend = std::make_unique<xmldb::MemoryBackend>(),
                 .container = cc,
                 .file_root = scratch});
  net.bind("vo.example", grid.central_container());
  net.bind("node1.example", grid.host_container("node1"));

  net::VirtualCaller admin_caller(net, {});
  gridbox::WsrfAdminClient admin(admin_caller, grid, {"CN=admin,O=VO", {}});
  admin.add_account("CN=alice,O=VO", {gridbox::kPrivilegeSubmit});
  admin.register_site({"node1", grid.exec_address("node1"),
                       grid.data_address("node1"), {"wordcount"}});

  gridbox::WsrfUserClient alice(caller, grid, {"CN=alice,O=VO", {}});
  auto reservation = alice.make_reservation("node1");
  auto directory = alice.create_directory(grid.data_address("node1"));
  alice.upload(directory, "input.txt", "alpha beta gamma\n");
  auto job = alice.start_job(grid.exec_address("node1"),
                             "exec:wc -w < input.txt > output.txt", reservation,
                             directory);
  for (int i = 0; i < 300 && alice.job_status(job) == "running"; ++i) {
    ::usleep(10'000);
  }
  EXPECT_EQ(alice.job_status(job), "exited");
  EXPECT_EQ(alice.job_exit_code(job), 0);
  std::string output = alice.download(directory, "output.txt");
  EXPECT_NE(output.find("3"), std::string::npos);
  std::filesystem::remove_all(scratch);
}

}  // namespace
}  // namespace gs
