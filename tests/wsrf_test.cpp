// Tests for the WSRF stack: resource model, the four spec port types,
// base faults, and service groups.
#include <gtest/gtest.h>

#include "container/container.hpp"
#include "net/virtual_network.hpp"
#include "wsrf/base_faults.hpp"
#include "wsrf/client.hpp"
#include "wsrf/service_group.hpp"
#include "xml/parser.hpp"

namespace gs::wsrf {
namespace {

const char* kNs = "urn:app";
xml::QName app(const char* local) { return {kNs, local}; }

// A service whose resources are <Thing><value>N</value></Thing>, with a
// computed Squared property — the standard fixture for the port types.
struct Fixture {
  common::ManualClock clock{1000};
  net::VirtualNetwork net;
  xmldb::XmlDatabase db{std::make_unique<xmldb::MemoryBackend>(),
                        {.write_through_cache = true}};
  container::Container container{{.clock = &clock}};
  ResourceHome home{db, "things", &container.lifetime()};
  std::unique_ptr<WsrfService> service;
  std::unique_ptr<net::VirtualCaller> caller;

  Fixture() {
    PropertySet props;
    props.declare_stored(app("value"));
    props.declare_computed(app("Squared"), [](const xml::Element& state) {
      std::vector<std::unique_ptr<xml::Element>> out;
      int v = 0;
      if (const xml::Element* value = state.child(app("value"))) {
        v = std::stoi(value->text());
      }
      auto el = std::make_unique<xml::Element>(app("Squared"));
      el->set_text(std::to_string(v * v));
      out.push_back(std::move(el));
      return out;
    });
    props.declare_stored(app("tag"));
    service = std::make_unique<WsrfService>("Thing", home, std::move(props),
                                            "http://h/Thing");
    service->import_resource_properties();
    service->import_query_resource_properties();
    service->import_query_resources();
    service->import_resource_lifetime();
    container.deploy("/Thing", *service);
    net.bind("h", container);
    caller = std::make_unique<net::VirtualCaller>(net, net::VirtualCaller::Options{});
  }

  soap::EndpointReference create_thing(int value,
                                       common::TimeMs termination =
                                           container::LifetimeManager::kNever) {
    auto state = std::make_unique<xml::Element>(app("Thing"));
    state->append_element(app("value")).set_text(std::to_string(value));
    return service->create_resource(std::move(state), termination);
  }

  WsResourceProxy proxy_for(const soap::EndpointReference& epr) {
    return WsResourceProxy(*caller, epr);
  }
};

// --- resource home ------------------------------------------------------------

TEST(ResourceHome, CreateAssignsGuidIds) {
  Fixture fx;
  soap::EndpointReference a = fx.create_thing(1);
  soap::EndpointReference b = fx.create_thing(2);
  auto id_a = a.reference_property(resource_id_qname());
  auto id_b = b.reference_property(resource_id_qname());
  ASSERT_TRUE(id_a && id_b);
  EXPECT_NE(*id_a, *id_b);
  EXPECT_EQ(id_a->size(), 36u);  // GUID: service-minted, opaque
}

TEST(ResourceHome, LoadUnknownThrowsResourceUnknownFault) {
  Fixture fx;
  try {
    (void)fx.home.load("no-such-id");
    FAIL() << "expected fault";
  } catch (const soap::SoapFault& f) {
    EXPECT_TRUE(is_base_fault(f, FaultType::kResourceUnknown));
  }
}

TEST(ResourceHome, DestroyHooksFire) {
  Fixture fx;
  std::vector<std::string> destroyed;
  fx.home.on_destroyed([&](const std::string& id) { destroyed.push_back(id); });
  soap::EndpointReference epr = fx.create_thing(1);
  std::string id = *epr.reference_property(resource_id_qname());
  EXPECT_TRUE(fx.home.destroy(id));
  ASSERT_EQ(destroyed.size(), 1u);
  EXPECT_EQ(destroyed[0], id);
}

// --- GetResourceProperty ---------------------------------------------------------

TEST(ResourceProperties, GetStoredProperty) {
  Fixture fx;
  auto proxy = fx.proxy_for(fx.create_thing(7));
  EXPECT_EQ(proxy.get_property_text(app("value")), "7");
}

TEST(ResourceProperties, GetComputedProperty) {
  Fixture fx;
  auto proxy = fx.proxy_for(fx.create_thing(9));
  EXPECT_EQ(proxy.get_property_text(app("Squared")), "81");
}

TEST(ResourceProperties, GetUnknownPropertyFaults) {
  Fixture fx;
  auto proxy = fx.proxy_for(fx.create_thing(1));
  try {
    proxy.get_property(app("nope"));
    FAIL() << "expected fault";
  } catch (const soap::SoapFault& f) {
    EXPECT_TRUE(is_base_fault(f, FaultType::kInvalidResourcePropertyQName));
  }
}

TEST(ResourceProperties, RequestWithoutResourceHeaderFaults) {
  Fixture fx;
  (void)fx.create_thing(1);
  // Target the bare service address: no ResourceID reference property.
  auto proxy = fx.proxy_for(soap::EndpointReference("http://h/Thing"));
  try {
    proxy.get_property(app("value"));
    FAIL() << "expected fault";
  } catch (const soap::SoapFault& f) {
    EXPECT_TRUE(is_base_fault(f, FaultType::kResourceUnknown));
  }
}

TEST(ResourceProperties, EachResourceHasIndependentState) {
  Fixture fx;
  auto p1 = fx.proxy_for(fx.create_thing(1));
  auto p2 = fx.proxy_for(fx.create_thing(2));
  p1.update_property_text(app("value"), "100");
  EXPECT_EQ(p1.get_property_text(app("value")), "100");
  EXPECT_EQ(p2.get_property_text(app("value")), "2");
}

TEST(ResourceProperties, GetMultiple) {
  Fixture fx;
  auto proxy = fx.proxy_for(fx.create_thing(4));
  auto values = proxy.get_properties({app("value"), app("Squared")});
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0]->text(), "4");
  EXPECT_EQ(values[1]->text(), "16");
}

TEST(ResourceProperties, GetDocumentProjectsAllProperties) {
  Fixture fx;
  auto proxy = fx.proxy_for(fx.create_thing(3));
  auto doc = proxy.get_property_document();
  ASSERT_TRUE(doc);
  EXPECT_EQ(doc->child(app("value"))->text(), "3");
  EXPECT_EQ(doc->child(app("Squared"))->text(), "9");
}

// --- SetResourceProperties ---------------------------------------------------------

TEST(SetResourceProperties, UpdateReplacesValues) {
  Fixture fx;
  auto proxy = fx.proxy_for(fx.create_thing(5));
  proxy.update_property_text(app("value"), "42");
  EXPECT_EQ(proxy.get_property_text(app("value")), "42");
  EXPECT_EQ(proxy.get_property_text(app("Squared")), "1764");
}

TEST(SetResourceProperties, InsertAppendsValues) {
  Fixture fx;
  auto proxy = fx.proxy_for(fx.create_thing(1));
  auto tag = std::make_unique<xml::Element>(app("tag"));
  tag->set_text("first");
  proxy.insert_property(std::move(tag));
  auto tag2 = std::make_unique<xml::Element>(app("tag"));
  tag2->set_text("second");
  proxy.insert_property(std::move(tag2));
  auto values = proxy.get_property(app("tag"));
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0]->text(), "first");
  EXPECT_EQ(values[1]->text(), "second");
}

TEST(SetResourceProperties, DeleteRemovesAllValues) {
  Fixture fx;
  auto proxy = fx.proxy_for(fx.create_thing(1));
  auto tag = std::make_unique<xml::Element>(app("tag"));
  tag->set_text("x");
  proxy.insert_property(std::move(tag));
  proxy.delete_property(app("tag"));
  EXPECT_TRUE(proxy.get_property(app("tag")).empty());
}

TEST(SetResourceProperties, ComputedPropertyIsReadOnly) {
  Fixture fx;
  auto proxy = fx.proxy_for(fx.create_thing(1));
  try {
    proxy.update_property_text(app("Squared"), "999");
    FAIL() << "expected fault";
  } catch (const soap::SoapFault& f) {
    EXPECT_TRUE(is_base_fault(f, FaultType::kInvalidResourcePropertyQName));
  }
}

TEST(SetResourceProperties, ChangeListenerFires) {
  Fixture fx;
  std::vector<std::string> changed;
  fx.service->on_property_changed(
      [&](const std::string&, const xml::QName& prop) {
        changed.push_back(prop.local());
      });
  auto proxy = fx.proxy_for(fx.create_thing(1));
  proxy.update_property_text(app("value"), "2");
  ASSERT_EQ(changed.size(), 1u);
  EXPECT_EQ(changed[0], "value");
}

TEST(SetResourceProperties, UpdatePersistsAcrossCacheBypass) {
  // The write must reach the backend, not just the cache.
  Fixture fx;
  soap::EndpointReference epr = fx.create_thing(5);
  auto proxy = fx.proxy_for(epr);
  proxy.update_property_text(app("value"), "50");
  std::string id = *epr.reference_property(resource_id_qname());
  auto raw = fx.db.backend().get("things", id);
  ASSERT_TRUE(raw.has_value());
  EXPECT_NE(raw->find("50"), std::string::npos);
}

// --- QueryResourceProperties ---------------------------------------------------------

TEST(QueryResourceProperties, XPathOverPropertyDocument) {
  Fixture fx;
  auto proxy = fx.proxy_for(fx.create_thing(6));
  auto result = proxy.query("/ResourceProperties/value[. = 6]");
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0]->text(), "6");
  EXPECT_TRUE(proxy.query("value[. = 7]").empty());
}

TEST(QueryResourceProperties, QueryCanUseComputedProperties) {
  Fixture fx;
  auto proxy = fx.proxy_for(fx.create_thing(6));
  EXPECT_EQ(proxy.query("Squared[. = 36]").size(), 1u);
}

TEST(QueryResourceProperties, BadDialectFaults) {
  Fixture fx;
  soap::EndpointReference epr = fx.create_thing(1);

  class RawProxy : public container::ProxyBase {
   public:
    using container::ProxyBase::ProxyBase;
    void query_with_dialect(const std::string& dialect) {
      auto req = std::make_unique<xml::Element>(
          xml::QName(soap::ns::kWsrfRp, "QueryResourceProperties"));
      auto& expr = req->append_element(
          xml::QName(soap::ns::kWsrfRp, "QueryExpression"));
      expr.set_attr("Dialect", dialect);
      expr.set_text("value");
      invoke(actions::kQueryResourceProperties, std::move(req));
    }
  };
  RawProxy proxy(*fx.caller, epr);
  try {
    proxy.query_with_dialect("urn:unknown-dialect");
    FAIL() << "expected fault";
  } catch (const soap::SoapFault& f) {
    EXPECT_TRUE(is_base_fault(f, FaultType::kQueryEvaluationError));
  }
}

TEST(QueryResourceProperties, MalformedXPathFaults) {
  Fixture fx;
  auto proxy = fx.proxy_for(fx.create_thing(1));
  try {
    proxy.query("value[");
    FAIL() << "expected fault";
  } catch (const soap::SoapFault& f) {
    EXPECT_TRUE(is_base_fault(f, FaultType::kQueryEvaluationError));
  }
}

// --- QueryResources (multi-resource query extension) ----------------------------------

TEST(QueryResources, SelectsAcrossAllResourcesOfTheService) {
  // "This model of Resources allows WSRF.NET to perform rich queries over
  // that state of multiple resources."
  Fixture fx;
  (void)fx.create_thing(5);
  (void)fx.create_thing(50);
  (void)fx.create_thing(500);
  auto proxy = fx.proxy_for(soap::EndpointReference("http://h/Thing"));
  auto matches = proxy.query_resources("/Thing[number(value) > 10]");
  ASSERT_EQ(matches.size(), 2u);
  for (const auto& match : matches) {
    EXPECT_FALSE(match.epr.empty());
    ASSERT_TRUE(match.state);
    EXPECT_GT(std::stoi(match.state->child(app("value"))->text()), 10);
  }
}

TEST(QueryResources, ReturnedEprsAreLive) {
  Fixture fx;
  (void)fx.create_thing(7);
  auto proxy = fx.proxy_for(soap::EndpointReference("http://h/Thing"));
  auto matches = proxy.query_resources("/Thing[value = 7]");
  ASSERT_EQ(matches.size(), 1u);
  // The EPR from the query addresses a usable WS-Resource.
  auto resource = fx.proxy_for(matches[0].epr);
  EXPECT_EQ(resource.get_property_text(app("value")), "7");
  resource.destroy();
  EXPECT_TRUE(proxy.query_resources("/Thing[value = 7]").empty());
}

TEST(QueryResources, EmptyServiceYieldsNoMatches) {
  Fixture fx;
  auto proxy = fx.proxy_for(soap::EndpointReference("http://h/Thing"));
  EXPECT_TRUE(proxy.query_resources("/Thing").empty());
}

TEST(QueryResources, BadExpressionFaults) {
  Fixture fx;
  auto proxy = fx.proxy_for(soap::EndpointReference("http://h/Thing"));
  try {
    proxy.query_resources("broken[");
    FAIL() << "expected fault";
  } catch (const soap::SoapFault& f) {
    EXPECT_TRUE(is_base_fault(f, FaultType::kQueryEvaluationError));
  }
}

// --- WS-ResourceLifetime --------------------------------------------------------------

TEST(ResourceLifetime, DestroyRemovesResource) {
  Fixture fx;
  auto proxy = fx.proxy_for(fx.create_thing(1));
  proxy.destroy();
  try {
    proxy.get_property(app("value"));
    FAIL() << "expected fault";
  } catch (const soap::SoapFault& f) {
    EXPECT_TRUE(is_base_fault(f, FaultType::kResourceUnknown));
  }
}

TEST(ResourceLifetime, DestroyTwiceFaults) {
  Fixture fx;
  auto proxy = fx.proxy_for(fx.create_thing(1));
  proxy.destroy();
  EXPECT_THROW(proxy.destroy(), soap::SoapFault);
}

TEST(ResourceLifetime, ScheduledTerminationDestroysOnSweep) {
  Fixture fx;
  auto proxy = fx.proxy_for(fx.create_thing(1, /*termination=*/2000));
  EXPECT_EQ(proxy.get_property_text(app("value")), "1");
  fx.clock.set(2001);
  // The next request sweeps the lifetime manager first.
  EXPECT_THROW(proxy.get_property(app("value")), soap::SoapFault);
}

TEST(ResourceLifetime, SetTerminationTimeExtendsLife) {
  Fixture fx;
  auto proxy = fx.proxy_for(fx.create_thing(1, /*termination=*/2000));
  EXPECT_EQ(proxy.set_termination_time(50'000), 50'000);
  fx.clock.set(10'000);
  EXPECT_EQ(proxy.get_property_text(app("value")), "1");  // still alive
  fx.clock.set(50'001);
  EXPECT_THROW(proxy.get_property(app("value")), soap::SoapFault);
}

TEST(ResourceLifetime, InfinityMeansNever) {
  Fixture fx;
  auto proxy = fx.proxy_for(fx.create_thing(1, /*termination=*/2000));
  EXPECT_EQ(proxy.set_termination_time(container::LifetimeManager::kNever),
            container::LifetimeManager::kNever);
  fx.clock.set(std::numeric_limits<common::TimeMs>::max() - 1);
  EXPECT_EQ(proxy.get_property_text(app("value")), "1");
}

// --- WS-BaseFaults ---------------------------------------------------------------------

TEST(BaseFaults, CarryStructuredDetail) {
  try {
    throw_base_fault(FaultType::kResourceUnknown, "gone", "the-originator");
  } catch (const soap::SoapFault& f) {
    EXPECT_EQ(f.fault().subcode, "wsbf:ResourceUnknownFault");
    auto detail = xml::parse_element(f.fault().detail);
    EXPECT_EQ(detail->name().local(), "BaseFault");
    EXPECT_NE(detail->child_local("Timestamp"), nullptr);
    EXPECT_EQ(detail->child_local("Description")->text(), "gone");
    EXPECT_EQ(detail->child_local("Originator")->text(), "the-originator");
  }
}

TEST(BaseFaults, SubcodeSurvivesWire) {
  Fixture fx;
  auto proxy = fx.proxy_for(soap::EndpointReference("http://h/Thing"));
  try {
    proxy.get_property(app("value"));
    FAIL() << "expected fault";
  } catch (const soap::SoapFault& f) {
    EXPECT_TRUE(is_base_fault(f, FaultType::kResourceUnknown));
    EXPECT_FALSE(is_base_fault(f, FaultType::kQueryEvaluationError));
  }
}

// --- WS-ServiceGroup ---------------------------------------------------------------------

struct GroupFixture {
  common::ManualClock clock{0};
  net::VirtualNetwork net;
  xmldb::XmlDatabase db{std::make_unique<xmldb::MemoryBackend>(), {}};
  container::Container container{{.clock = &clock}};
  ResourceHome home{db, "entries", &container.lifetime()};
  ServiceGroupService group{"Registry", home, "http://h/Registry"};
  std::unique_ptr<net::VirtualCaller> caller;

  GroupFixture() {
    container.deploy("/Registry", group);
    net.bind("h", container);
    caller = std::make_unique<net::VirtualCaller>(net, net::VirtualCaller::Options{});
  }

  ServiceGroupProxy proxy() {
    return ServiceGroupProxy(*caller, soap::EndpointReference("http://h/Registry"));
  }
};

TEST(ServiceGroup, AddAndListEntries) {
  GroupFixture fx;
  auto proxy = fx.proxy();
  auto content = std::make_unique<xml::Element>(app("SiteInfo"));
  content->set_text("node1");
  proxy.add(soap::EndpointReference("http://node1/Exec"), std::move(content));
  proxy.add(soap::EndpointReference("http://node2/Exec"), nullptr);

  auto entries = proxy.entries();
  ASSERT_EQ(entries.size(), 2u);
  std::set<std::string> members;
  for (const auto& e : entries) members.insert(e.member.address());
  EXPECT_TRUE(members.contains("http://node1/Exec"));
  EXPECT_TRUE(members.contains("http://node2/Exec"));
}

TEST(ServiceGroup, EntryContentRoundTrips) {
  GroupFixture fx;
  auto proxy = fx.proxy();
  auto content = std::make_unique<xml::Element>(app("SiteInfo"));
  content->set_attr("cpus", "8");
  proxy.add(soap::EndpointReference("http://node1/Exec"), std::move(content));
  auto entries = proxy.entries();
  ASSERT_EQ(entries.size(), 1u);
  ASSERT_TRUE(entries[0].content);
  EXPECT_EQ(entries[0].content->attr("cpus"), "8");
}

TEST(ServiceGroup, DestroyEntryRemovesMember) {
  GroupFixture fx;
  auto proxy = fx.proxy();
  soap::EndpointReference entry =
      proxy.add(soap::EndpointReference("http://node1/Exec"), nullptr);
  WsResourceProxy entry_proxy(*fx.caller, entry);
  entry_proxy.destroy();
  EXPECT_TRUE(proxy.entries().empty());
}

TEST(ServiceGroup, ContentRulesRejectForeignContent) {
  GroupFixture fx;
  fx.group.add_content_rule(app("SiteInfo"));
  auto proxy = fx.proxy();
  auto good = std::make_unique<xml::Element>(app("SiteInfo"));
  EXPECT_NO_THROW(
      proxy.add(soap::EndpointReference("http://ok/Exec"), std::move(good)));
  auto bad = std::make_unique<xml::Element>(app("Other"));
  try {
    proxy.add(soap::EndpointReference("http://bad/Exec"), std::move(bad));
    FAIL() << "expected fault";
  } catch (const soap::SoapFault& f) {
    EXPECT_TRUE(is_base_fault(f, FaultType::kAddRefused));
  }
}

TEST(ServiceGroup, BoundedLifetimeEntriesExpire) {
  GroupFixture fx;
  auto proxy = fx.proxy();
  proxy.add(soap::EndpointReference("http://node1/Exec"), nullptr,
            /*termination_time=*/500);
  EXPECT_EQ(proxy.entries().size(), 1u);
  fx.clock.set(501);
  EXPECT_TRUE(proxy.entries().empty());  // self-cleaning registry
}

}  // namespace
}  // namespace gs::wsrf
