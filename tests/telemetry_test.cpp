// Telemetry subsystem tests: histogram percentiles against a sorted-sample
// oracle, concurrent-writer counter consistency, thread-pool introspection,
// and trace-context propagation through co-located and distributed calls on
// BOTH stacks (the paper's two software stacks share one trace format).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "counter/wsrf_counter.hpp"
#include "counter/wst_counter.hpp"
#include "net/tcp.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/propagation.hpp"
#include "telemetry/service.hpp"
#include "telemetry/trace.hpp"

namespace gs::telemetry {
namespace {

// --- metrics ---------------------------------------------------------------

TEST(Histogram, PercentilesMatchSortedSampleOracle) {
  Histogram h;
  std::mt19937 rng(42);
  std::uniform_int_distribution<std::uint64_t> dist(1, 50000);
  std::vector<std::uint64_t> samples;
  std::uint64_t sum = 0;
  for (int i = 0; i < 10000; ++i) {
    std::uint64_t us = dist(rng);
    samples.push_back(us);
    sum += us;
    h.record(us);
  }
  EXPECT_EQ(h.count(), samples.size());
  EXPECT_EQ(h.sum_us(), sum);

  std::sort(samples.begin(), samples.end());
  for (double p : {50.0, 90.0, 99.0}) {
    size_t rank = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(samples.size())));
    double oracle = static_cast<double>(samples[rank - 1]);
    double estimate = h.percentile(p);
    // Buckets are powers of two: the estimate lands in the same bucket as
    // the true percentile, so it is within a factor of two (plus slack for
    // the rank convention at bucket edges).
    EXPECT_GE(estimate, oracle * 0.45) << "p" << p;
    EXPECT_LE(estimate, oracle * 2.2) << "p" << p;
  }
  EXPECT_LE(h.percentile(50), h.percentile(90));
  EXPECT_LE(h.percentile(90), h.percentile(99));
}

TEST(Histogram, SnapshotDeltaIsolatesAnInterval) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(10);  // earlier traffic
  HistogramSnapshot before = h.snapshot();
  for (int i = 0; i < 100; ++i) h.record(1000);  // the measured interval
  HistogramSnapshot after = h.snapshot();
  after -= before;
  EXPECT_EQ(after.count, 100u);
  EXPECT_EQ(after.sum_us, 100u * 1000u);
  // The interval's percentiles see only the 1000us samples.
  EXPECT_GT(after.percentile(50), 500.0);
}

TEST(Counter, ConcurrentWritersLoseNothing) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(Registry, HandlesAreStableAndSnapshotsSubtract) {
  MetricsRegistry reg;
  Counter& c = reg.counter("x.requests");
  EXPECT_EQ(&c, &reg.counter("x.requests"));  // same instrument on re-lookup
  c.add(5);
  reg.gauge("x.depth").set(3);
  reg.histogram("x.us").record(7);

  MetricsSnapshot before = reg.snapshot();
  c.add(2);
  reg.gauge("x.depth").set(9);
  reg.histogram("x.us").record(7);
  MetricsSnapshot d = delta(before, reg.snapshot());
  EXPECT_EQ(d.counters.at("x.requests"), 2u);
  EXPECT_EQ(d.gauges.at("x.depth"), 9);  // gauges are levels: keep `after`
  EXPECT_EQ(d.histograms.at("x.us").count, 1u);

  std::string text = reg.to_text();
  EXPECT_NE(text.find("x.requests"), std::string::npos);
  EXPECT_NE(text.find("x.us"), std::string::npos);
}

TEST(ThreadPool, IntrospectionAndAttachedMetrics) {
  MetricsRegistry reg;
  common::ThreadPool pool(4);
  pool.attach_metrics(reg, "pool");
  constexpr int kTasks = 200;
  std::atomic<int> ran{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  pool.drain();
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_EQ(pool.tasks_submitted(), static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(pool.tasks_completed(), static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.active_workers(), 0u);

  MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("pool.tasks"), static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(snap.gauges.at("pool.queue_depth"), 0);
  EXPECT_EQ(snap.gauges.at("pool.active_workers"), 0);
  EXPECT_EQ(snap.histograms.at("pool.queue_wait_us").count,
            static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(snap.histograms.at("pool.task_run_us").count,
            static_cast<std::uint64_t>(kTasks));
}

// --- tracing primitives ----------------------------------------------------

TEST(Trace, SpansNestOnOneThread) {
  TraceLog log(64);
  std::uint64_t outer_span, inner_parent, trace;
  {
    SpanScope outer("outer", "test", &log);
    trace = outer.context().trace_id;
    outer_span = outer.context().span_id;
    {
      SpanScope inner("inner", "test", &log);
      EXPECT_EQ(inner.context().trace_id, trace);
      inner_parent = inner.context().parent_span_id;
    }
  }
  EXPECT_EQ(inner_parent, outer_span);
  std::vector<SpanRecord> spans = log.spans_for(trace);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "inner");  // inner closes first
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent_span_id, 0u);  // trace root
}

TEST(Trace, AdoptRemoteRerootsAnotherThreadsSpans) {
  TraceLog log(64);
  SpanScope root("client.call", "test", &log);
  TraceContext remote = root.context();
  std::thread server([&] {
    SpanScope receive("server.receive", "test", &log);
    // The provisional span starts its own trace...
    EXPECT_NE(receive.context().trace_id, remote.trace_id);
    adopt_remote(remote);
    // ...and is re-rooted onto the caller's.
    EXPECT_EQ(receive.context().trace_id, remote.trace_id);
    EXPECT_EQ(receive.context().parent_span_id, remote.span_id);
    SpanScope handler("server.handler", "test", &log);
    EXPECT_EQ(handler.context().trace_id, remote.trace_id);
    EXPECT_EQ(handler.context().parent_span_id, receive.context().span_id);
  });
  server.join();
  EXPECT_EQ(log.spans_for(remote.trace_id).size(), 2u);
}

TEST(Trace, HeaderRoundTripsThroughEnvelopeSerialization) {
  soap::Envelope env;
  soap::MessageInfo info;
  info.to = "http://host.example/Service";
  info.action = "http://example.org/Act";
  info.message_id = "urn:uuid:1";
  env.write_addressing(info);

  TraceContext ctx{0x1234567890abcdefULL, 42, 7};
  write_trace_header(env, ctx);
  soap::Envelope parsed = soap::Envelope::from_xml(env.to_xml());
  auto read = read_trace_header(parsed);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->trace_id, ctx.trace_id);
  EXPECT_EQ(read->span_id, ctx.span_id);
  // The addressing headers survive alongside the trace header.
  soap::MessageInfo echoed = parsed.read_addressing();
  EXPECT_EQ(echoed.message_id, "urn:uuid:1");
}

// --- cross-stack propagation -----------------------------------------------

std::set<std::string> span_names(const std::vector<SpanRecord>& spans) {
  std::set<std::string> names;
  for (const SpanRecord& s : spans) names.insert(s.name);
  return names;
}

bool has_layer(const std::vector<SpanRecord>& spans, const std::string& layer) {
  for (const SpanRecord& s : spans) {
    if (s.layer == layer) return true;
  }
  return false;
}

// Requests through the virtual network run on the client thread, so the
// server-side spans nest directly under client.invoke and adopt_remote is a
// no-op — one trace either way.
TEST(Propagation, ColocatedCallsShareOneTraceOnBothStacks) {
  net::VirtualNetwork net{net::NetworkProfile::colocated()};
  net::VirtualCaller caller(net, {});
  net::VirtualCaller wsn_sink(net, {.keep_alive = false});
  net::VirtualCaller wse_sink(net, {.transport = net::TransportKind::kSoapTcp});
  counter::WsrfCounterDeployment wsrf({
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .write_through_cache = true,
      .container = {},
      .notification_sink = &wsn_sink,
      .address_base = "http://wsrf.example",
  });
  counter::WstCounterDeployment wst({
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .container = {},
      .notification_sink = &wse_sink,
      .address_base = "http://wst.example",
      .subscription_file = {},
  });
  net.bind("wsrf.example", wsrf.container());
  net.bind("wst.example", wst.container());

  for (bool use_wsrf : {true, false}) {
    std::uint64_t trace_id;
    {
      SpanScope root("test.root", "test");
      trace_id = root.context().trace_id;
      if (use_wsrf) {
        counter::WsrfCounterClient client(caller, wsrf.counter_address());
        client.create();
        client.set(5);
      } else {
        counter::WstCounterClient client(caller, wst.counter_address(),
                                         wst.source_address());
        client.create();
        client.set(5);
      }
    }
    std::vector<SpanRecord> spans = TraceLog::global().spans_for(trace_id);
    std::set<std::string> names = span_names(spans);
    EXPECT_TRUE(names.contains("client.invoke")) << use_wsrf;
    EXPECT_TRUE(names.contains("http.receive")) << use_wsrf;
    EXPECT_TRUE(names.contains("container.dispatch")) << use_wsrf;
    EXPECT_TRUE(names.contains("container.handler")) << use_wsrf;
    EXPECT_TRUE(has_layer(spans, "storage")) << use_wsrf;

    // Every http.receive nests under a client.invoke of the same trace.
    std::set<std::uint64_t> invoke_ids;
    for (const SpanRecord& s : spans) {
      if (s.name == "client.invoke") invoke_ids.insert(s.span_id);
    }
    for (const SpanRecord& s : spans) {
      if (s.name == "http.receive") {
        EXPECT_TRUE(invoke_ids.contains(s.parent_span_id));
      }
    }
  }
}

// The deployment needs its base URL before the container can exist; an
// ephemeral-port server is created first against this forwarder.
class ForwardingEndpoint final : public net::Endpoint {
 public:
  net::Endpoint* target = nullptr;
  net::HttpResponse handle(const net::HttpRequest& request) override {
    return target->handle(request);
  }
};

// Bare-envelope proxy for querying the telemetry resource over the wire.
class RawProxy : public container::ProxyBase {
 public:
  using container::ProxyBase::ProxyBase;
  soap::Envelope call_action(const std::string& action,
                             std::unique_ptr<xml::Element> payload = nullptr) {
    return invoke(action, std::move(payload));
  }
};

const xml::Element* find_trace(const xml::Element& telemetry_doc,
                               std::uint64_t trace_id) {
  for (const xml::Element* el : telemetry_doc.child_elements()) {
    if (el->name().local() == "Trace" &&
        el->attr("id") == std::to_string(trace_id)) {
      return el;
    }
  }
  return nullptr;
}

// The issue's acceptance scenario: a distributed SetValue over real sockets
// produces ONE trace with at least the http-receive, dispatch/handler, and
// storage spans — on both stacks — and the trace plus the per-layer metrics
// are queryable over the wire via WSRF GetResourceProperty(Document) AND
// WS-Transfer Get.
TEST(Propagation, DistributedSetProducesOneTraceAcrossLayersOnBothStacks) {
  net::VirtualNetwork local;  // in-process fabric for the notification sinks
  net::VirtualCaller wsn_sink(local, {.keep_alive = false});
  net::VirtualCaller wse_sink(local, {.transport = net::TransportKind::kSoapTcp});

  ForwardingEndpoint fwd_wsrf;
  net::HttpServer server_wsrf(fwd_wsrf, 0, 2);
  counter::WsrfCounterDeployment wsrf({
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .write_through_cache = true,
      .container = {},
      .notification_sink = &wsn_sink,
      .address_base = server_wsrf.base_url(),
  });
  fwd_wsrf.target = &wsrf.container();

  ForwardingEndpoint fwd_wst;
  net::HttpServer server_wst(fwd_wst, 0, 2);
  counter::WstCounterDeployment wst({
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .container = {},
      .notification_sink = &wse_sink,
      .address_base = server_wst.base_url(),
      .subscription_file = {},
  });
  fwd_wst.target = &wst.container();

  net::TcpSoapCaller wire;
  const std::string rp_ns(soap::ns::kWsrfRp);
  const std::string wst_ns(soap::ns::kTransfer);

  for (bool use_wsrf : {true, false}) {
    std::uint64_t trace_id;
    {
      SpanScope root("test.root", "test");
      trace_id = root.context().trace_id;
      if (use_wsrf) {
        counter::WsrfCounterClient client(wire, wsrf.counter_address());
        client.create();
        client.set(5);
        EXPECT_EQ(client.get(), 5);
      } else {
        counter::WstCounterClient client(wire, wst.counter_address(),
                                         wst.source_address());
        client.create();
        client.set(5);
        EXPECT_EQ(client.get(), 5);
      }
    }

    std::vector<SpanRecord> spans = TraceLog::global().spans_for(trace_id);
    std::set<std::string> names = span_names(spans);
    EXPECT_TRUE(names.contains("client.invoke")) << use_wsrf;
    EXPECT_TRUE(names.contains("http.receive")) << use_wsrf;
    EXPECT_TRUE(names.contains("container.dispatch")) << use_wsrf;
    EXPECT_TRUE(has_layer(spans, "storage")) << use_wsrf;
    EXPECT_GE(spans.size(), 3u);

    // The server-side spans were re-rooted onto the client's trace: every
    // http.receive (recorded on a server worker thread) hangs off a
    // client.invoke span, and container.dispatch off http.receive.
    std::set<std::uint64_t> invoke_ids, receive_ids;
    for (const SpanRecord& s : spans) {
      if (s.name == "client.invoke") invoke_ids.insert(s.span_id);
      if (s.name == "http.receive") receive_ids.insert(s.span_id);
    }
    for (const SpanRecord& s : spans) {
      if (s.name == "http.receive") {
        EXPECT_TRUE(invoke_ids.contains(s.parent_span_id)) << use_wsrf;
      }
      if (s.name == "container.dispatch") {
        EXPECT_TRUE(receive_ids.contains(s.parent_span_id)) << use_wsrf;
      }
    }

    // Query the live telemetry resource over the wire — the WSRF way and
    // the WS-Transfer way return the same document.
    const std::string telemetry_address =
        (use_wsrf ? wsrf.telemetry_address() : wst.telemetry_address());
    RawProxy proxy(wire, soap::EndpointReference(telemetry_address));

    soap::Envelope doc_response = proxy.call_action(
        rp_ns + "/GetResourcePropertyDocument");
    const xml::Element* doc =
        doc_response.payload()->child({kTelemetryNs, "Telemetry"});
    ASSERT_NE(doc, nullptr) << use_wsrf;
    ASSERT_NE(find_trace(*doc, trace_id), nullptr) << use_wsrf;
    EXPECT_GE(find_trace(*doc, trace_id)->child_elements().size(), 3u);

    soap::Envelope get_response = proxy.call_action(wst_ns + "/Get");
    const xml::Element* rep = get_response.payload();
    ASSERT_NE(rep, nullptr);
    EXPECT_EQ(rep->name().local(), "Telemetry");
    ASSERT_NE(find_trace(*rep, trace_id), nullptr) << use_wsrf;

    // GetResourceProperty selects individual metrics by name.
    auto prop = std::make_unique<xml::Element>(
        xml::QName{soap::ns::kWsrfRp, "GetResourceProperty"});
    prop->set_text("container.requests");
    soap::Envelope prop_response =
        proxy.call_action(rp_ns + "/GetResourceProperty", std::move(prop));
    const xml::Element* counter_el =
        prop_response.payload()->child({kTelemetryNs, "Counter"});
    ASSERT_NE(counter_el, nullptr);
    EXPECT_GT(std::stoull(counter_el->text()), 0u);
  }

  server_wsrf.stop();
  server_wst.stop();
}

}  // namespace
}  // namespace gs::telemetry
