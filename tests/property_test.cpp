// Property-based tests: randomized inputs driving invariants that must
// hold for every document / number / message, not just fixtures.
//
// Each suite is a TEST_P over seeds; generators derive structure from a
// seeded mt19937, so failures reproduce exactly.
#include <gtest/gtest.h>

#include <random>

#include "common/encoding.hpp"
#include "net/http.hpp"
#include "security/bignum.hpp"
#include "security/sha256.hpp"
#include "soap/envelope.hpp"
#include "xml/canonical.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"
#include "xml/xpath.hpp"

namespace gs {
namespace {

class Seeded : public ::testing::TestWithParam<int> {
 protected:
  std::mt19937 rng{static_cast<unsigned>(GetParam() * 2654435761u + 1)};

  int pick(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  }

  std::string random_name() {
    static const char* kNames[] = {"a", "item", "Counter", "cv", "Owner",
                                   "Status", "x-y", "deep_node", "T1"};
    return kNames[pick(0, 8)];
  }

  std::string random_text() {
    std::string out;
    int len = pick(0, 12);
    for (int i = 0; i < len; ++i) {
      // Includes the characters that must be escaped plus whitespace.
      static const char kAlphabet[] =
          "abcXYZ012 <>&\"'\t\n._-";
      out += kAlphabet[pick(0, static_cast<int>(sizeof(kAlphabet)) - 2)];
    }
    return out;
  }

  std::string random_ns() {
    static const char* kNs[] = {"", "urn:a", "urn:b", "http://x.example/ns"};
    return kNs[pick(0, 3)];
  }

  std::unique_ptr<xml::Element> random_tree(int depth) {
    auto el = std::make_unique<xml::Element>(
        xml::QName(random_ns(), random_name()));
    int attrs = pick(0, 3);
    for (int i = 0; i < attrs; ++i) {
      el->set_attr(xml::QName(random_ns(), random_name() + std::to_string(i)),
                   random_text());
    }
    int kids = depth > 0 ? pick(0, 3) : 0;
    for (int i = 0; i < kids; ++i) {
      if (pick(0, 3) == 0) {
        el->append_text(random_text());
      } else {
        el->append(random_tree(depth - 1));
      }
    }
    if (kids == 0 && pick(0, 1)) el->set_text(random_text());
    return el;
  }
};

// --- XML round trip -----------------------------------------------------------

class XmlRoundTripProperty : public Seeded {};
INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTripProperty, ::testing::Range(0, 25));

TEST_P(XmlRoundTripProperty, ParseOfWriteIsIdentity) {
  auto tree = random_tree(3);
  auto reparsed = xml::parse_element(xml::write(*tree));
  EXPECT_TRUE(xml::Element::deep_equal(*tree, *reparsed))
      << xml::write(*tree);
}

TEST_P(XmlRoundTripProperty, PrettyAndCompactAgreeStructurally) {
  auto tree = random_tree(3);
  // Pretty output inserts whitespace between elements, which is
  // insignificant only for element-only content; compare canonical forms
  // of reparsed compact output instead (whitespace-exact).
  auto compact = xml::parse_element(xml::write(*tree));
  EXPECT_EQ(xml::canonicalize(*tree), xml::canonicalize(*compact));
}

TEST_P(XmlRoundTripProperty, CloneEqualsOriginal) {
  auto tree = random_tree(3);
  EXPECT_TRUE(xml::Element::deep_equal(*tree, *tree->clone_element()));
}

TEST_P(XmlRoundTripProperty, CanonicalFormIsRoundTripInvariant) {
  auto tree = random_tree(3);
  auto reparsed = xml::parse_element(xml::write(*tree));
  EXPECT_EQ(xml::canonicalize(*tree), xml::canonicalize(*reparsed));
}

TEST_P(XmlRoundTripProperty, AttributeOrderDoesNotAffectCanonicalForm) {
  auto tree = random_tree(2);
  // Rebuild with attributes in reversed order.
  std::function<std::unique_ptr<xml::Element>(const xml::Element&)> reversed =
      [&](const xml::Element& el) {
        auto out = std::make_unique<xml::Element>(el.name());
        auto attrs = el.attributes();
        for (auto it = attrs.rbegin(); it != attrs.rend(); ++it) {
          out->set_attr(it->name, it->value);
        }
        for (const auto& child : el.children()) {
          if (child->kind() == xml::NodeKind::kElement) {
            out->append(reversed(static_cast<const xml::Element&>(*child)));
          } else {
            out->append(child->clone());
          }
        }
        return out;
      };
  EXPECT_EQ(xml::canonicalize(*tree), xml::canonicalize(*reversed(*tree)));
}

// --- envelopes ------------------------------------------------------------------

class EnvelopeProperty : public Seeded {};
INSTANTIATE_TEST_SUITE_P(Seeds, EnvelopeProperty, ::testing::Range(0, 10));

TEST_P(EnvelopeProperty, AddressingSurvivesTheWire) {
  soap::Envelope env;
  soap::MessageInfo info;
  info.to = "http://host-" + std::to_string(pick(0, 99)) + "/svc";
  info.action = "urn:act-" + std::to_string(pick(0, 99));
  info.message_id = "urn:uuid:" + std::to_string(pick(0, 1 << 30));
  soap::EndpointReference reply("http://reply-" + std::to_string(pick(0, 9)));
  reply.add_reference_property(xml::QName("urn:impl", "Key"), random_text());
  info.reply_to = reply;
  env.write_addressing(info);
  env.body().append(random_tree(2));

  soap::MessageInfo read =
      soap::Envelope::from_xml(env.to_xml()).read_addressing();
  EXPECT_EQ(read.to, info.to);
  EXPECT_EQ(read.action, info.action);
  EXPECT_EQ(read.message_id, info.message_id);
  EXPECT_EQ(read.reply_to, info.reply_to);
}

TEST_P(EnvelopeProperty, PayloadSurvivesTheWire) {
  soap::Envelope env;
  auto payload = random_tree(3);
  auto expected = payload->clone_element();
  env.body().append(std::move(payload));
  soap::Envelope back = soap::Envelope::from_xml(env.to_xml());
  ASSERT_NE(back.payload(), nullptr);
  EXPECT_TRUE(xml::Element::deep_equal(*expected, *back.payload()));
}

// --- base64 / hex -----------------------------------------------------------------

class CodecProperty : public Seeded {};
INSTANTIATE_TEST_SUITE_P(Seeds, CodecProperty, ::testing::Range(0, 15));

TEST_P(CodecProperty, Base64RoundTripsArbitraryBytes) {
  std::vector<std::uint8_t> bytes(static_cast<size_t>(pick(0, 200)));
  for (auto& b : bytes) b = static_cast<std::uint8_t>(pick(0, 255));
  auto decoded = common::base64_decode(common::base64_encode(bytes));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, bytes);
}

TEST_P(CodecProperty, HexRoundTripsArbitraryBytes) {
  std::vector<std::uint8_t> bytes(static_cast<size_t>(pick(0, 200)));
  for (auto& b : bytes) b = static_cast<std::uint8_t>(pick(0, 255));
  auto decoded = common::hex_decode(common::hex_encode(bytes));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, bytes);
}

// --- bignum ------------------------------------------------------------------------

class BignumProperty : public Seeded {};
INSTANTIATE_TEST_SUITE_P(Seeds, BignumProperty, ::testing::Range(0, 12));

TEST_P(BignumProperty, AdditionSubtractionInverse) {
  std::mt19937_64 rng64(static_cast<std::uint64_t>(GetParam()) + 99);
  auto a = security::BigUint::random_bits(static_cast<size_t>(pick(8, 256)), rng64);
  auto b = security::BigUint::random_bits(static_cast<size_t>(pick(8, 256)), rng64);
  EXPECT_EQ((a + b) - b, a);
  EXPECT_EQ((a + b) - a, b);
}

TEST_P(BignumProperty, MultiplicationDistributes) {
  std::mt19937_64 rng64(static_cast<std::uint64_t>(GetParam()) + 7);
  auto a = security::BigUint::random_bits(96, rng64);
  auto b = security::BigUint::random_bits(80, rng64);
  auto c = security::BigUint::random_bits(64, rng64);
  EXPECT_EQ(a * (b + c), a * b + a * c);
}

TEST_P(BignumProperty, ModExpHomomorphism) {
  // (x^a * x^b) mod n == x^(a+b) mod n
  std::mt19937_64 rng64(static_cast<std::uint64_t>(GetParam()) + 13);
  auto n = security::BigUint::random_bits(128, rng64);
  if (!n.is_odd()) n = n + security::BigUint(1);
  auto x = security::BigUint::random_below(n, rng64);
  auto a = security::BigUint::random_bits(32, rng64);
  auto b = security::BigUint::random_bits(32, rng64);
  auto lhs = (security::BigUint::mod_exp(x, a, n) *
              security::BigUint::mod_exp(x, b, n)) % n;
  auto rhs = security::BigUint::mod_exp(x, a + b, n);
  EXPECT_EQ(lhs, rhs);
}

TEST_P(BignumProperty, BytesRoundTrip) {
  std::mt19937_64 rng64(static_cast<std::uint64_t>(GetParam()) + 23);
  auto v = security::BigUint::random_bits(static_cast<size_t>(pick(1, 300)), rng64);
  EXPECT_EQ(security::BigUint::from_bytes(v.to_bytes()), v);
  EXPECT_EQ(security::BigUint::from_hex(v.to_hex()), v);
}

TEST_P(BignumProperty, ModInverseIsInverse) {
  std::mt19937_64 rng64(static_cast<std::uint64_t>(GetParam()) + 31);
  auto m = security::BigUint::random_prime(64, rng64);
  auto a = security::BigUint(2) +
           security::BigUint::random_below(m - security::BigUint(3), rng64);
  auto inv = security::BigUint::mod_inverse(a, m);
  EXPECT_EQ((a * inv) % m, security::BigUint(1));
}

// --- hashes --------------------------------------------------------------------------

class HashProperty : public Seeded {};
INSTANTIATE_TEST_SUITE_P(Seeds, HashProperty, ::testing::Range(0, 8));

TEST_P(HashProperty, ChunkingDoesNotChangeDigest) {
  std::string data;
  int len = pick(0, 500);
  for (int i = 0; i < len; ++i) data += static_cast<char>(pick(0, 255));

  security::Sha256 chunked;
  size_t pos = 0;
  while (pos < data.size()) {
    size_t take = std::min<size_t>(static_cast<size_t>(pick(1, 64)),
                                   data.size() - pos);
    chunked.update(std::string_view(data).substr(pos, take));
    pos += take;
  }
  EXPECT_EQ(chunked.finish(), security::Sha256::digest(data));
}

TEST_P(HashProperty, SingleBitChangesDigest) {
  std::string data(static_cast<size_t>(pick(1, 100)), 'x');
  auto original = security::Sha256::digest(data);
  data[static_cast<size_t>(pick(0, static_cast<int>(data.size()) - 1))] ^= 1;
  EXPECT_NE(security::Sha256::digest(data), original);
}

// --- HTTP framing ----------------------------------------------------------------------

class HttpProperty : public Seeded {};
INSTANTIATE_TEST_SUITE_P(Seeds, HttpProperty, ::testing::Range(0, 10));

TEST_P(HttpProperty, RequestFramingRoundTrips) {
  net::HttpRequest req;
  req.method = pick(0, 1) ? "POST" : "GET";
  req.path = "/p" + std::to_string(pick(0, 999));
  req.host = "h" + std::to_string(pick(0, 99));
  int headers = pick(0, 4);
  for (int i = 0; i < headers; ++i) {
    req.headers["X-H" + std::to_string(i)] = "v" + std::to_string(pick(0, 9));
  }
  int len = pick(0, 300);
  for (int i = 0; i < len; ++i) req.body += static_cast<char>(pick(0, 255));

  auto back = net::HttpRequest::parse(req.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->method, req.method);
  EXPECT_EQ(back->path, req.path);
  EXPECT_EQ(back->host, req.host);
  EXPECT_EQ(back->headers, req.headers);
  EXPECT_EQ(back->body, req.body);
}

// --- XPath algebra ------------------------------------------------------------------------

class XPathProperty : public Seeded {};
INSTANTIATE_TEST_SUITE_P(Seeds, XPathProperty, ::testing::Range(0, 10));

TEST_P(XPathProperty, UnionIsCommutativeOnRandomTrees) {
  auto tree = random_tree(3);
  auto ab = xml::XPathExpr::compile("//item | //a").select_elements(*tree);
  auto ba = xml::XPathExpr::compile("//a | //item").select_elements(*tree);
  // Same node sets (order may differ).
  std::set<const xml::Element*> sa(ab.begin(), ab.end());
  std::set<const xml::Element*> sb(ba.begin(), ba.end());
  EXPECT_EQ(sa, sb);
}

TEST_P(XPathProperty, CountMatchesSelectionSize) {
  auto tree = random_tree(3);
  auto selected = xml::XPathExpr::compile("//item").select_elements(*tree);
  double counted =
      xml::XPathExpr::compile("count(//item)").eval(*tree).to_number();
  EXPECT_EQ(static_cast<size_t>(counted), selected.size());
}

TEST_P(XPathProperty, PredicateTrueIsIdentity) {
  auto tree = random_tree(3);
  auto plain = xml::XPathExpr::compile("//a").select_elements(*tree);
  auto filtered = xml::XPathExpr::compile("//a[true()]").select_elements(*tree);
  EXPECT_EQ(plain, filtered);
  EXPECT_TRUE(
      xml::XPathExpr::compile("//a[false()]").select_elements(*tree).empty());
}

TEST_P(XPathProperty, DescendantSupersetOfChild) {
  auto tree = random_tree(3);
  auto children = xml::XPathExpr::compile("item").select_elements(*tree);
  auto descendants = xml::XPathExpr::compile("//item").select_elements(*tree);
  std::set<const xml::Element*> d(descendants.begin(), descendants.end());
  for (const auto* c : children) {
    EXPECT_TRUE(d.contains(c));
  }
}

}  // namespace
}  // namespace gs
