// Concurrency and robustness stress tests: parallel clients against one
// container, concurrent database access, hostile wire input, and depth /
// size limits.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "counter/wsrf_counter.hpp"
#include "counter/wst_counter.hpp"
#include "net/tcp.hpp"
#include "wsn/consumer.hpp"
#include "xml/parser.hpp"
#include "xmldb/database.hpp"

namespace gs {
namespace {

// --- hostile input --------------------------------------------------------------

TEST(Robustness, DeeplyNestedDocumentIsRejectedNotCrashed) {
  std::string bomb;
  for (int i = 0; i < 100000; ++i) bomb += "<a>";
  EXPECT_THROW(xml::parse_element(bomb), xml::ParseError);
}

TEST(Robustness, DepthJustUnderTheLimitParses) {
  std::string doc;
  for (int i = 0; i < 250; ++i) doc += "<a>";
  doc += "x";
  for (int i = 0; i < 250; ++i) doc += "</a>";
  EXPECT_NO_THROW(xml::parse_element(doc));
}

TEST(Robustness, ContainerSurvivesGarbageRequests) {
  container::Container container({});
  const char* kGarbage[] = {
      "",
      "garbage",
      "<xml-but-not-soap/>",
      "<Envelope xmlns=\"urn:wrong-ns\"><Body/></Envelope>",
      "POST / HTTP/1.1\r\n\r\n",  // HTTP inside the body
  };
  for (const char* body : kGarbage) {
    net::HttpRequest request;
    request.path = "/anything";
    request.body = body;
    net::HttpResponse response = container.handle(request);
    EXPECT_GE(response.status, 400) << body;
  }
}

TEST(Robustness, LargePayloadRoundTrips) {
  // A 1 MiB base64 blob through the whole stack (upload-sized message).
  net::VirtualNetwork net;
  net::VirtualCaller sink(net, {.transport = net::TransportKind::kSoapTcp});
  counter::WstCounterDeployment dep({
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .container = {},
      .notification_sink = &sink,
      .address_base = "http://h.example",
      .subscription_file = {},
  });
  net.bind("h.example", dep.container());
  net::VirtualCaller caller(net, {});

  wst::TransferProxy factory(caller,
                             soap::EndpointReference(dep.counter_address()));
  auto doc = std::make_unique<xml::Element>(xml::QName("urn:big", "Blob"));
  doc->set_text(std::string(1 << 20, 'A'));
  auto result = factory.create(std::move(doc));
  wst::TransferProxy resource(caller, result.resource);
  EXPECT_EQ(resource.get()->text().size(), 1u << 20);
}

// --- concurrent container access ---------------------------------------------------

TEST(Concurrency, ParallelClientsOverRealSockets) {
  // Multiple threads drive independent counters through one container via
  // real TCP; the container, database and lifetime manager must hold up.
  net::VirtualNetwork local;
  net::VirtualCaller sink(local, {.keep_alive = false});

  class Forward final : public net::Endpoint {
   public:
    net::Endpoint* target = nullptr;
    net::HttpResponse handle(const net::HttpRequest& request) override {
      return target->handle(request);
    }
  };
  Forward forward;
  net::HttpServer server(forward, 0, 4);
  counter::WsrfCounterDeployment dep({
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .write_through_cache = true,
      .container = {},
      .notification_sink = &sink,
      .address_base = server.base_url(),
  });
  forward.target = &dep.container();

  constexpr int kThreads = 6;
  constexpr int kOpsPerThread = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      try {
        net::TcpSoapCaller caller;
        counter::WsrfCounterClient client(caller,
                                          server.base_url() + "/Counter");
        client.create();
        for (int i = 0; i < kOpsPerThread; ++i) {
          client.set(t * 1000 + i);
          if (client.get() != t * 1000 + i) failures.fetch_add(1);
        }
        client.destroy();
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  server.stop();
}

TEST(Concurrency, DatabaseSurvivesParallelMixedOperations) {
  xmldb::XmlDatabase db(std::make_unique<xmldb::MemoryBackend>(),
                        {.write_through_cache = true});
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      try {
        for (int i = 0; i < 100; ++i) {
          std::string id = "doc-" + std::to_string(t) + "-" + std::to_string(i);
          xml::Element doc(xml::QName("r"));
          doc.set_text(std::to_string(i));
          db.store("col", id, doc);
          auto loaded = db.load("col", id);
          if (!loaded || loaded->text() != std::to_string(i)) {
            failures.fetch_add(1);
          }
          if (i % 3 == 0) db.remove("col", id);
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Concurrency, LifetimeManagerParallelScheduleAndSweep) {
  common::ManualClock clock(0);
  container::LifetimeManager lm(clock);
  std::atomic<int> destroyed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        lm.schedule(1, [&destroyed] { destroyed.fetch_add(1); });
        lm.sweep();
      }
    });
  }
  // Advance time so the sweeps fire while schedules race in.
  clock.advance(10);
  for (auto& thread : threads) thread.join();
  lm.sweep();
  EXPECT_GT(destroyed.load(), 0);
  // Nothing lost: everything scheduled before the final sweep at t=10 with
  // termination t=1 or t=11 must eventually fire or stay active.
  EXPECT_EQ(destroyed.load() + static_cast<int>(lm.active()), 4 * 200);
}

TEST(Concurrency, NotificationFanOutFromManyPublishes) {
  // Publish from several threads at once; every accepted notification must
  // be delivered exactly once.
  net::VirtualNetwork net;
  net::VirtualCaller sink(net, {.transport = net::TransportKind::kSoapTcp});
  counter::WstCounterDeployment dep({
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .container = {},
      .notification_sink = &sink,
      .address_base = "http://h.example",
      .subscription_file = {},
  });
  net.bind("h.example", dep.container());
  wsn::NotificationConsumer consumer;
  net.bind("c.example", consumer);

  net::VirtualCaller caller(net, {});
  counter::WstCounterClient client(caller, dep.counter_address(),
                                   dep.source_address());
  client.create();
  client.subscribe(soap::EndpointReference("http://c.example/sink"));

  constexpr int kThreads = 4;
  constexpr int kSetsPerThread = 10;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&net, &dep, t] {
      net::VirtualCaller thread_caller(net, {});
      counter::WstCounterClient thread_client(
          thread_caller, dep.counter_address(), dep.source_address());
      // All threads hammer the same counter resource.
      thread_client.attach(soap::EndpointReference(dep.counter_address()));
      for (int i = 0; i < kSetsPerThread; ++i) {
        // Direct event trigger through set on distinct counters would race
        // on attach; instead each thread creates its own counter.
        counter::WstCounterClient own(thread_caller, dep.counter_address(),
                                      dep.source_address());
        own.create();
        own.set(t * 100 + i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // The subscription is scoped to `client`'s counter via an XPath filter,
  // so none of the other counters' sets may leak through.
  EXPECT_EQ(consumer.count(), 0u);
  client.set(1);
  EXPECT_TRUE(consumer.wait_for(1, 2000));
  EXPECT_EQ(consumer.count(), 1u);
}

}  // namespace
}  // namespace gs
