// Tests for the security substrate: hashes, ciphers, bignum/RSA,
// certificates, XML signing and the TLS-lite channel.
#include <gtest/gtest.h>

#include "common/encoding.hpp"
#include "security/cert.hpp"
#include "security/chacha20.hpp"
#include "security/sha256.hpp"
#include "security/tls.hpp"
#include "security/xmlsig.hpp"
#include "soap/envelope.hpp"
#include "soap/namespaces.hpp"

namespace gs::security {
namespace {

std::mt19937_64 test_rng(0xC0FFEE);

// Shared small keypair fixture (keygen is the slow part; reuse it).
const RsaKeyPair& test_key() {
  static RsaKeyPair key = RsaKeyPair::generate(512, test_rng);
  return key;
}

// --- SHA-256 (FIPS vectors) ----------------------------------------------------

struct ShaCase {
  const char* name;
  const char* input;
  const char* digest;
};

class Sha256Vectors : public ::testing::TestWithParam<ShaCase> {};

INSTANTIATE_TEST_SUITE_P(
    Fips, Sha256Vectors,
    ::testing::Values(
        ShaCase{"Empty", "",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
        ShaCase{"Abc", "abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
        ShaCase{"TwoBlocks",
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"}),
    [](const auto& info) { return info.param.name; });

TEST_P(Sha256Vectors, MatchesReference) {
  Digest256 d = Sha256::digest(std::string_view(GetParam().input));
  EXPECT_EQ(common::hex_encode(d), GetParam().digest);
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(common::hex_encode(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  Sha256 h;
  for (char c : data) h.update(std::string_view(&c, 1));
  EXPECT_EQ(h.finish(), Sha256::digest(data));
}

TEST(Hmac, Rfc4231Case1) {
  std::vector<std::uint8_t> key(20, 0x0b);
  std::string msg = "Hi There";
  Digest256 tag = hmac_sha256(key, common::as_bytes(msg));
  EXPECT_EQ(common::hex_encode(tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  std::string key = "Jefe";
  std::string msg = "what do ya want for nothing?";
  Digest256 tag = hmac_sha256(common::as_bytes(key), common::as_bytes(msg));
  EXPECT_EQ(common::hex_encode(tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  std::vector<std::uint8_t> key(131, 0xaa);
  std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  Digest256 tag = hmac_sha256(key, common::as_bytes(msg));
  EXPECT_EQ(common::hex_encode(tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// --- ChaCha20 (RFC 8439 §2.4.2 vector) ------------------------------------------

TEST(ChaCha20, Rfc8439Vector) {
  std::array<std::uint8_t, 32> key;
  for (int i = 0; i < 32; ++i) key[static_cast<size_t>(i)] = static_cast<std::uint8_t>(i);
  std::array<std::uint8_t, 12> nonce{};
  nonce[7] = 0x4a;
  std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  auto ct = ChaCha20::crypt(key, nonce, common::as_bytes(plaintext), 1);
  EXPECT_EQ(common::hex_encode(std::span<const std::uint8_t>(ct.data(), 16)),
            "6e2e359a2568f98041ba0728dd0d6981");
  // Decrypt restores the plaintext.
  auto pt = ChaCha20::crypt(key, nonce, ct, 1);
  EXPECT_EQ(std::string(pt.begin(), pt.end()), plaintext);
}

TEST(ChaCha20, DifferentNoncesDiverge) {
  std::array<std::uint8_t, 32> key{};
  std::array<std::uint8_t, 12> n1{}, n2{};
  n2[0] = 1;
  std::string msg = "same message";
  EXPECT_NE(ChaCha20::crypt(key, n1, common::as_bytes(msg)),
            ChaCha20::crypt(key, n2, common::as_bytes(msg)));
}

// --- bignum ----------------------------------------------------------------------

TEST(BigUint, HexRoundTrip) {
  BigUint v = BigUint::from_hex("deadbeefcafebabe1234567890");
  EXPECT_EQ(v.to_hex(), "deadbeefcafebabe1234567890");
}

TEST(BigUint, BytesRoundTrip) {
  std::vector<std::uint8_t> bytes = {0x01, 0x02, 0x03, 0xFF};
  EXPECT_EQ(BigUint::from_bytes(bytes).to_bytes(), bytes);
}

TEST(BigUint, ComparisonAndArithmetic) {
  BigUint a(1000000007);
  BigUint b(999999937);
  EXPECT_GT(a, b);
  EXPECT_EQ((a + b).to_u64(), 1999999944ULL);
  EXPECT_EQ((a - b).to_u64(), 70ULL);
  EXPECT_EQ((a * b).to_hex(), BigUint(1000000007ULL * 999999937ULL).to_hex());
  EXPECT_THROW(b - a, std::underflow_error);
}

TEST(BigUint, Shifts) {
  BigUint one(1);
  EXPECT_EQ((one << 100).bit_length(), 101u);
  EXPECT_EQ(((one << 100) >> 100), one);
  EXPECT_EQ((BigUint(0xF0) >> 4).to_u64(), 0xFu);
}

TEST(BigUint, DivModAgainstU64) {
  BigUint a = BigUint::from_hex("123456789abcdef0123456789abcdef");
  BigUint b(0x87654321);
  auto [q, r] = BigUint::divmod(a, b);
  EXPECT_EQ(q * b + r, a);
  EXPECT_LT(r, b);
  EXPECT_THROW(BigUint::divmod(a, BigUint(0)), std::domain_error);
}

// Property sweep: divmod identity on random operands.
class DivModProperty : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Random, DivModProperty, ::testing::Range(0, 10));

TEST_P(DivModProperty, QuotientRemainderIdentity) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  BigUint a = BigUint::random_bits(160 + GetParam() * 16, rng);
  BigUint b = BigUint::random_bits(64 + GetParam() * 8, rng);
  auto [q, r] = BigUint::divmod(a, b);
  EXPECT_EQ(q * b + r, a);
  EXPECT_LT(r, b);
}

TEST(BigUint, ModExpMatchesReference) {
  // 3^200 mod 1000000007 computed with 64-bit arithmetic.
  unsigned long long ref = 1;
  for (int i = 0; i < 200; ++i) ref = ref * 3 % 1000000007ULL;
  EXPECT_EQ(BigUint::mod_exp(BigUint(3), BigUint(200), BigUint(1000000007)).to_u64(),
            ref);
}

TEST(BigUint, ModExpOddModulusUsesMontgomery) {
  // Fermat: a^(p-1) = 1 mod p for prime p.
  BigUint p = BigUint::from_hex("ffffffffffffffc5");  // large 64-bit prime
  EXPECT_EQ(BigUint::mod_exp(BigUint(2), p - BigUint(1), p), BigUint(1));
}

TEST(BigUint, ModExpEvenModulusFallback) {
  EXPECT_EQ(BigUint::mod_exp(BigUint(3), BigUint(4), BigUint(100)).to_u64(),
            81u % 100u);
  EXPECT_EQ(BigUint::mod_exp(BigUint(7), BigUint(3), BigUint(1)).to_u64(), 0u);
}

TEST(BigUint, ModInverse) {
  BigUint inv = BigUint::mod_inverse(BigUint(3), BigUint(11));
  EXPECT_EQ((inv * BigUint(3) % BigUint(11)), BigUint(1));
  EXPECT_THROW(BigUint::mod_inverse(BigUint(4), BigUint(8)), std::domain_error);
}

TEST(BigUint, MillerRabinKnownPrimes) {
  std::mt19937_64 rng(1);
  EXPECT_TRUE(BigUint::is_probable_prime(BigUint(2), 10, rng));
  EXPECT_TRUE(BigUint::is_probable_prime(BigUint(1000000007), 10, rng));
  EXPECT_FALSE(BigUint::is_probable_prime(BigUint(1000000008), 10, rng));
  EXPECT_FALSE(BigUint::is_probable_prime(BigUint(1), 10, rng));
  // Carmichael number 561 = 3*11*17 must be rejected.
  EXPECT_FALSE(BigUint::is_probable_prime(BigUint(561), 10, rng));
}

TEST(BigUint, RandomPrimeHasExactBits) {
  std::mt19937_64 rng(7);
  BigUint p = BigUint::random_prime(96, rng);
  EXPECT_EQ(p.bit_length(), 96u);
  EXPECT_TRUE(p.is_odd());
}

// --- RSA -------------------------------------------------------------------------

TEST(Rsa, SignVerify) {
  Digest256 d = Sha256::digest(std::string_view("message"));
  auto sig = rsa_sign(test_key(), d);
  EXPECT_TRUE(rsa_verify(test_key().pub, d, sig));
}

TEST(Rsa, VerifyRejectsWrongDigest) {
  Digest256 d = Sha256::digest(std::string_view("message"));
  auto sig = rsa_sign(test_key(), d);
  d[0] ^= 1;
  EXPECT_FALSE(rsa_verify(test_key().pub, d, sig));
}

TEST(Rsa, VerifyRejectsTamperedSignature) {
  Digest256 d = Sha256::digest(std::string_view("message"));
  auto sig = rsa_sign(test_key(), d);
  sig[sig.size() / 2] ^= 0x40;
  EXPECT_FALSE(rsa_verify(test_key().pub, d, sig));
}

TEST(Rsa, VerifyRejectsWrongKey) {
  std::mt19937_64 rng(99);
  RsaKeyPair other = RsaKeyPair::generate(512, rng);
  Digest256 d = Sha256::digest(std::string_view("message"));
  auto sig = rsa_sign(test_key(), d);
  EXPECT_FALSE(rsa_verify(other.pub, d, sig));
}

TEST(Rsa, EncryptDecryptRoundTrip) {
  std::vector<std::uint8_t> secret = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05};
  auto ct = rsa_encrypt(test_key().pub, secret);
  auto pt = rsa_decrypt(test_key(), ct);
  // Leading zeros are dropped by the numeric round trip.
  std::vector<std::uint8_t> expected = {0x01, 0x02, 0x03, 0x04, 0x05};
  EXPECT_EQ(pt, expected);
}

TEST(Rsa, SignatureLengthIsModulusLength) {
  Digest256 d = Sha256::digest(std::string_view("x"));
  EXPECT_EQ(rsa_sign(test_key(), d).size(), test_key().pub.modulus_bytes());
}

// --- certificates -----------------------------------------------------------------

TEST(Cert, IssueAndVerify) {
  std::mt19937_64 rng(5);
  auto ca = CertificateAuthority::create("CN=TestCA", 512, rng);
  Credential cred = ca.issue("CN=alice", 512, rng, 0, 10000);
  EXPECT_NO_THROW(verify_certificate(cred.cert, ca.root(), 500));
}

TEST(Cert, RejectsExpired) {
  std::mt19937_64 rng(6);
  auto ca = CertificateAuthority::create("CN=TestCA", 512, rng);
  Credential cred = ca.issue("CN=alice", 512, rng, 100, 200);
  EXPECT_THROW(verify_certificate(cred.cert, ca.root(), 300), SecurityError);
  EXPECT_THROW(verify_certificate(cred.cert, ca.root(), 50), SecurityError);
}

TEST(Cert, RejectsWrongIssuer) {
  std::mt19937_64 rng(7);
  auto ca1 = CertificateAuthority::create("CN=CA1", 512, rng);
  auto ca2 = CertificateAuthority::create("CN=CA2", 512, rng);
  Credential cred = ca1.issue("CN=alice", 512, rng, 0, 10000);
  EXPECT_THROW(verify_certificate(cred.cert, ca2.root(), 500), SecurityError);
}

TEST(Cert, RejectsTamperedSubject) {
  std::mt19937_64 rng(8);
  auto ca = CertificateAuthority::create("CN=TestCA", 512, rng);
  Credential cred = ca.issue("CN=alice", 512, rng, 0, 10000);
  cred.cert.subject_dn = "CN=mallory";
  EXPECT_THROW(verify_certificate(cred.cert, ca.root(), 500), SecurityError);
}

TEST(Cert, TokenRoundTrip) {
  std::mt19937_64 rng(9);
  auto ca = CertificateAuthority::create("CN=TestCA", 512, rng);
  Credential cred = ca.issue("CN=alice", 512, rng, 0, 10000);
  Certificate back = Certificate::from_token(cred.cert.to_token());
  EXPECT_EQ(back.subject_dn, "CN=alice");
  EXPECT_EQ(back.subject_key, cred.cert.subject_key);
  EXPECT_NO_THROW(verify_certificate(back, ca.root(), 500));
}

TEST(Cert, MalformedValidityBoundsAreRejectedNotFatal) {
  // A peer's token is attacker-controlled text; garbage in NotBefore used
  // to escape Certificate::from_xml as std::invalid_argument from stoll
  // and kill the process. It must read as "bad certificate" instead.
  std::mt19937_64 rng(11);
  auto ca = CertificateAuthority::create("CN=TestCA", 512, rng);
  Credential cred = ca.issue("CN=alice", 512, rng, 0, 10000);
  for (const char* bad : {"boom", "", "12abc", "99999999999999999999999"}) {
    auto doc = cred.cert.to_xml();
    doc->child_local("NotBefore")->set_text(bad);
    EXPECT_THROW(Certificate::from_xml(*doc), SecurityError)
        << "NotBefore=" << bad;
  }
  auto doc = cred.cert.to_xml();
  doc->child_local("NotAfter")->set_text("never");
  EXPECT_THROW(Certificate::from_xml(*doc), SecurityError);
  // Untampered round trip still parses.
  EXPECT_NO_THROW(Certificate::from_xml(*cred.cert.to_xml()));
}

TEST(Cert, RootIsSelfSigned) {
  std::mt19937_64 rng(10);
  auto ca = CertificateAuthority::create("CN=TestCA", 512, rng);
  EXPECT_NO_THROW(verify_certificate(ca.root(), ca.root(), 12345));
}

// --- XML message signing ------------------------------------------------------------

struct SigningFixture {
  std::mt19937_64 rng{11};
  CertificateAuthority ca = CertificateAuthority::create("CN=GridCA", 512, rng);
  Credential alice = ca.issue("CN=alice", 512, rng, 0, 1'000'000);

  soap::Envelope make_message() {
    soap::Envelope env;
    soap::MessageInfo info;
    info.to = "http://host/svc";
    info.action = "urn:op";
    info.message_id = "urn:uuid:42";
    env.write_addressing(info);
    env.add_payload(xml::QName("urn:app", "Op")).set_text("data");
    return env;
  }
};

TEST(XmlSig, SignAndVerify) {
  SigningFixture fx;
  soap::Envelope env = fx.make_message();
  EXPECT_FALSE(is_signed(env));
  sign_envelope(env, fx.alice);
  EXPECT_TRUE(is_signed(env));
  VerifiedIdentity id = verify_envelope(env, fx.ca.root(), 500);
  EXPECT_EQ(id.subject_dn, "CN=alice");
}

TEST(XmlSig, SurvivesWireRoundTrip) {
  SigningFixture fx;
  soap::Envelope env = fx.make_message();
  sign_envelope(env, fx.alice);
  soap::Envelope received = soap::Envelope::from_xml(env.to_xml());
  EXPECT_NO_THROW(verify_envelope(received, fx.ca.root(), 500));
}

TEST(XmlSig, DetectsBodyTampering) {
  SigningFixture fx;
  soap::Envelope env = fx.make_message();
  sign_envelope(env, fx.alice);
  env.payload()->set_text("tampered");
  EXPECT_THROW(verify_envelope(env, fx.ca.root(), 500), SecurityError);
}

TEST(XmlSig, DetectsAddressingTampering) {
  SigningFixture fx;
  soap::Envelope env = fx.make_message();
  sign_envelope(env, fx.alice);
  // Redirect the To header after signing: replay-style attack.
  soap::Envelope received = soap::Envelope::from_xml(env.to_xml());
  xml::Element* to = received.header().child(
      xml::QName(soap::ns::kAddressing, "To"));
  ASSERT_NE(to, nullptr);
  to->set_text("http://evil/svc");
  EXPECT_THROW(verify_envelope(received, fx.ca.root(), 500), SecurityError);
}

TEST(XmlSig, RejectsUnsignedMessage) {
  SigningFixture fx;
  soap::Envelope env = fx.make_message();
  EXPECT_THROW(verify_envelope(env, fx.ca.root(), 500), SecurityError);
}

TEST(XmlSig, RejectsUntrustedSigner) {
  SigningFixture fx;
  std::mt19937_64 rng(12);
  auto other_ca = CertificateAuthority::create("CN=OtherCA", 512, rng);
  Credential mallory = other_ca.issue("CN=mallory", 512, rng, 0, 1'000'000);
  soap::Envelope env = fx.make_message();
  sign_envelope(env, mallory);
  EXPECT_THROW(verify_envelope(env, fx.ca.root(), 500), SecurityError);
}

TEST(XmlSig, ResigningReplacesHeader) {
  SigningFixture fx;
  soap::Envelope env = fx.make_message();
  sign_envelope(env, fx.alice);
  env.payload()->set_text("v2");
  sign_envelope(env, fx.alice);  // re-sign after mutation
  EXPECT_NO_THROW(verify_envelope(env, fx.ca.root(), 500));
  // Only one Security header present.
  int count = 0;
  for (const auto* el : env.header().child_elements()) {
    if (el->name().local() == "Security") ++count;
  }
  EXPECT_EQ(count, 1);
}

// --- TLS-lite -----------------------------------------------------------------------

struct TlsFixture {
  std::mt19937_64 rng{13};
  CertificateAuthority ca = CertificateAuthority::create("CN=GridCA", 512, rng);
  Credential server = ca.issue("CN=server", 512, rng, 0, 1'000'000);
  TlsSessionCache cache;
};

TEST(Tls, FullHandshakeAndRecords) {
  TlsFixture fx;
  TlsHandshake hs = TlsHandshake::run(fx.ca.root(), fx.cache, fx.server,
                                      "host:443", 500, fx.rng);
  EXPECT_FALSE(hs.resumed);
  EXPECT_EQ(hs.round_trips, 2);

  std::string msg = "GET / HTTP/1.1\r\n\r\n";
  auto sealed = hs.client.seal(common::as_bytes(msg));
  auto opened = hs.server.open(sealed);
  EXPECT_EQ(std::string(opened.begin(), opened.end()), msg);

  // And the reverse direction.
  std::string reply = "HTTP/1.1 200 OK\r\n\r\n";
  auto sealed2 = hs.server.seal(common::as_bytes(reply));
  auto opened2 = hs.client.open(sealed2);
  EXPECT_EQ(std::string(opened2.begin(), opened2.end()), reply);
}

TEST(Tls, SessionCacheEnablesResumption) {
  TlsFixture fx;
  TlsHandshake first = TlsHandshake::run(fx.ca.root(), fx.cache, fx.server,
                                         "host:443", 500, fx.rng);
  EXPECT_FALSE(first.resumed);
  TlsHandshake second = TlsHandshake::run(fx.ca.root(), fx.cache, fx.server,
                                          "host:443", 500, fx.rng);
  EXPECT_TRUE(second.resumed);
  EXPECT_EQ(second.round_trips, 1);
  // Resumed channels still carry data.
  std::string msg = "resumed";
  auto opened = second.server.open(second.client.seal(common::as_bytes(msg)));
  EXPECT_EQ(std::string(opened.begin(), opened.end()), msg);
}

TEST(Tls, CacheIsPerAuthority) {
  TlsFixture fx;
  (void)TlsHandshake::run(fx.ca.root(), fx.cache, fx.server, "a:443", 500, fx.rng);
  TlsHandshake other = TlsHandshake::run(fx.ca.root(), fx.cache, fx.server,
                                         "b:443", 500, fx.rng);
  EXPECT_FALSE(other.resumed);
  EXPECT_EQ(fx.cache.size(), 2u);
}

TEST(Tls, TamperedRecordRejected) {
  TlsFixture fx;
  TlsHandshake hs = TlsHandshake::run(fx.ca.root(), fx.cache, fx.server,
                                      "host:443", 500, fx.rng);
  std::string msg = "secret";
  auto sealed = hs.client.seal(common::as_bytes(msg));
  sealed[6] ^= 1;  // flip a ciphertext bit
  EXPECT_THROW(hs.server.open(sealed), SecurityError);
}

TEST(Tls, ReplayedRecordRejected) {
  TlsFixture fx;
  TlsHandshake hs = TlsHandshake::run(fx.ca.root(), fx.cache, fx.server,
                                      "host:443", 500, fx.rng);
  std::string msg = "once";
  auto sealed = hs.client.seal(common::as_bytes(msg));
  (void)hs.server.open(sealed);
  // The sequence number advanced; replaying the same frame fails the MAC.
  EXPECT_THROW(hs.server.open(sealed), SecurityError);
}

TEST(Tls, TruncatedRecordRejected) {
  TlsFixture fx;
  TlsHandshake hs = TlsHandshake::run(fx.ca.root(), fx.cache, fx.server,
                                      "host:443", 500, fx.rng);
  auto sealed = hs.client.seal(common::as_bytes(std::string_view("x")));
  sealed.resize(sealed.size() - 5);
  EXPECT_THROW(hs.server.open(sealed), SecurityError);
}

TEST(Tls, ExpiredServerCertFailsHandshake) {
  TlsFixture fx;
  Credential expired = fx.ca.issue("CN=server", 512, fx.rng, 0, 100);
  EXPECT_THROW(TlsHandshake::run(fx.ca.root(), fx.cache, expired, "host:443",
                                 5000, fx.rng),
               SecurityError);
}

}  // namespace
}  // namespace gs::security
