// Tests for the XPath engine (the query language behind WSRF
// QueryResourceProperties, WSN/WSE content filters and xmldb queries).
#include <gtest/gtest.h>

#include "xml/parser.hpp"
#include "xml/xpath.hpp"

namespace gs::xml {
namespace {

std::unique_ptr<Element> library_doc() {
  return parse_element(R"(<library>
    <book year="2001" genre="scifi"><title>Alpha</title><price>10</price></book>
    <book year="1999" genre="scifi"><title>Beta</title><price>25</price></book>
    <book year="2005" genre="bio"><title>Gamma</title><price>18</price></book>
    <magazine><title>Delta</title></magazine>
  </library>)");
}

// --- selection behaviour, parameterized: (expr, expected count) ---------------

struct SelectCase {
  const char* name;
  const char* expr;
  size_t expected;
};

class Selects : public ::testing::TestWithParam<SelectCase> {};

INSTANTIATE_TEST_SUITE_P(
    Paths, Selects,
    ::testing::Values(
        SelectCase{"ChildStep", "book", 3},
        SelectCase{"TwoSteps", "book/title", 3},
        SelectCase{"Wildcard", "*", 4},
        SelectCase{"WildcardThenName", "*/title", 4},
        SelectCase{"DescendantTitles", "//title", 4},
        SelectCase{"DescendantFromStep", "book//title", 3},
        SelectCase{"AbsolutePath", "/library/book", 3},
        SelectCase{"AbsoluteDescendant", "//book/title", 3},
        SelectCase{"SelfDot", ".", 1},
        SelectCase{"DotThenChild", "./book", 3},
        SelectCase{"ParentFromChild", "book/..", 1},
        SelectCase{"PositionFirst", "book[1]", 1},
        SelectCase{"PositionLast", "book[last()]", 1},
        SelectCase{"PositionFunction", "book[position()=2]", 1},
        SelectCase{"AttributeEquals", "book[@genre='scifi']", 2},
        SelectCase{"AttributeExists", "book[@year]", 3},
        SelectCase{"ChildValueEquals", "book[title='Beta']", 1},
        SelectCase{"NumericComparison", "book[price>15]", 2},
        SelectCase{"NumericLessEqual", "book[price<=18]", 2},
        SelectCase{"AndPredicate", "book[@genre='scifi' and price>15]", 1},
        SelectCase{"OrPredicate", "book[@genre='bio' or price=10]", 2},
        SelectCase{"NotFunction", "book[not(@genre='scifi')]", 1},
        SelectCase{"NestedPredicates", "book[title][price]", 3},
        SelectCase{"ContainsFunction", "book[contains(title,'amm')]", 1},
        SelectCase{"StartsWith", "book[starts-with(title,'A')]", 1},
        SelectCase{"Union", "book | magazine", 4},
        SelectCase{"NoMatches", "nonexistent", 0},
        SelectCase{"ChainedPredicatePosition", "book[@genre='scifi'][2]", 1},
        SelectCase{"CountInPredicate", "book[count(title)=1]", 3},
        SelectCase{"AttributeAxisStar", "book[@*]", 3}),
    [](const auto& info) { return info.param.name; });

TEST_P(Selects, ExpectedNodeCount) {
  auto doc = library_doc();
  auto result = xpath_select(*doc, GetParam().expr);
  EXPECT_EQ(result.size(), GetParam().expected) << GetParam().expr;
}

// --- value semantics ----------------------------------------------------------

TEST(XPathValue, StringValueOfFirstNode) {
  auto doc = library_doc();
  XPathExpr expr = XPathExpr::compile("book/title");
  EXPECT_EQ(expr.eval(*doc).to_string(), "Alpha");
}

TEST(XPathValue, ElementStringValueIsDescendantText) {
  auto doc = parse_element("<a><b>x<c>y</c></b></a>");
  XPathExpr expr = XPathExpr::compile("b");
  EXPECT_EQ(expr.eval(*doc).to_string(), "xy");
}

TEST(XPathValue, AttributeSelection) {
  auto doc = library_doc();
  XPathExpr expr = XPathExpr::compile("book[1]/@year");
  XPathValue v = expr.eval(*doc);
  ASSERT_TRUE(v.is_node_set());
  ASSERT_EQ(v.node_set().size(), 1u);
  EXPECT_TRUE(v.node_set()[0].is_attribute());
  EXPECT_EQ(v.to_string(), "2001");
}

TEST(XPathValue, TextNodeSelection) {
  auto doc = parse_element("<a><b>hello</b></a>");
  XPathExpr expr = XPathExpr::compile("b/text()");
  EXPECT_EQ(expr.eval(*doc).to_string(), "hello");
}

TEST(XPathValue, CountFunction) {
  auto doc = library_doc();
  EXPECT_EQ(XPathExpr::compile("count(book)").eval(*doc).to_number(), 3.0);
}

TEST(XPathValue, Arithmetic) {
  auto doc = library_doc();
  EXPECT_EQ(XPathExpr::compile("1 + 2 * 3").eval(*doc).to_number(), 7.0);
  EXPECT_EQ(XPathExpr::compile("10 div 4").eval(*doc).to_number(), 2.5);
  EXPECT_EQ(XPathExpr::compile("10 mod 4").eval(*doc).to_number(), 2.0);
  EXPECT_EQ(XPathExpr::compile("-(3)").eval(*doc).to_number(), -3.0);
}

TEST(XPathValue, NumberOfNodeContent) {
  auto doc = library_doc();
  EXPECT_EQ(XPathExpr::compile("number(book[1]/price)").eval(*doc).to_number(),
            10.0);
}

TEST(XPathValue, SumViaComparison) {
  auto doc = library_doc();
  // Existential comparison across a node set.
  EXPECT_TRUE(XPathExpr::compile("book/price = 25").eval(*doc).to_boolean());
  EXPECT_FALSE(XPathExpr::compile("book/price = 11").eval(*doc).to_boolean());
}

TEST(XPathValue, StringFunctions) {
  auto doc = library_doc();
  EXPECT_EQ(XPathExpr::compile("concat('a','b','c')").eval(*doc).to_string(),
            "abc");
  EXPECT_EQ(
      XPathExpr::compile("string-length(book[1]/title)").eval(*doc).to_number(),
      5.0);
  EXPECT_EQ(XPathExpr::compile("normalize-space('  a   b ')")
                .eval(*doc)
                .to_string(),
            "a b");
  EXPECT_EQ(XPathExpr::compile("name(book[1])").eval(*doc).to_string(), "book");
}

TEST(XPathValue, NumericRounding) {
  auto doc = library_doc();
  EXPECT_EQ(XPathExpr::compile("floor(2.7)").eval(*doc).to_number(), 2.0);
  EXPECT_EQ(XPathExpr::compile("ceiling(2.1)").eval(*doc).to_number(), 3.0);
  EXPECT_EQ(XPathExpr::compile("round(2.5)").eval(*doc).to_number(), 3.0);
}

TEST(XPathValue, BooleanConversions) {
  auto doc = library_doc();
  EXPECT_TRUE(XPathExpr::compile("true()").eval(*doc).to_boolean());
  EXPECT_FALSE(XPathExpr::compile("false()").eval(*doc).to_boolean());
  EXPECT_TRUE(XPathExpr::compile("boolean(1)").eval(*doc).to_boolean());
  EXPECT_FALSE(XPathExpr::compile("boolean(0)").eval(*doc).to_boolean());
  EXPECT_FALSE(XPathExpr::compile("boolean('')").eval(*doc).to_boolean());
  EXPECT_TRUE(XPathExpr::compile("boolean('x')").eval(*doc).to_boolean());
}

TEST(XPathValue, MatchesHelper) {
  auto doc = library_doc();
  EXPECT_TRUE(XPathExpr::compile("book[@genre='bio']").matches(*doc));
  EXPECT_FALSE(XPathExpr::compile("book[@genre='cooking']").matches(*doc));
}

// --- namespaces ----------------------------------------------------------------

TEST(XPathNamespaces, PrefixedNameTest) {
  auto doc = parse_element(
      "<r xmlns:a=\"urn:a\" xmlns:b=\"urn:b\"><a:x/><b:x/></r>");
  auto result = xpath_select(*doc, "a:x", {{"a", "urn:a"}});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0]->name().ns(), "urn:a");
}

TEST(XPathNamespaces, UnprefixedMatchesAnyNamespace) {
  // Deliberate toolkit-friendly behaviour: unprefixed tests match on local
  // name so service authors can filter without prefix plumbing.
  auto doc = parse_element("<r xmlns:a=\"urn:a\"><a:x/><x/></r>");
  EXPECT_EQ(xpath_select(*doc, "x").size(), 2u);
}

TEST(XPathNamespaces, UnboundPrefixThrows) {
  EXPECT_THROW(XPathExpr::compile("q:x"), XPathError);
}

// --- errors ---------------------------------------------------------------------

class BadXPath : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(SyntaxErrors, BadXPath,
                         ::testing::Values("", "book[", "book]", "/(", "@@x",
                                           "book[@]", "unknownfn()",
                                           "book[price >]", "'unterminated"));

TEST_P(BadXPath, CompileThrows) {
  EXPECT_THROW(XPathExpr::compile(GetParam()), XPathError);
}

TEST(XPathErrors, NodeSetRequiredForUnion) {
  auto doc = library_doc();
  EXPECT_THROW(XPathExpr::compile("1 | 2").eval(*doc), XPathError);
}

// --- reuse / compile-once ---------------------------------------------------------

TEST(XPathExpr, CompiledExprIsReusableAcrossDocuments) {
  XPathExpr expr = XPathExpr::compile("item[@id='7']");
  auto a = parse_element("<r><item id=\"7\"/></r>");
  auto b = parse_element("<r><item id=\"8\"/></r>");
  EXPECT_TRUE(expr.matches(*a));
  EXPECT_FALSE(expr.matches(*b));
}

TEST(XPathExpr, FilterExprWithPathContinuation) {
  auto doc = library_doc();
  // Parenthesized expression followed by a path.
  auto result = xpath_select(*doc, "(book | magazine)/title");
  EXPECT_EQ(result.size(), 4u);
}

}  // namespace
}  // namespace gs::xml
