// Tests for the network substrate: HTTP framing, URLs, the virtual network
// with its three transports, wire metering, and the real TCP server.
#include <gtest/gtest.h>

#include "net/tcp.hpp"
#include "net/virtual_network.hpp"
#include "soap/envelope.hpp"

namespace gs::net {
namespace {

// --- HTTP framing --------------------------------------------------------------

TEST(Http, RequestRoundTrip) {
  HttpRequest req;
  req.method = "POST";
  req.path = "/svc/Counter";
  req.host = "vo.example";
  req.headers["Content-Type"] = "application/soap+xml";
  req.body = "<xml/>";
  auto back = HttpRequest::parse(req.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->method, "POST");
  EXPECT_EQ(back->path, "/svc/Counter");
  EXPECT_EQ(back->host, "vo.example");
  EXPECT_EQ(back->headers.at("Content-Type"), "application/soap+xml");
  EXPECT_EQ(back->body, "<xml/>");
}

TEST(Http, ResponseRoundTrip) {
  HttpResponse resp = HttpResponse::ok("body bytes");
  auto back = HttpResponse::parse(resp.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->status, 200);
  EXPECT_EQ(back->body, "body bytes");
}

TEST(Http, ErrorResponse) {
  HttpResponse resp = HttpResponse::error(404, "Not Found", "missing");
  auto back = HttpResponse::parse(resp.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->status, 404);
  EXPECT_EQ(back->reason, "Not Found");
}

TEST(Http, ContentLengthBoundsBody) {
  std::string wire =
      "HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nbodyEXTRA";
  auto resp = HttpResponse::parse(wire);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->body, "body");
}

TEST(Http, RejectsMalformed) {
  EXPECT_FALSE(HttpRequest::parse("not http").has_value());
  EXPECT_FALSE(HttpRequest::parse("GET /\r\n\r\n").has_value());
  EXPECT_FALSE(HttpResponse::parse("HTTP/1.1\r\n\r\n").has_value());
  EXPECT_FALSE(
      HttpRequest::parse("POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\nx")
          .has_value());
}

TEST(Http, BinaryBodySurvives) {
  HttpRequest req;
  req.host = "h";
  req.body = std::string("\x00\x01\xff\r\n\r\nbinary", 12);
  auto back = HttpRequest::parse(req.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->body, req.body);
}

// RFC 7230 §3.2: header field names are case-insensitive. A peer that sends
// "content-length" or "hOsT" must still frame correctly.
TEST(Http, RequestHeaderNamesAreCaseInsensitive) {
  auto req = HttpRequest::parse(
      "POST /svc HTTP/1.1\r\n"
      "hOsT: node.example\r\n"
      "CONTENT-LENGTH: 4\r\n"
      "content-type: text/xml\r\n\r\n"
      "bodyEXTRA");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->host, "node.example");
  EXPECT_EQ(req->body, "body");
  // Lookups through the map match any spelling too.
  EXPECT_EQ(req->headers.at("Content-Type"), "text/xml");
}

TEST(Http, ResponseHeaderNamesAreCaseInsensitive) {
  auto resp = HttpResponse::parse(
      "HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nokJUNK");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->body, "ok");
}

// Counts case-insensitive occurrences of a header name in serialized wire.
size_t count_header(const std::string& wire, std::string lowered_name) {
  std::string haystack(wire);
  for (char& c : haystack) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c + ('a' - 'A'));
  }
  size_t count = 0;
  for (size_t pos = haystack.find(lowered_name); pos != std::string::npos;
       pos = haystack.find(lowered_name, pos + 1)) {
    ++count;
  }
  return count;
}

// A caller that pre-sets Content-Length (any spelling) must not produce a
// message with two Content-Length fields — the serializer owns framing.
TEST(Http, CallerSetContentLengthIsNotDuplicated) {
  HttpRequest req;
  req.host = "h";
  req.body = "hello";
  req.headers["content-length"] = "999";  // stale and wrong on purpose
  std::string wire = req.serialize();
  EXPECT_EQ(count_header(wire, "content-length"), 1u);
  auto back = HttpRequest::parse(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->body, "hello");

  HttpResponse resp = HttpResponse::ok("payload");
  resp.headers["Content-Length"] = "1";
  std::string resp_wire = resp.serialize();
  EXPECT_EQ(count_header(resp_wire, "content-length"), 1u);
  auto resp_back = HttpResponse::parse(resp_wire);
  ASSERT_TRUE(resp_back.has_value());
  EXPECT_EQ(resp_back->body, "payload");
}

// --- URLs -----------------------------------------------------------------------

struct UrlCase {
  const char* name;
  const char* input;
  bool valid;
  const char* scheme;
  const char* host;
  int port;
  const char* path;
};

class UrlParse : public ::testing::TestWithParam<UrlCase> {};

INSTANTIATE_TEST_SUITE_P(
    Cases, UrlParse,
    ::testing::Values(
        UrlCase{"Plain", "http://host/svc", true, "http", "host", 0, "/svc"},
        UrlCase{"WithPort", "http://host:8080/a/b", true, "http", "host", 8080,
                "/a/b"},
        UrlCase{"NoPath", "https://host", true, "https", "host", 0, "/"},
        UrlCase{"SoapTcp", "soap.tcp://node1:9000/Events", true, "soap.tcp",
                "node1", 9000, "/Events"},
        UrlCase{"NoScheme", "host/svc", false, "", "", 0, ""},
        UrlCase{"EmptyHost", "http:///svc", false, "", "", 0, ""},
        UrlCase{"BadPort", "http://host:abc/", false, "", "", 0, ""},
        UrlCase{"PortOutOfRange", "http://host:70000/", false, "", "", 0, ""},
        UrlCase{"PortTrailingJunk", "http://host:8080x/", false, "", "", 0, ""},
        UrlCase{"EmptyPort", "http://host:/", false, "", "", 0, ""},
        UrlCase{"EmptyHostWithPort", "http://:8080/", false, "", "", 0, ""},
        UrlCase{"NegativePort", "http://host:-1/", false, "", "", 0, ""},
        UrlCase{"PortZero", "http://host:0/", false, "", "", 0, ""}),
    [](const auto& info) { return info.param.name; });

TEST_P(UrlParse, ParsesOrRejects) {
  auto url = Url::parse(GetParam().input);
  EXPECT_EQ(url.has_value(), GetParam().valid);
  if (url) {
    EXPECT_EQ(url->scheme, GetParam().scheme);
    EXPECT_EQ(url->host, GetParam().host);
    EXPECT_EQ(url->port, GetParam().port);
    EXPECT_EQ(url->path, GetParam().path);
  }
}

TEST(Url, AuthorityIncludesPortWhenSet) {
  EXPECT_EQ(Url::parse("http://h:81/")->authority(), "h:81");
  EXPECT_EQ(Url::parse("http://h/")->authority(), "h");
}

// --- virtual network -------------------------------------------------------------

// Echo endpoint: returns the request body as the response body.
class EchoEndpoint final : public Endpoint {
 public:
  explicit EchoEndpoint(const security::Credential* cred = nullptr)
      : cred_(cred) {}
  HttpResponse handle(const HttpRequest& request) override {
    ++hits;
    soap::Envelope env = soap::Envelope::from_xml(request.body);
    soap::Envelope response;
    response.add_payload(xml::QName("urn:t", "Echo"))
        .set_text(env.payload() ? env.payload()->text() : "");
    return HttpResponse::ok(response.to_xml());
  }
  const security::Credential* tls_credential() const override { return cred_; }
  int hits = 0;

 private:
  const security::Credential* cred_;
};

soap::Envelope make_request(const std::string& text) {
  soap::Envelope env;
  env.add_payload(xml::QName("urn:t", "In")).set_text(text);
  return env;
}

TEST(VirtualNetwork, RoutesByAuthority) {
  VirtualNetwork net;
  EchoEndpoint a, b;
  net.bind("a.example", a);
  net.bind("b.example", b);
  VirtualCaller caller(net, {});
  caller.call("http://a.example/svc", make_request("x"));
  caller.call("http://b.example/svc", make_request("y"));
  caller.call("http://b.example/svc", make_request("z"));
  EXPECT_EQ(a.hits, 1);
  EXPECT_EQ(b.hits, 2);
}

TEST(VirtualNetwork, UnboundAuthorityThrows) {
  VirtualNetwork net;
  VirtualCaller caller(net, {});
  EXPECT_THROW(caller.call("http://nowhere/svc", make_request("x")),
               NetworkError);
}

TEST(VirtualNetwork, MalformedAddressThrows) {
  VirtualNetwork net;
  VirtualCaller caller(net, {});
  EXPECT_THROW(caller.call("not-a-url", make_request("x")), NetworkError);
}

TEST(VirtualNetwork, HttpTransportEchoes) {
  VirtualNetwork net;
  EchoEndpoint ep;
  net.bind("h", ep);
  VirtualCaller caller(net, {.transport = TransportKind::kHttp});
  soap::Envelope reply = caller.call("http://h/svc", make_request("ping"));
  EXPECT_EQ(reply.payload()->text(), "ping");
}

TEST(VirtualNetwork, SoapTcpTransportEchoes) {
  VirtualNetwork net;
  EchoEndpoint ep;
  net.bind("h", ep);
  VirtualCaller caller(net, {.transport = TransportKind::kSoapTcp});
  soap::Envelope reply = caller.call("soap.tcp://h/svc", make_request("ping"));
  EXPECT_EQ(reply.payload()->text(), "ping");
}

TEST(VirtualNetwork, MeterCountsMessagesAndBytes) {
  VirtualNetwork net(NetworkProfile::colocated());
  EchoEndpoint ep;
  net.bind("h", ep);
  WireMeter meter;
  VirtualCaller caller(net, {.meter = &meter});
  caller.call("http://h/svc", make_request("x"));
  EXPECT_EQ(meter.messages(), 2);  // request + response
  EXPECT_GT(meter.bytes(), 100);
  EXPECT_EQ(meter.connects(), 1);
  EXPECT_GT(meter.simulated_ms(), 0.0);
}

TEST(VirtualNetwork, KeepAlivePoolsConnections) {
  VirtualNetwork net;
  EchoEndpoint ep;
  net.bind("h", ep);
  WireMeter meter;
  VirtualCaller caller(net, {.keep_alive = true, .meter = &meter});
  for (int i = 0; i < 5; ++i) caller.call("http://h/svc", make_request("x"));
  EXPECT_EQ(meter.connects(), 1);
}

TEST(VirtualNetwork, NoKeepAliveReconnectsEveryCall) {
  VirtualNetwork net;
  EchoEndpoint ep;
  net.bind("h", ep);
  WireMeter meter;
  VirtualCaller caller(net, {.keep_alive = false, .meter = &meter});
  for (int i = 0; i < 5; ++i) caller.call("http://h/svc", make_request("x"));
  EXPECT_EQ(meter.connects(), 5);
}

TEST(VirtualNetwork, DistributedProfileChargesMore) {
  EchoEndpoint ep;
  WireMeter co_meter, dist_meter;
  {
    VirtualNetwork net(NetworkProfile::colocated());
    net.bind("h", ep);
    VirtualCaller caller(net, {.meter = &co_meter});
    caller.call("http://h/svc", make_request("x"));
  }
  {
    VirtualNetwork net(NetworkProfile::distributed());
    net.bind("h", ep);
    VirtualCaller caller(net, {.meter = &dist_meter});
    caller.call("http://h/svc", make_request("x"));
  }
  EXPECT_GT(dist_meter.simulated_ms(), co_meter.simulated_ms() * 10);
}

TEST(VirtualNetwork, HttpsTransportWorksAndCachesSessions) {
  std::mt19937_64 rng(20);
  auto ca = security::CertificateAuthority::create("CN=CA", 512, rng);
  security::Credential server = ca.issue("CN=server", 512, rng, 0,
                                         std::numeric_limits<common::TimeMs>::max());
  VirtualNetwork net;
  EchoEndpoint ep(&server);
  net.bind("h", ep);
  WireMeter meter;
  VirtualCaller caller(net, {.transport = TransportKind::kHttps,
                             .keep_alive = true,
                             .meter = &meter,
                             .anchor = &ca.root()});
  soap::Envelope reply = caller.call("https://h/svc", make_request("tls"));
  EXPECT_EQ(reply.payload()->text(), "tls");
  EXPECT_EQ(meter.handshakes(), 1);
  caller.call("https://h/svc", make_request("again"));
  EXPECT_EQ(meter.handshakes(), 1);  // channel reused, no new handshake

  // Dropping connections forces a new handshake, resumed from the cache.
  caller.reset_connections();
  caller.call("https://h/svc", make_request("resumed"));
  EXPECT_EQ(meter.handshakes(), 2);
}

TEST(VirtualNetwork, HttpsWithoutServerCredentialFails) {
  std::mt19937_64 rng(21);
  auto ca = security::CertificateAuthority::create("CN=CA", 512, rng);
  VirtualNetwork net;
  EchoEndpoint ep;  // no TLS credential
  net.bind("h", ep);
  VirtualCaller caller(net,
                       {.transport = TransportKind::kHttps, .anchor = &ca.root()});
  EXPECT_THROW(caller.call("https://h/svc", make_request("x")), NetworkError);
}

TEST(VirtualNetwork, HttpsWithoutAnchorFails) {
  std::mt19937_64 rng(22);
  auto ca = security::CertificateAuthority::create("CN=CA", 512, rng);
  security::Credential server = ca.issue("CN=server", 512, rng, 0,
                                         std::numeric_limits<common::TimeMs>::max());
  VirtualNetwork net;
  EchoEndpoint ep(&server);
  net.bind("h", ep);
  VirtualCaller caller(net, {.transport = TransportKind::kHttps});
  EXPECT_THROW(caller.call("https://h/svc", make_request("x")), NetworkError);
}

TEST(VirtualNetwork, UnbindRemovesEndpoint) {
  VirtualNetwork net;
  EchoEndpoint ep;
  net.bind("h", ep);
  net.unbind("h");
  VirtualCaller caller(net, {});
  EXPECT_THROW(caller.call("http://h/svc", make_request("x")), NetworkError);
}

// --- real TCP server ---------------------------------------------------------------

TEST(TcpServer, ServesSoapOverRealSockets) {
  EchoEndpoint ep;
  HttpServer server(ep, 0, 2);
  ASSERT_GT(server.port(), 0);

  TcpSoapCaller caller;
  std::string address = server.base_url() + "/svc";
  soap::Envelope reply = caller.call(address, make_request("over tcp"));
  EXPECT_EQ(reply.payload()->text(), "over tcp");
  server.stop();
}

TEST(TcpServer, HandlesConcurrentClients) {
  EchoEndpoint ep;
  HttpServer server(ep, 0, 4);
  std::string address = server.base_url() + "/svc";

  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&address, &ok, i] {
      TcpSoapCaller caller;
      soap::Envelope reply =
          caller.call(address, make_request("c" + std::to_string(i)));
      if (reply.payload()->text() == "c" + std::to_string(i)) ok.fetch_add(1);
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), 8);
}

TEST(TcpServer, ConnectToClosedPortFails) {
  std::uint16_t dead_port;
  {
    EchoEndpoint ep;
    HttpServer server(ep, 0, 1);
    dead_port = server.port();
    server.stop();
  }
  TcpSoapCaller caller;
  EXPECT_THROW(caller.call("http://127.0.0.1:" + std::to_string(dead_port) + "/",
                           make_request("x")),
               NetworkError);
}

TEST(TcpServer, StopIsIdempotent) {
  EchoEndpoint ep;
  HttpServer server(ep, 0, 1);
  server.stop();
  server.stop();
}

}  // namespace
}  // namespace gs::net
