// Tests for the "hello world" counter on both stacks — the paper's §4.1
// application, including the behavioural differences the evaluation
// explains (resource-cache reads, notification delivery paths).
#include <gtest/gtest.h>

#include "counter/wsrf_counter.hpp"
#include "counter/wst_counter.hpp"
#include "wsn/consumer.hpp"

namespace gs::counter {
namespace {

struct TwinFixture {
  net::VirtualNetwork net{net::NetworkProfile::colocated()};
  net::WireMeter meter;
  std::unique_ptr<net::VirtualCaller> caller;
  std::unique_ptr<net::VirtualCaller> http_sink;  // WSRF.NET-style notify
  std::unique_ptr<net::VirtualCaller> tcp_sink;   // Plumbwork-style notify
  std::unique_ptr<WsrfCounterDeployment> wsrf;
  std::unique_ptr<WstCounterDeployment> wst;
  wsn::NotificationConsumer consumer;

  TwinFixture(bool wsrf_cache = true) {
    caller = std::make_unique<net::VirtualCaller>(
        net, net::VirtualCaller::Options{.meter = &meter});
    http_sink = std::make_unique<net::VirtualCaller>(
        net, net::VirtualCaller::Options{.keep_alive = false, .meter = &meter});
    tcp_sink = std::make_unique<net::VirtualCaller>(
        net, net::VirtualCaller::Options{
                 .transport = net::TransportKind::kSoapTcp, .meter = &meter});
    wsrf = std::make_unique<WsrfCounterDeployment>(WsrfCounterDeployment::Params{
        .backend = std::make_unique<xmldb::MemoryBackend>(),
        .write_through_cache = wsrf_cache,
        .container = {},
        .notification_sink = http_sink.get(),
        .address_base = "http://wsrf.example",
    });
    wst = std::make_unique<WstCounterDeployment>(WstCounterDeployment::Params{
        .backend = std::make_unique<xmldb::MemoryBackend>(),
        .container = {},
        .notification_sink = tcp_sink.get(),
        .address_base = "http://wst.example",
        .subscription_file = {},
    });
    net.bind("wsrf.example", wsrf->container());
    net.bind("wst.example", wst->container());
    net.bind("client.example", consumer);
  }

  WsrfCounterClient wsrf_client() {
    return WsrfCounterClient(*caller, wsrf->counter_address());
  }
  WstCounterClient wst_client() {
    return WstCounterClient(*caller, wst->counter_address(),
                            wst->source_address());
  }
  soap::EndpointReference consumer_epr() {
    return soap::EndpointReference("http://client.example/sink");
  }
};

// --- functional parity: both stacks implement the same counter -------------------

TEST(Counter, WsrfLifecycle) {
  TwinFixture fx;
  auto client = fx.wsrf_client();
  client.create();
  EXPECT_EQ(client.get(), 0);
  client.set(41);
  EXPECT_EQ(client.get(), 41);
  EXPECT_EQ(client.double_value(), 82);
  client.destroy();
  EXPECT_THROW(client.get(), soap::SoapFault);
}

TEST(Counter, WstLifecycle) {
  TwinFixture fx;
  auto client = fx.wst_client();
  client.create();
  EXPECT_EQ(client.get(), 0);
  client.set(41);
  EXPECT_EQ(client.get(), 41);
  client.remove();
  EXPECT_THROW(client.get(), soap::SoapFault);
}

TEST(Counter, MultipleIndependentCounters) {
  TwinFixture fx;
  auto a = fx.wsrf_client();
  auto b = fx.wsrf_client();
  a.create();
  b.create();
  a.set(1);
  b.set(2);
  EXPECT_EQ(a.get(), 1);
  EXPECT_EQ(b.get(), 2);

  auto c = fx.wst_client();
  auto d = fx.wst_client();
  c.create();
  d.create();
  c.set(3);
  d.set(4);
  EXPECT_EQ(c.get(), 3);
  EXPECT_EQ(d.get(), 4);
}

TEST(Counter, ClientsCanAttachToExistingResources) {
  TwinFixture fx;
  auto creator = fx.wsrf_client();
  soap::EndpointReference epr = creator.create();
  creator.set(9);
  WsrfCounterClient other(*fx.caller, fx.wsrf->counter_address());
  other.attach(epr);
  EXPECT_EQ(other.get(), 9);
}

// --- notifications -----------------------------------------------------------------

TEST(Counter, WsrfNotifiesOnSet) {
  TwinFixture fx;
  auto client = fx.wsrf_client();
  client.create();
  auto sub = client.subscribe(fx.consumer_epr());
  client.set(5);
  ASSERT_TRUE(fx.consumer.wait_for(1, 2000));
  auto received = fx.consumer.received();
  EXPECT_EQ(received[0].topic, kValueChangedTopic);
  ASSERT_TRUE(received[0].payload);
  EXPECT_EQ(received[0].payload->child_local("Value")->text(), "5");
  // The message carries the counter EPR so multi-counter clients can
  // disambiguate.
  EXPECT_NE(received[0].payload->child_local("CounterEPR"), nullptr);
}

TEST(Counter, WstNotifiesOnSet) {
  TwinFixture fx;
  auto client = fx.wst_client();
  client.create();
  client.subscribe(fx.consumer_epr());
  client.set(6);
  ASSERT_TRUE(fx.consumer.wait_for(1, 2000));
  auto received = fx.consumer.received();
  ASSERT_TRUE(received[0].payload);
  EXPECT_EQ(received[0].payload->child_local("Value")->text(), "6");
}

TEST(Counter, UnsubscribedClientsGetNothing) {
  TwinFixture fx;
  auto client = fx.wsrf_client();
  client.create();
  auto sub = client.subscribe(fx.consumer_epr());
  sub.unsubscribe();
  client.set(1);
  EXPECT_EQ(fx.consumer.count(), 0u);
}

TEST(Counter, NoNotificationOnGet) {
  TwinFixture fx;
  auto client = fx.wsrf_client();
  client.create();
  client.subscribe(fx.consumer_epr());
  (void)client.get();
  (void)client.get();
  EXPECT_EQ(fx.consumer.count(), 0u);
}

// --- the database-read asymmetry the paper measures --------------------------------

TEST(Counter, WsrfSetSkipsDatabaseReadViaCache) {
  // "The WSRF.NET implementation through use of its resource cache is able
  // to avoid this extra database read and thus performs faster for set
  // operations."
  TwinFixture fx;
  auto client = fx.wsrf_client();
  client.create();
  fx.wsrf->db().reset_stats();
  client.set(10);
  xmldb::DbStats stats = fx.wsrf->db().stats();
  EXPECT_EQ(stats.backend_reads, 0u);  // served from the write-through cache
}

TEST(Counter, WstSetAlwaysReadsOldRepresentation) {
  // "setting the counter's value causes the old representation ... to be
  // read from the database and updated with the new value before being
  // stored."
  TwinFixture fx;
  auto client = fx.wst_client();
  client.create();
  fx.wst->db().reset_stats();
  client.set(10);
  xmldb::DbStats stats = fx.wst->db().stats();
  EXPECT_GE(stats.backend_reads, 1u);
  EXPECT_GE(stats.stores, 1u);
}

TEST(Counter, WsrfWithoutCacheReadsLikeWst) {
  // Ablation: disable the cache and the WSRF counter pays the same read.
  TwinFixture fx(/*wsrf_cache=*/false);
  auto client = fx.wsrf_client();
  client.create();
  fx.wsrf->db().reset_stats();
  client.set(10);
  EXPECT_GE(fx.wsrf->db().stats().backend_reads, 1u);
}

// --- spec-surface differences ---------------------------------------------------------

TEST(Counter, WsrfCreateIsServiceSpecific) {
  // WSRF has no spec-defined create: the counter's create action lives in
  // the *counter's* namespace, not a WSRF one.
  EXPECT_TRUE(wsrf_counter_create_action().starts_with(soap::ns::kCounter));
}

TEST(Counter, WstCreateIsSpecUniform) {
  // WS-Transfer's Create is the spec operation; any WS-Transfer client can
  // create without knowing counter-specific actions.
  TwinFixture fx;
  wst::TransferProxy generic(*fx.caller,
                             soap::EndpointReference(fx.wst->counter_address()));
  auto doc = std::make_unique<xml::Element>(
      xml::QName(soap::ns::kCounter, "Counter"));
  doc->append_element(cv_qname()).set_text("0");
  auto result = generic.create(std::move(doc));
  EXPECT_FALSE(result.resource.empty());
}

TEST(Counter, WstClientMustKnowSchemaOutOfBand) {
  // Upload a document that is NOT counter-shaped: the service stores it
  // happily (xsd:any), and only the typed client chokes when reading.
  TwinFixture fx;
  wst::TransferProxy generic(*fx.caller,
                             soap::EndpointReference(fx.wst->counter_address()));
  auto junk = std::make_unique<xml::Element>(xml::QName("urn:junk", "Blob"));
  junk->set_text("not a counter");
  auto result = generic.create(std::move(junk));

  WstCounterClient typed(*fx.caller, fx.wst->counter_address(),
                         fx.wst->source_address());
  typed.attach(result.resource);
  EXPECT_THROW(typed.get(), soap::SoapFault);  // schema drift detected late
}

// --- malformed numeric state (strict-parsing sweep) -------------------------------

// WS-Transfer stores documents as xsd:any, so nothing stops a peer putting
// non-numeric text where the counter value goes. The typed client must
// answer with a fault, not crash the process the way std::stoi did.
TEST(Counter, WstMalformedValueFaultsInsteadOfCrashing) {
  TwinFixture fx;
  for (const char* bad : {"12abc", "boom", "", "99999999999999999999"}) {
    wst::TransferProxy generic(
        *fx.caller, soap::EndpointReference(fx.wst->counter_address()));
    auto doc = std::make_unique<xml::Element>(
        xml::QName(soap::ns::kCounter, "Counter"));
    doc->append_element(cv_qname()).set_text(bad);
    auto result = generic.create(std::move(doc));

    WstCounterClient typed(*fx.caller, fx.wst->counter_address(),
                           fx.wst->source_address());
    typed.attach(result.resource);
    EXPECT_THROW(typed.get(), soap::SoapFault) << "cv=" << bad;
  }
}

TEST(Counter, WsrfMalformedPropertyFaultsInsteadOfCrashing) {
  TwinFixture fx;
  auto client = fx.wsrf_client();
  soap::EndpointReference epr = client.create();
  wsrf::WsResourceProxy raw(*fx.caller, epr);
  for (const char* bad : {"12abc", "boom", "", "99999999999999999999"}) {
    raw.update_property_text(cv_qname(), bad);
    EXPECT_THROW(client.get(), soap::SoapFault) << "cv=" << bad;
  }
  raw.update_property_text(cv_qname(), "5");
  EXPECT_EQ(client.get(), 5);
}

TEST(Counter, WsrfComputedPropertyOverMalformedStateIsSenderFault) {
  // DoubleValue is computed server-side from the stored cv; garbage there
  // used to throw std::invalid_argument inside the property handler. Now
  // the server answers a Sender fault (the stored request state is bad).
  TwinFixture fx;
  auto client = fx.wsrf_client();
  soap::EndpointReference epr = client.create();
  wsrf::WsResourceProxy raw(*fx.caller, epr);
  raw.update_property_text(cv_qname(), "boom");
  try {
    client.double_value();
    FAIL() << "expected SoapFault";
  } catch (const soap::SoapFault& fault) {
    EXPECT_EQ(fault.fault().code, "Sender");
  }
}

TEST(Counter, WsrfResourceLifetimeAvailable) {
  // WSRF counters inherit scheduled termination from the imported
  // WS-ResourceLifetime port type — the WS-Transfer counter has no such
  // operation surface at all.
  TwinFixture fx;
  auto client = fx.wsrf_client();
  soap::EndpointReference epr = client.create();
  wsrf::WsResourceProxy rl(*fx.caller, epr);
  EXPECT_EQ(rl.set_termination_time(container::LifetimeManager::kNever),
            container::LifetimeManager::kNever);
}

}  // namespace
}  // namespace gs::counter
