// Tests for the common substrate: UUIDs, encodings, clocks, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>

#include "common/clock.hpp"
#include "common/encoding.hpp"
#include "common/parse.hpp"
#include "common/threadpool.hpp"
#include "common/uuid.hpp"

namespace gs::common {
namespace {

// --- uuid --------------------------------------------------------------------

TEST(Uuid, HasCanonicalShape) {
  std::string id = new_uuid();
  ASSERT_EQ(id.size(), 36u);
  EXPECT_EQ(id[8], '-');
  EXPECT_EQ(id[13], '-');
  EXPECT_EQ(id[18], '-');
  EXPECT_EQ(id[23], '-');
  EXPECT_EQ(id[14], '4');  // version nibble
  // Variant nibble is one of 8, 9, a, b.
  EXPECT_TRUE(std::string("89ab").find(id[19]) != std::string::npos);
}

TEST(Uuid, IsUnique) {
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(seen.insert(new_uuid()).second);
  }
}

TEST(Uuid, UrnForm) {
  EXPECT_TRUE(new_urn_uuid().starts_with("urn:uuid:"));
}

TEST(Uuid, ThreadSafe) {
  std::vector<std::thread> threads;
  std::mutex mu;
  std::set<std::string> seen;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        std::string id = new_uuid();
        std::lock_guard lock(mu);
        seen.insert(id);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(seen.size(), 800u);
}

// --- hex ---------------------------------------------------------------------

TEST(Hex, RoundTrip) {
  std::vector<std::uint8_t> bytes = {0x00, 0x01, 0xAB, 0xFF, 0x7E};
  std::string hex = hex_encode(bytes);
  EXPECT_EQ(hex, "0001abff7e");
  auto back = hex_decode(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bytes);
}

TEST(Hex, DecodesUppercase) {
  auto bytes = hex_decode("ABCDEF");
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ((*bytes)[0], 0xAB);
}

TEST(Hex, RejectsOddLength) { EXPECT_FALSE(hex_decode("abc").has_value()); }
TEST(Hex, RejectsNonHex) { EXPECT_FALSE(hex_decode("zz").has_value()); }
TEST(Hex, EmptyIsEmpty) {
  EXPECT_EQ(hex_encode(std::span<const std::uint8_t>{}), "");
  EXPECT_EQ(hex_decode("")->size(), 0u);
}

// --- base64 ------------------------------------------------------------------

struct B64Case {
  std::string plain;
  std::string encoded;
};

class Base64Vectors : public ::testing::TestWithParam<B64Case> {};

// RFC 4648 test vectors.
INSTANTIATE_TEST_SUITE_P(
    Rfc4648, Base64Vectors,
    ::testing::Values(B64Case{"", ""}, B64Case{"f", "Zg=="},
                      B64Case{"fo", "Zm8="}, B64Case{"foo", "Zm9v"},
                      B64Case{"foob", "Zm9vYg=="}, B64Case{"fooba", "Zm9vYmE="},
                      B64Case{"foobar", "Zm9vYmFy"}));

TEST_P(Base64Vectors, Encode) {
  EXPECT_EQ(base64_encode(as_bytes(GetParam().plain)), GetParam().encoded);
}

TEST_P(Base64Vectors, Decode) {
  auto bytes = base64_decode(GetParam().encoded);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(std::string(bytes->begin(), bytes->end()), GetParam().plain);
}

TEST(Base64, IgnoresWhitespace) {
  auto bytes = base64_decode("Zm9v\nYmFy");
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(std::string(bytes->begin(), bytes->end()), "foobar");
}

TEST(Base64, RejectsGarbage) { EXPECT_FALSE(base64_decode("!!!!").has_value()); }

TEST(Base64, RejectsDataAfterPadding) {
  EXPECT_FALSE(base64_decode("Zg==Zg").has_value());
}

TEST(Base64, BinaryRoundTrip) {
  std::vector<std::uint8_t> bytes(257);
  for (size_t i = 0; i < bytes.size(); ++i) bytes[i] = static_cast<std::uint8_t>(i);
  auto back = base64_decode(base64_encode(bytes));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bytes);
}

// --- clocks ------------------------------------------------------------------

TEST(Clock, RealClockAdvances) {
  RealClock& clock = RealClock::instance();
  TimeMs a = clock.now();
  TimeMs b = clock.now();
  EXPECT_GE(b, a);
}

TEST(Clock, ManualClockIsExplicit) {
  ManualClock clock(100);
  EXPECT_EQ(clock.now(), 100);
  clock.advance(50);
  EXPECT_EQ(clock.now(), 150);
  clock.set(10);
  EXPECT_EQ(clock.now(), 10);
}

// --- thread pool -------------------------------------------------------------

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.drain();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DrainIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.drain();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { count.fetch_add(1); });
  pool.drain();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.drain();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 20);
}

// --- strict numeric parsing --------------------------------------------------

TEST(ParseNumber, AcceptsWholeDecimalIntegers) {
  EXPECT_EQ(parse_number<int>("42"), 42);
  EXPECT_EQ(parse_number<int>("-7"), -7);
  EXPECT_EQ(parse_number<int>("0"), 0);
  EXPECT_EQ(parse_number<std::int64_t>("9223372036854775807"),
            9223372036854775807LL);
}

TEST(ParseNumber, RejectsGarbage) {
  EXPECT_FALSE(parse_number<int>("boom").has_value());
  EXPECT_FALSE(parse_number<int>("fifteen").has_value());
}

TEST(ParseNumber, RejectsEmpty) {
  EXPECT_FALSE(parse_number<int>("").has_value());
}

TEST(ParseNumber, RejectsTrailingJunk) {
  // The std::stoi behaviour this replaces parsed "42abc" as 42.
  EXPECT_FALSE(parse_number<int>("42abc").has_value());
  EXPECT_FALSE(parse_number<int>("7 ").has_value());
  EXPECT_FALSE(parse_number<int>(" 7").has_value());
  EXPECT_FALSE(parse_number<int>("1.5").has_value());
}

TEST(ParseNumber, RejectsOverflow) {
  EXPECT_FALSE(parse_number<int>("99999999999999999999").has_value());
  EXPECT_FALSE(parse_number<std::int64_t>("99999999999999999999").has_value());
  EXPECT_FALSE(parse_number<int>("-99999999999999999999").has_value());
}

TEST(ParseNumber, RejectsNegativeForUnsigned) {
  EXPECT_FALSE(parse_number<unsigned>("-1").has_value());
  EXPECT_FALSE(parse_number<std::uint64_t>("-5").has_value());
}

}  // namespace
}  // namespace gs::common
