// Tests for WS-Eventing: the subscription store (flat-XML persistence),
// Subscribe/Renew/GetStatus/Unsubscribe, filter dialects, delivery modes,
// expiration and SubscriptionEnd.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "container/container.hpp"
#include "net/virtual_network.hpp"
#include "telemetry/event_log.hpp"
#include "wse/client.hpp"
#include "wse/service.hpp"
#include "wsn/consumer.hpp"
#include "xml/parser.hpp"

namespace gs::wse {
namespace {

const char* kNs = "urn:app";
xml::QName app(const char* local) { return {kNs, local}; }

// --- the subscription store -------------------------------------------------------

TEST(Store, AddGetRemove) {
  SubscriptionStore store;
  WseSubscription sub;
  sub.notify_to = soap::EndpointReference("http://c/sink");
  sub.expires = WseSubscription::kNever;
  std::string id = store.add(std::move(sub));
  EXPECT_EQ(store.size(), 1u);
  auto got = store.get(id);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->notify_to.address(), "http://c/sink");
  EXPECT_TRUE(store.remove(id));
  EXPECT_FALSE(store.remove(id));
  EXPECT_FALSE(store.get(id).has_value());
}

TEST(Store, ActiveSkipsExpired) {
  SubscriptionStore store;
  WseSubscription live;
  live.notify_to = soap::EndpointReference("http://a");
  live.expires = 1000;
  store.add(std::move(live));
  WseSubscription forever;
  forever.notify_to = soap::EndpointReference("http://b");
  forever.expires = WseSubscription::kNever;
  store.add(std::move(forever));
  EXPECT_EQ(store.active(500).size(), 2u);
  EXPECT_EQ(store.active(1500).size(), 1u);
}

TEST(Store, PurgeReturnsExpired) {
  SubscriptionStore store;
  WseSubscription sub;
  sub.notify_to = soap::EndpointReference("http://a");
  sub.end_to = soap::EndpointReference("http://a/end");
  sub.expires = 100;
  store.add(std::move(sub));
  auto purged = store.purge_expired(200);
  ASSERT_EQ(purged.size(), 1u);
  EXPECT_EQ(purged[0].end_to.address(), "http://a/end");
  EXPECT_EQ(store.size(), 0u);
}

TEST(Store, RenewUpdatesExpiry) {
  SubscriptionStore store;
  WseSubscription sub;
  sub.notify_to = soap::EndpointReference("http://a");
  sub.expires = 100;
  std::string id = store.add(std::move(sub));
  EXPECT_TRUE(store.renew(id, 9000));
  EXPECT_EQ(store.get(id)->expires, 9000);
  EXPECT_FALSE(store.renew("bogus", 1));
}

TEST(Store, FlatXmlFilePersistence) {
  // The Plumbwork implementation "maintains the subscription lists in a
  // flat XML file" — the store must survive a restart.
  auto path = std::filesystem::temp_directory_path() / "gs-wse-subs.xml";
  std::filesystem::remove(path);
  std::string id;
  {
    SubscriptionStore store(path);
    WseSubscription sub;
    sub.notify_to = soap::EndpointReference("http://c/sink");
    sub.dialect = FilterDialect::kTopic;
    sub.filter = "job/done";
    sub.expires = 123456;
    sub.delivery_mode = kPushMode;
    id = store.add(std::move(sub));
  }
  {
    SubscriptionStore store(path);
    EXPECT_EQ(store.size(), 1u);
    auto sub = store.get(id);
    ASSERT_TRUE(sub.has_value());
    EXPECT_EQ(sub->notify_to.address(), "http://c/sink");
    EXPECT_EQ(sub->dialect, FilterDialect::kTopic);
    EXPECT_EQ(sub->filter, "job/done");
    EXPECT_EQ(sub->expires, 123456);
    // New ids don't collide with loaded ones.
    WseSubscription another;
    another.notify_to = soap::EndpointReference("http://d");
    EXPECT_NE(store.add(std::move(another)), id);
  }
  std::filesystem::remove(path);
}

TEST(Store, MalformedPersistedExpiresDropsOnlyThatEntry) {
  // A corrupt flat-file Expires used to throw std::invalid_argument out of
  // std::stoll inside the constructor, so one damaged line killed the
  // whole subscription manager at startup. Now the bad entry is dropped
  // with a warning and every other subscription survives.
  auto path = std::filesystem::temp_directory_path() / "gs-wse-subs3.xml";
  std::filesystem::remove(path);
  std::string good_id, bad_id;
  {
    SubscriptionStore store(path);
    WseSubscription good;
    good.notify_to = soap::EndpointReference("http://good/sink");
    good.expires = 111;
    good_id = store.add(std::move(good));
    WseSubscription bad;
    bad.notify_to = soap::EndpointReference("http://bad/sink");
    bad.expires = 222;
    bad_id = store.add(std::move(bad));
  }
  // Corrupt the persisted Expires of the second entry on disk.
  std::string content;
  {
    std::ifstream in(path);
    content.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>{});
  }
  auto at = content.find(">222<");
  ASSERT_NE(at, std::string::npos);
  content.replace(at, 5, ">2x2<");
  {
    std::ofstream out(path, std::ios::trunc);
    out << content;
  }

  std::uint64_t warns =
      telemetry::EventLog::global().count(telemetry::Level::kWarn);
  SubscriptionStore store(path);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.get(good_id).has_value());
  EXPECT_FALSE(store.get(bad_id).has_value());
  EXPECT_EQ(telemetry::EventLog::global().count(telemetry::Level::kWarn),
            warns + 1);
  std::filesystem::remove(path);
}

TEST(Store, FileIsValidXml) {
  auto path = std::filesystem::temp_directory_path() / "gs-wse-subs2.xml";
  std::filesystem::remove(path);
  SubscriptionStore store(path);
  WseSubscription sub;
  sub.notify_to = soap::EndpointReference("http://c/sink");
  store.add(std::move(sub));
  std::ifstream in(path);
  std::string content(std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>{});
  EXPECT_NO_THROW(xml::parse(content));
  std::filesystem::remove(path);
}

// --- filter semantics ----------------------------------------------------------------

TEST(WseFilter, TopicDialectIsExactMatch) {
  WseSubscription sub;
  sub.dialect = FilterDialect::kTopic;
  sub.filter = "job/done";
  auto ev = xml::parse_element("<e/>");
  EXPECT_TRUE(sub.accepts("job/done", *ev));
  EXPECT_FALSE(sub.accepts("job/done/extra", *ev));
  EXPECT_FALSE(sub.accepts("job", *ev));
}

TEST(WseFilter, XPathDialectEvaluatesContent) {
  WseSubscription sub;
  sub.dialect = FilterDialect::kXPath;
  sub.filter = "/Event[severity='high']";
  EXPECT_TRUE(sub.accepts("any", *xml::parse_element(
                                      "<Event><severity>high</severity></Event>")));
  EXPECT_FALSE(sub.accepts("any", *xml::parse_element(
                                      "<Event><severity>low</severity></Event>")));
}

TEST(WseFilter, NoFilterAcceptsEverything) {
  WseSubscription sub;
  EXPECT_TRUE(sub.accepts("anything", *xml::parse_element("<e/>")));
}

TEST(WseFilter, DialectUriRoundTrip) {
  EXPECT_EQ(dialect_from_uri(dialect_uri(FilterDialect::kXPath)),
            FilterDialect::kXPath);
  EXPECT_EQ(dialect_from_uri(dialect_uri(FilterDialect::kTopic)),
            FilterDialect::kTopic);
  EXPECT_EQ(dialect_from_uri(""), FilterDialect::kNone);
  EXPECT_THROW(dialect_from_uri("urn:bogus"), std::invalid_argument);
}

// --- end-to-end fixture -----------------------------------------------------------------

struct WseFixture {
  common::ManualClock clock{10'000};
  net::VirtualNetwork net;
  container::Container container{{.clock = &clock}};
  SubscriptionStore store;
  std::unique_ptr<WseSubscriptionManagerService> manager;
  std::unique_ptr<EventSourceService> source;
  std::unique_ptr<net::VirtualCaller> caller;
  std::unique_ptr<net::VirtualCaller> tcp_sink;
  std::unique_ptr<NotificationManager> notifier;
  wsn::NotificationConsumer consumer;

  WseFixture() {
    manager = std::make_unique<WseSubscriptionManagerService>(
        store, "http://s/Subscriptions", clock);
    source = std::make_unique<EventSourceService>("Events", store, *manager, clock);
    caller = std::make_unique<net::VirtualCaller>(net, net::VirtualCaller::Options{});
    tcp_sink = std::make_unique<net::VirtualCaller>(
        net, net::VirtualCaller::Options{.transport = net::TransportKind::kSoapTcp});
    notifier = std::make_unique<NotificationManager>(store, *tcp_sink, clock);
    container.deploy("/Events", *source);
    container.deploy("/Subscriptions", *manager);
    net.bind("s", container);
    net.bind("c", consumer);
  }

  EventSourceProxy source_proxy() {
    return EventSourceProxy(*caller, soap::EndpointReference("http://s/Events"));
  }

  std::unique_ptr<xml::Element> event(const char* severity = "low") {
    auto e = std::make_unique<xml::Element>(app("Event"));
    e->append_element(app("severity")).set_text(severity);
    return e;
  }
};

TEST(Eventing, SubscribeAndReceivePush) {
  WseFixture fx;
  auto handle = fx.source_proxy().subscribe(
      soap::EndpointReference("http://c/sink"));
  EXPECT_EQ(handle.expires, WseSubscription::kNever);
  auto ev = fx.event();
  EXPECT_EQ(fx.notifier->notify("t", *ev, "urn:app/Event"), 1u);
  ASSERT_TRUE(fx.consumer.wait_for(1, 1000));
  // WS-Eventing events are bare messages — no Notify wrapper, so the
  // consumer sees them as "raw".
  auto received = fx.consumer.received();
  EXPECT_TRUE(received[0].raw);
  ASSERT_TRUE(received[0].payload);
  EXPECT_EQ(received[0].payload->name(), app("Event"));
}

TEST(Eventing, TopicFilterRestrictsDelivery) {
  WseFixture fx;
  fx.source_proxy().subscribe(soap::EndpointReference("http://c/sink"),
                              FilterDialect::kTopic, "job/done");
  auto ev = fx.event();
  EXPECT_EQ(fx.notifier->notify("job/started", *ev, "urn:a"), 0u);
  EXPECT_EQ(fx.notifier->notify("job/done", *ev, "urn:a"), 1u);
}

TEST(Eventing, XPathFilterPerResourceSubscription) {
  // "a filter can be used for registering a subscription per resource" —
  // subscribe to events for one counter only.
  WseFixture fx;
  fx.source_proxy().subscribe(soap::EndpointReference("http://c/sink"),
                              FilterDialect::kXPath,
                              "/Event[resource='counter-7']");
  auto mine = xml::parse_element("<Event><resource>counter-7</resource></Event>");
  auto other = xml::parse_element("<Event><resource>counter-9</resource></Event>");
  EXPECT_EQ(fx.notifier->notify("t", *mine, "urn:a"), 1u);
  EXPECT_EQ(fx.notifier->notify("t", *other, "urn:a"), 0u);
}

TEST(Eventing, BadXPathFilterFaultsAtSubscribe) {
  WseFixture fx;
  EXPECT_THROW(fx.source_proxy().subscribe(
                   soap::EndpointReference("http://c/sink"),
                   FilterDialect::kXPath, "broken["),
               soap::SoapFault);
}

TEST(Eventing, UnknownFilterDialectFaults) {
  // The spec fault for unsupported dialects.
  WseFixture fx;

  class RawProxy : public container::ProxyBase {
   public:
    using container::ProxyBase::ProxyBase;
    void subscribe_with_dialect(const std::string& dialect) {
      auto req = std::make_unique<xml::Element>(
          xml::QName(soap::ns::kEventing, "Subscribe"));
      auto& delivery = req->append_element(
          xml::QName(soap::ns::kEventing, "Delivery"));
      delivery.set_attr("Mode", kPushMode);
      delivery.append(soap::EndpointReference("http://c/sink")
                          .to_xml(xml::QName(soap::ns::kEventing, "NotifyTo")));
      auto& filter = req->append_element(
          xml::QName(soap::ns::kEventing, "Filter"));
      filter.set_attr("Dialect", dialect);
      filter.set_text("whatever");
      invoke(actions::kSubscribe, std::move(req));
    }
  };
  RawProxy proxy(*fx.caller, soap::EndpointReference("http://s/Events"));
  try {
    proxy.subscribe_with_dialect("urn:unknown");
    FAIL() << "expected fault";
  } catch (const soap::SoapFault& f) {
    EXPECT_EQ(f.fault().subcode, "wse:FilteringRequestedUnavailable");
  }
}

TEST(Eventing, NonPushDeliveryModeFaults) {
  WseFixture fx;

  class RawProxy : public container::ProxyBase {
   public:
    using container::ProxyBase::ProxyBase;
    void subscribe_with_mode(const std::string& mode) {
      auto req = std::make_unique<xml::Element>(
          xml::QName(soap::ns::kEventing, "Subscribe"));
      auto& delivery = req->append_element(
          xml::QName(soap::ns::kEventing, "Delivery"));
      delivery.set_attr("Mode", mode);
      delivery.append(soap::EndpointReference("http://c/sink")
                          .to_xml(xml::QName(soap::ns::kEventing, "NotifyTo")));
      invoke(actions::kSubscribe, std::move(req));
    }
  };
  RawProxy proxy(*fx.caller, soap::EndpointReference("http://s/Events"));
  try {
    proxy.subscribe_with_mode("urn:custom-pull-mode");
    FAIL() << "expected fault";
  } catch (const soap::SoapFault& f) {
    EXPECT_EQ(f.fault().subcode, "wse:DeliveryModeRequestedUnavailable");
  }
}

// Regression: non-numeric Expires used to reach std::stoll and escape as an
// uncaught std::invalid_argument instead of faulting.
TEST(Eventing, GarbageExpiresFaultsAtSubscribe) {
  WseFixture fx;
  soap::Envelope request;
  soap::MessageInfo info;
  info.target(soap::EndpointReference("http://s/Events"));
  info.action = actions::kSubscribe;
  info.message_id = "urn:test:garbage-expires";
  request.write_addressing(info);
  xml::Element& sub =
      request.add_payload({soap::ns::kEventing, "Subscribe"});
  xml::Element& delivery =
      sub.append_element({soap::ns::kEventing, "Delivery"});
  delivery.append(soap::EndpointReference("http://c/sink")
                      .to_xml({soap::ns::kEventing, "NotifyTo"}));
  sub.append_element({soap::ns::kEventing, "Expires"}).set_text("whenever");
  soap::Envelope response = fx.caller->call("http://s/Events", request);
  ASSERT_TRUE(response.is_fault());
  EXPECT_EQ(response.fault().code, "Sender");
  EXPECT_TRUE(fx.store.active(fx.clock.now()).empty());
}

TEST(Eventing, GetStatusReportsExpiry) {
  WseFixture fx;
  auto handle = fx.source_proxy().subscribe(
      soap::EndpointReference("http://c/sink"), FilterDialect::kNone, "",
      /*duration_ms=*/5000);
  EXPECT_EQ(handle.expires, 15'000);  // clock at 10'000 + 5000
  WseSubscriptionProxy sub(*fx.caller, handle.manager);
  EXPECT_EQ(sub.get_status(), 15'000);
}

TEST(Eventing, RenewExtendsSubscription) {
  WseFixture fx;
  auto handle = fx.source_proxy().subscribe(
      soap::EndpointReference("http://c/sink"), FilterDialect::kNone, "", 1000);
  WseSubscriptionProxy sub(*fx.caller, handle.manager);
  EXPECT_EQ(sub.renew(60'000), 70'000);
  EXPECT_EQ(sub.get_status(), 70'000);
  // Renewing to infinite.
  EXPECT_EQ(sub.renew(-1), WseSubscription::kNever);
}

TEST(Eventing, UnsubscribeStopsDelivery) {
  WseFixture fx;
  auto handle = fx.source_proxy().subscribe(
      soap::EndpointReference("http://c/sink"));
  WseSubscriptionProxy sub(*fx.caller, handle.manager);
  sub.unsubscribe();
  auto ev = fx.event();
  EXPECT_EQ(fx.notifier->notify("t", *ev, "urn:a"), 0u);
  EXPECT_THROW(sub.get_status(), soap::SoapFault);
}

TEST(Eventing, ExpiredSubscriptionGetsSubscriptionEnd) {
  WseFixture fx;
  wsn::NotificationConsumer end_sink;
  fx.net.bind("end", end_sink);
  fx.source_proxy().subscribe(soap::EndpointReference("http://c/sink"),
                              FilterDialect::kNone, "",
                              /*duration_ms=*/1000,
                              soap::EndpointReference("http://end/sink"));
  fx.clock.advance(2000);
  auto ev = fx.event();
  EXPECT_EQ(fx.notifier->notify("t", *ev, "urn:a"), 0u);
  // The EndTo sink received SubscriptionEnd.
  ASSERT_TRUE(end_sink.wait_for(1, 1000));
  auto received = end_sink.received();
  ASSERT_TRUE(received[0].payload);
  EXPECT_EQ(received[0].payload->name().local(), "SubscriptionEnd");
}

TEST(Eventing, SubscriptionNotTiedToResource) {
  // "Unlike WS-Notification, a subscription is not associated with a
  // resource, but only with a service": one subscription sees events for
  // every resource the service publishes about.
  WseFixture fx;
  fx.source_proxy().subscribe(soap::EndpointReference("http://c/sink"));
  auto ev1 = xml::parse_element("<Event><resource>r1</resource></Event>");
  auto ev2 = xml::parse_element("<Event><resource>r2</resource></Event>");
  EXPECT_EQ(fx.notifier->notify("t", *ev1, "urn:a"), 1u);
  EXPECT_EQ(fx.notifier->notify("t", *ev2, "urn:a"), 1u);
  EXPECT_TRUE(fx.consumer.wait_for(2, 1000));
}

TEST(Eventing, ManagerSharedBetweenSourceAndManagerServices) {
  // The subscription manager "may be the same web service as the event
  // source, or a separate service" — here they are separate container
  // paths over one store, and the handle returned by Subscribe points at
  // the manager, not the source.
  WseFixture fx;
  auto handle = fx.source_proxy().subscribe(
      soap::EndpointReference("http://c/sink"));
  EXPECT_EQ(handle.manager.address(), "http://s/Subscriptions");
  EXPECT_TRUE(handle.manager.reference_property(identifier_qname()).has_value());
}

}  // namespace
}  // namespace gs::wse
