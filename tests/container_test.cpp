// Tests for the resource-aware container: dispatch, the security/policy
// handler, lifetime management, and the client proxy base.
#include <gtest/gtest.h>

#include "container/container.hpp"
#include "container/proxy.hpp"
#include "net/virtual_network.hpp"

namespace gs::container {
namespace {

const char* kNs = "urn:test";
xml::QName t(const char* local) { return {kNs, local}; }

class PingService : public Service {
 public:
  PingService() : Service("Ping") {
    register_operation("urn:test/Ping", [this](RequestContext& ctx) {
      ++pings;
      last_identity = ctx.identity ? ctx.identity->subject_dn : "";
      soap::Envelope r = make_response(ctx, "urn:test/PingResponse");
      r.add_payload(t("Pong")).set_text("pong");
      return r;
    });
    register_operation("urn:test/Fail", [](RequestContext&) -> soap::Envelope {
      throw soap::SoapFault("Sender", "deliberate failure");
    });
    register_operation("urn:test/Crash", [](RequestContext&) -> soap::Envelope {
      throw std::runtime_error("unexpected internal error");
    });
  }
  int pings = 0;
  std::string last_identity;
};

soap::Envelope make_request(const std::string& action) {
  soap::Envelope env;
  soap::MessageInfo info;
  info.action = action;
  info.message_id = "urn:uuid:test-1";
  env.write_addressing(info);
  env.add_payload(t("In"));
  return env;
}

// --- dispatch ----------------------------------------------------------------

TEST(Dispatch, RoutesToRegisteredOperation) {
  Container container({});
  PingService svc;
  container.deploy("/Ping", svc);
  soap::Envelope r = container.process(make_request("urn:test/Ping"), "/Ping");
  EXPECT_FALSE(r.is_fault());
  EXPECT_EQ(r.payload()->text(), "pong");
  EXPECT_EQ(svc.pings, 1);
}

TEST(Dispatch, ResponseRelatesToRequest) {
  Container container({});
  PingService svc;
  container.deploy("/Ping", svc);
  soap::Envelope r = container.process(make_request("urn:test/Ping"), "/Ping");
  EXPECT_EQ(r.read_addressing().relates_to, "urn:uuid:test-1");
}

TEST(Dispatch, UnknownPathFaults) {
  Container container({});
  soap::Envelope r = container.process(make_request("urn:test/Ping"), "/Nope");
  ASSERT_TRUE(r.is_fault());
  EXPECT_EQ(r.fault().code, "Sender");
}

TEST(Dispatch, UnknownActionFaults) {
  Container container({});
  PingService svc;
  container.deploy("/Ping", svc);
  soap::Envelope r = container.process(make_request("urn:test/Nope"), "/Ping");
  ASSERT_TRUE(r.is_fault());
  EXPECT_NE(r.fault().reason.find("does not support action"), std::string::npos);
}

TEST(Dispatch, SoapFaultFromHandlerBecomesFaultEnvelope) {
  Container container({});
  PingService svc;
  container.deploy("/Ping", svc);
  soap::Envelope r = container.process(make_request("urn:test/Fail"), "/Ping");
  ASSERT_TRUE(r.is_fault());
  EXPECT_EQ(r.fault().reason, "deliberate failure");
  EXPECT_EQ(r.fault().code, "Sender");
}

TEST(Dispatch, UnexpectedExceptionBecomesReceiverFault) {
  Container container({});
  PingService svc;
  container.deploy("/Ping", svc);
  soap::Envelope r = container.process(make_request("urn:test/Crash"), "/Ping");
  ASSERT_TRUE(r.is_fault());
  EXPECT_EQ(r.fault().code, "Receiver");
}

TEST(Dispatch, UndeployRemovesService) {
  Container container({});
  PingService svc;
  container.deploy("/Ping", svc);
  container.undeploy("/Ping");
  EXPECT_TRUE(container.process(make_request("urn:test/Ping"), "/Ping").is_fault());
}

TEST(Dispatch, ServiceListsItsActions) {
  PingService svc;
  EXPECT_TRUE(svc.supports("urn:test/Ping"));
  EXPECT_FALSE(svc.supports("urn:test/Nope"));
  EXPECT_EQ(svc.actions().size(), 3u);
}

TEST(Dispatch, HttpPipelineMapsFaultsTo500) {
  Container container({});
  PingService svc;
  container.deploy("/Ping", svc);

  net::HttpRequest http;
  http.path = "/Ping";
  http.body = make_request("urn:test/Fail").to_xml();
  net::HttpResponse resp = container.handle(http);
  EXPECT_EQ(resp.status, 500);
  EXPECT_TRUE(soap::Envelope::from_xml(resp.body_str()).is_fault());

  http.body = make_request("urn:test/Ping").to_xml();
  EXPECT_EQ(container.handle(http).status, 200);
}

TEST(Dispatch, MalformedBodyIs400) {
  Container container({});
  net::HttpRequest http;
  http.path = "/Ping";
  http.body = "this is not xml";
  EXPECT_EQ(container.handle(http).status, 400);
}

// --- security handler -----------------------------------------------------------

struct X509Fixture {
  std::mt19937_64 rng{31};
  security::CertificateAuthority ca =
      security::CertificateAuthority::create("CN=CA", 512, rng);
  security::Credential service_cred = ca.issue(
      "CN=service", 512, rng, 0, std::numeric_limits<common::TimeMs>::max());
  security::Credential alice = ca.issue(
      "CN=alice", 512, rng, 0, std::numeric_limits<common::TimeMs>::max());
};

TEST(SecurityHandler, X509ModeEstablishesIdentity) {
  X509Fixture fx;
  Container container({.security = SecurityMode::kX509,
                       .anchor = &fx.ca.root(),
                       .credential = &fx.service_cred});
  PingService svc;
  container.deploy("/Ping", svc);

  soap::Envelope req = make_request("urn:test/Ping");
  security::sign_envelope(req, fx.alice);
  soap::Envelope r = container.process(req, "/Ping");
  EXPECT_FALSE(r.is_fault());
  EXPECT_EQ(svc.last_identity, "CN=alice");
  // The response is signed by the service.
  EXPECT_TRUE(security::is_signed(r));
  EXPECT_EQ(security::verify_envelope(r, fx.ca.root(), 0).subject_dn,
            "CN=service");
}

TEST(SecurityHandler, X509ModeRejectsUnsignedRequests) {
  X509Fixture fx;
  Container container({.security = SecurityMode::kX509,
                       .anchor = &fx.ca.root(),
                       .credential = &fx.service_cred});
  PingService svc;
  container.deploy("/Ping", svc);
  soap::Envelope r = container.process(make_request("urn:test/Ping"), "/Ping");
  ASSERT_TRUE(r.is_fault());
  EXPECT_NE(r.fault().reason.find("security policy"), std::string::npos);
  EXPECT_EQ(svc.pings, 0);
  // Even the rejection is signed (client can authenticate the fault).
  EXPECT_TRUE(security::is_signed(r));
}

TEST(SecurityHandler, X509ModeRejectsTamperedRequests) {
  X509Fixture fx;
  Container container({.security = SecurityMode::kX509,
                       .anchor = &fx.ca.root(),
                       .credential = &fx.service_cred});
  PingService svc;
  container.deploy("/Ping", svc);
  soap::Envelope req = make_request("urn:test/Ping");
  security::sign_envelope(req, fx.alice);
  req.payload()->set_text("tampered");
  EXPECT_TRUE(container.process(req, "/Ping").is_fault());
  EXPECT_EQ(svc.pings, 0);
}

TEST(SecurityHandler, MisconfiguredX509ContainerThrows) {
  EXPECT_THROW(Container({.security = SecurityMode::kX509}),
               std::invalid_argument);
}

TEST(SecurityHandler, NoneModeIgnoresSignatures) {
  Container container({});
  PingService svc;
  container.deploy("/Ping", svc);
  soap::Envelope r = container.process(make_request("urn:test/Ping"), "/Ping");
  EXPECT_FALSE(r.is_fault());
  EXPECT_EQ(svc.last_identity, "");
}

// --- lifetime manager -------------------------------------------------------------

TEST(Lifetime, SweepDestroysExpired) {
  common::ManualClock clock(1000);
  LifetimeManager lm(clock);
  int destroyed = 0;
  lm.schedule(1500, [&] { ++destroyed; });
  lm.schedule(2500, [&] { ++destroyed; });
  EXPECT_EQ(lm.active(), 2u);

  clock.set(1600);
  EXPECT_EQ(lm.sweep(), 1u);
  EXPECT_EQ(destroyed, 1);
  EXPECT_EQ(lm.active(), 1u);

  clock.set(3000);
  EXPECT_EQ(lm.sweep(), 1u);
  EXPECT_EQ(destroyed, 2);
}

TEST(Lifetime, NeverEntriesSurviveSweeps) {
  common::ManualClock clock(0);
  LifetimeManager lm(clock);
  lm.schedule(LifetimeManager::kNever, [] {});
  clock.set(std::numeric_limits<common::TimeMs>::max() - 1);
  EXPECT_EQ(lm.sweep(), 0u);
  EXPECT_EQ(lm.active(), 1u);
}

TEST(Lifetime, SetTerminationTimeExtends) {
  common::ManualClock clock(0);
  LifetimeManager lm(clock);
  int destroyed = 0;
  auto handle = lm.schedule(100, [&] { ++destroyed; });
  EXPECT_TRUE(lm.set_termination_time(handle, 10'000));
  clock.set(5000);
  EXPECT_EQ(lm.sweep(), 0u);
  EXPECT_EQ(lm.termination_time(handle), 10'000);
  clock.set(10'001);
  EXPECT_EQ(lm.sweep(), 1u);
  EXPECT_EQ(destroyed, 1);
}

TEST(Lifetime, ExplicitDestroyRunsCallbackOnce) {
  common::ManualClock clock(0);
  LifetimeManager lm(clock);
  int destroyed = 0;
  auto handle = lm.schedule(LifetimeManager::kNever, [&] { ++destroyed; });
  EXPECT_TRUE(lm.destroy(handle));
  EXPECT_FALSE(lm.destroy(handle));
  EXPECT_EQ(destroyed, 1);
  EXPECT_FALSE(lm.set_termination_time(handle, 5));
}

TEST(Lifetime, CancelSkipsCallback) {
  common::ManualClock clock(0);
  LifetimeManager lm(clock);
  int destroyed = 0;
  auto handle = lm.schedule(10, [&] { ++destroyed; });
  EXPECT_TRUE(lm.cancel(handle));
  clock.set(100);
  EXPECT_EQ(lm.sweep(), 0u);
  EXPECT_EQ(destroyed, 0);
}

TEST(Lifetime, ContainerSweepsOnEveryRequest) {
  common::ManualClock clock(0);
  Container container({.clock = &clock});
  PingService svc;
  container.deploy("/Ping", svc);
  int destroyed = 0;
  container.lifetime().schedule(50, [&] { ++destroyed; });
  clock.set(100);
  (void)container.process(make_request("urn:test/Ping"), "/Ping");
  EXPECT_EQ(destroyed, 1);
}

// --- proxy base --------------------------------------------------------------------

TEST(Proxy, InvokeThrowsTypedFault) {
  net::VirtualNetwork net;
  Container container({});
  PingService svc;
  container.deploy("/Ping", svc);
  net.bind("h", container);
  net::VirtualCaller caller(net, {});

  class P : public ProxyBase {
   public:
    using ProxyBase::ProxyBase;
    void fail() { invoke("urn:test/Fail", std::make_unique<xml::Element>(t("In"))); }
    std::string ping() {
      soap::Envelope r =
          invoke("urn:test/Ping", std::make_unique<xml::Element>(t("In")));
      return r.payload()->text();
    }
  };
  P proxy(caller, soap::EndpointReference("http://h/Ping"));
  EXPECT_EQ(proxy.ping(), "pong");
  EXPECT_THROW(proxy.fail(), soap::SoapFault);
}

TEST(Proxy, SignedProxyAgainstX509Container) {
  X509Fixture fx;
  net::VirtualNetwork net;
  Container container({.security = SecurityMode::kX509,
                       .anchor = &fx.ca.root(),
                       .credential = &fx.service_cred});
  PingService svc;
  container.deploy("/Ping", svc);
  net.bind("h", container);
  net::VirtualCaller caller(net, {});

  class P : public ProxyBase {
   public:
    using ProxyBase::ProxyBase;
    std::string ping() {
      soap::Envelope r =
          invoke("urn:test/Ping", std::make_unique<xml::Element>(t("In")));
      return r.payload()->text();
    }
  };
  ProxySecurity sec{&fx.alice, &fx.ca.root(), &common::RealClock::instance()};
  P proxy(caller, soap::EndpointReference("http://h/Ping"), sec);
  EXPECT_EQ(proxy.ping(), "pong");
  EXPECT_EQ(svc.last_identity, "CN=alice");

  // An unsigned proxy is rejected by the same container.
  P unsigned_proxy(caller, soap::EndpointReference("http://h/Ping"));
  EXPECT_THROW(unsigned_proxy.ping(), soap::SoapFault);
}

}  // namespace
}  // namespace gs::container
