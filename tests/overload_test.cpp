// Tests for the overload-control layer: the AdmissionController's depth
// sheds and token buckets, the AdmissionHandler's 503/Receiver-fault
// backpressure at both container entries, the client-side circuit breaker,
// RetryingCaller's Retry-After flooring and fast-fail integration, and the
// shed alert surfaced through the PR-4 monitor.
#include <gtest/gtest.h>

#include "container/admission.hpp"
#include "container/container.hpp"
#include "net/breaker.hpp"
#include "net/retry.hpp"
#include "net/virtual_network.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/monitor.hpp"

namespace gs {
namespace {

using container::AdmissionConfig;
using container::AdmissionController;
using container::AdmissionHandler;
using container::Priority;

// --- AdmissionController: token buckets ------------------------------------------

TEST(Admission, TokenBucketDrainsAndRefillsOnInjectedClock) {
  common::ManualClock clock(0);
  telemetry::MetricsRegistry reg;
  AdmissionController ctl({
      .clock = &clock,
      .per_tenant = {.rate_per_sec = 2.0, .burst = 2.0},
      .retry_after_ms = 1,
      .metrics = &reg,
  });

  EXPECT_TRUE(ctl.admit(Priority::kNormal, "alice", "/Svc").admitted);
  EXPECT_TRUE(ctl.admit(Priority::kNormal, "alice", "/Svc").admitted);

  auto rejected = ctl.admit(Priority::kNormal, "alice", "/Svc");
  EXPECT_FALSE(rejected.admitted);
  EXPECT_STREQ(rejected.reason, "token-bucket");
  // Retry-After is the actual time to the next token: 1 token / 2 per sec.
  EXPECT_EQ(rejected.retry_after_ms, 500);

  clock.advance(500);  // one token accrues
  EXPECT_TRUE(ctl.admit(Priority::kNormal, "alice", "/Svc").admitted);
  EXPECT_FALSE(ctl.admit(Priority::kNormal, "alice", "/Svc").admitted);

  EXPECT_EQ(reg.counter("container.shed_token_bucket").value(), 2u);
  EXPECT_EQ(reg.counter("container.admitted").value(), 3u);
}

TEST(Admission, TenantOverrideIsolatesTheAggressor) {
  common::ManualClock clock(0);
  telemetry::MetricsRegistry reg;
  AdmissionController ctl({
      .clock = &clock,
      // Default shape: unlimited (rate 0 disables the bucket).
      .tenant_overrides = {{"bulky", {.rate_per_sec = 1.0, .burst = 1.0}}},
      .metrics = &reg,
  });

  EXPECT_TRUE(ctl.admit(Priority::kNormal, "bulky", "/Svc").admitted);
  EXPECT_FALSE(ctl.admit(Priority::kNormal, "bulky", "/Svc").admitted);
  // Other tenants are untouched by the aggressor's exhausted bucket.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(ctl.admit(Priority::kNormal, "alice", "/Svc").admitted);
  }
}

TEST(Admission, BucketsAreKeyedPerService) {
  common::ManualClock clock(0);
  telemetry::MetricsRegistry reg;
  AdmissionController ctl({
      .clock = &clock,
      .per_tenant = {.rate_per_sec = 1.0, .burst = 1.0},
      .metrics = &reg,
  });
  EXPECT_TRUE(ctl.admit(Priority::kNormal, "alice", "/A").admitted);
  EXPECT_FALSE(ctl.admit(Priority::kNormal, "alice", "/A").admitted);
  // A different service has its own bucket under the same tenant.
  EXPECT_TRUE(ctl.admit(Priority::kNormal, "alice", "/B").admitted);
}

TEST(Admission, MonitoringIsExemptFromBuckets) {
  common::ManualClock clock(0);
  telemetry::MetricsRegistry reg;
  AdmissionController ctl({
      .clock = &clock,
      .per_tenant = {.rate_per_sec = 1.0, .burst = 1.0},
      .metrics = &reg,
  });
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(ctl.admit(Priority::kMonitoring, "alice", "/Telemetry").admitted);
  }
}

// --- AdmissionController: depth sheds ---------------------------------------------

TEST(Admission, DepthShedsBulkFirstMonitoringLast) {
  std::size_t depth = 0;
  telemetry::MetricsRegistry reg;
  AdmissionController ctl({
      .queue_depth = [&depth] { return depth; },
      .metrics = &reg,
  });

  depth = 64;  // bulk watermark
  EXPECT_FALSE(ctl.admit(Priority::kBulk, "t", "/Svc").admitted);
  EXPECT_TRUE(ctl.admit(Priority::kNormal, "t", "/Svc").admitted);
  EXPECT_TRUE(ctl.admit(Priority::kMonitoring, "t", "/Telemetry").admitted);

  depth = 128;  // normal watermark
  EXPECT_FALSE(ctl.admit(Priority::kBulk, "t", "/Svc").admitted);
  EXPECT_FALSE(ctl.admit(Priority::kNormal, "t", "/Svc").admitted);
  EXPECT_TRUE(ctl.admit(Priority::kMonitoring, "t", "/Telemetry").admitted);

  depth = 512;  // hard cap: even monitoring sheds
  EXPECT_FALSE(ctl.admit(Priority::kMonitoring, "t", "/Telemetry").admitted);

  EXPECT_EQ(reg.counter("container.shed_bulk").value(), 2u);
  EXPECT_EQ(reg.counter("container.shed_normal").value(), 1u);
  EXPECT_EQ(reg.counter("container.shed_monitoring").value(), 1u);
  EXPECT_EQ(reg.counter("container.shed_queue_depth").value(), 4u);
  EXPECT_EQ(reg.counter("container.shed_total").value(), 4u);
}

TEST(Admission, InflightCountsTowardDepth) {
  telemetry::MetricsRegistry reg;
  AdmissionController ctl({.metrics = &reg});
  for (int i = 0; i < 64; ++i) ctl.on_start();
  EXPECT_EQ(ctl.depth(), 64u);
  EXPECT_FALSE(ctl.admit(Priority::kBulk, "t", "/Svc").admitted);
  ctl.on_finish();
  EXPECT_TRUE(ctl.admit(Priority::kBulk, "t", "/Svc").admitted);
  for (int i = 0; i < 63; ++i) ctl.on_finish();
  EXPECT_EQ(ctl.depth(), 0u);
}

TEST(Admission, SheddingEventsAreEdgeTriggeredWithHysteresis) {
  std::size_t depth = 0;
  telemetry::MetricsRegistry reg;
  AdmissionController ctl({
      .queue_depth = [&depth] { return depth; },
      .metrics = &reg,
  });
  telemetry::EventLog& log = telemetry::EventLog::global();

  std::uint64_t warns = log.count(telemetry::Level::kWarn);
  depth = 100;
  for (int i = 0; i < 5; ++i) ctl.admit(Priority::kBulk, "t", "/Svc");
  // One "shedding engaged" for the whole episode, not one per rejection.
  EXPECT_EQ(log.count(telemetry::Level::kWarn), warns + 1);

  // Backlog drops, but not below half the bulk watermark: still the same
  // episode — no release, no new engage.
  std::uint64_t infos = log.count(telemetry::Level::kInfo);
  depth = 40;
  EXPECT_TRUE(ctl.admit(Priority::kBulk, "t", "/Svc").admitted);
  EXPECT_EQ(log.count(telemetry::Level::kInfo), infos);

  // Below the hysteresis point: one "shedding released".
  depth = 10;
  EXPECT_TRUE(ctl.admit(Priority::kBulk, "t", "/Svc").admitted);
  EXPECT_EQ(log.count(telemetry::Level::kInfo), infos + 1);

  // The next episode gets its own engage event.
  depth = 100;
  ctl.admit(Priority::kBulk, "t", "/Svc");
  EXPECT_EQ(log.count(telemetry::Level::kWarn), warns + 2);
}

// --- AdmissionHandler: classification and backpressure ----------------------------

TEST(Admission, ClassifiesOnTransportFactsOnly) {
  net::HttpRequest http;
  EXPECT_EQ(AdmissionHandler::classify_request("/Counter", &http),
            Priority::kNormal);
  EXPECT_EQ(AdmissionHandler::classify_request("/x/Telemetry", &http),
            Priority::kMonitoring);
  http.headers["X-GS-Priority"] = "bulk";
  EXPECT_EQ(AdmissionHandler::classify_request("/Counter", &http),
            Priority::kBulk);
  http.headers["X-GS-Priority"] = "monitoring";
  EXPECT_EQ(AdmissionHandler::classify_request("/Counter", &http),
            Priority::kMonitoring);
  // The header wins over the path heuristic; unknown values mean normal.
  http.headers["X-GS-Priority"] = "whatever";
  EXPECT_EQ(AdmissionHandler::classify_request("/x/Telemetry", &http),
            Priority::kNormal);
  // In-process entry has no HTTP request: path only.
  EXPECT_EQ(AdmissionHandler::classify_request("/x/Telemetry", nullptr),
            Priority::kMonitoring);
}

class EchoService : public container::Service {
 public:
  EchoService() : container::Service("Echo") {
    register_operation("urn:t/Ping", [](container::RequestContext& ctx) {
      soap::Envelope r = make_response(ctx, "urn:t/PingResponse");
      r.add_payload(xml::QName("urn:t", "Pong"));
      return r;
    });
  }
};

soap::Envelope ping_request() {
  soap::Envelope env;
  soap::MessageInfo info;
  info.action = "urn:t/Ping";
  info.message_id = "urn:uuid:overload-1";
  env.write_addressing(info);
  env.add_payload(xml::QName("urn:t", "Ping"));
  return env;
}

struct ShedFixture {
  std::size_t depth = 0;
  telemetry::MetricsRegistry reg;
  net::VirtualNetwork net;
  container::Container container{{}};
  EchoService svc;
  std::shared_ptr<AdmissionController> controller;

  ShedFixture() {
    controller = std::make_shared<AdmissionController>(AdmissionConfig{
        .queue_depth = [this] { return depth; },
        .metrics = &reg,
    });
    container.chain().insert_before(
        "parse", std::make_shared<AdmissionHandler>(controller));
    container.deploy("/Echo", svc);
    net.bind("host", container);
  }
};

TEST(Admission, HttpShedIs503WithRetryAfter) {
  ShedFixture fx;
  net::HttpRequest http;
  http.path = "/Echo";
  http.body = ping_request().to_xml();

  EXPECT_EQ(fx.container.handle(http).status, 200);

  fx.depth = 200;  // past the normal watermark
  net::HttpResponse resp = fx.container.handle(http);
  EXPECT_EQ(resp.status, 503);
  EXPECT_EQ(resp.headers["Retry-After"], "1");
  EXPECT_EQ(resp.headers["X-GS-Shed-Reason"], "queue-depth");
  EXPECT_TRUE(resp.body_str().empty());  // reject path serializes nothing
}

TEST(Admission, ClientSeesOverloadErrorWithServerHint) {
  ShedFixture fx;
  fx.depth = 200;
  net::VirtualCaller caller(fx.net, {});
  try {
    caller.call("http://host/Echo", ping_request());
    FAIL() << "expected OverloadError";
  } catch (const net::OverloadError& err) {
    EXPECT_EQ(err.retry_after_ms(), 1000);  // "Retry-After: 1" x 1000
  }
}

TEST(Admission, InProcessShedIsReceiverFault) {
  ShedFixture fx;
  fx.depth = 200;
  soap::Envelope response = fx.container.process(ping_request(), "/Echo");
  ASSERT_TRUE(response.is_fault());
  soap::Fault fault = response.fault();
  EXPECT_EQ(fault.code, "Receiver");
  EXPECT_NE(fault.reason.find("server busy"), std::string::npos);
}

TEST(Admission, AdmittedRequestsBracketInflight) {
  ShedFixture fx;
  net::HttpRequest http;
  http.path = "/Echo";
  http.body = ping_request().to_xml();
  EXPECT_EQ(fx.container.handle(http).status, 200);
  // The gauge returned to zero after the request drained.
  EXPECT_EQ(fx.reg.gauge("container.inflight").value(), 0);
  EXPECT_EQ(fx.reg.counter("container.admitted").value(), 1u);
}

// --- circuit breaker --------------------------------------------------------------

TEST(Breaker, OpensAfterConsecutiveFailuresAndProbesHalfOpen) {
  common::ManualClock clock(0);
  net::CircuitBreaker breaker({.failure_threshold = 3, .open_ms = 1000}, &clock);
  const std::string authority = "host:80";

  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(breaker.allow(authority));
    breaker.record_failure(authority);
  }
  EXPECT_EQ(breaker.state(authority), net::CircuitBreaker::State::kClosed);
  breaker.record_failure(authority);  // third consecutive: trip
  EXPECT_EQ(breaker.state(authority), net::CircuitBreaker::State::kOpen);

  EXPECT_FALSE(breaker.allow(authority));  // fast fail, no I/O
  EXPECT_EQ(breaker.retry_in(authority), 1000);
  clock.advance(400);
  EXPECT_EQ(breaker.retry_in(authority), 600);

  clock.advance(600);  // cooldown over: first call becomes the probe
  EXPECT_TRUE(breaker.allow(authority));
  EXPECT_EQ(breaker.state(authority), net::CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.allow(authority));  // probe budget (1) is in flight

  breaker.record_success(authority);
  EXPECT_EQ(breaker.state(authority), net::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow(authority));
}

TEST(Breaker, HalfOpenFailureReopensForAnotherCooldown) {
  common::ManualClock clock(0);
  net::CircuitBreaker breaker({.failure_threshold = 1, .open_ms = 500}, &clock);
  breaker.record_failure("a");
  EXPECT_EQ(breaker.state("a"), net::CircuitBreaker::State::kOpen);
  clock.advance(500);
  EXPECT_TRUE(breaker.allow("a"));  // probe
  breaker.record_failure("a");      // probe failed
  EXPECT_EQ(breaker.state("a"), net::CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow("a"));
  EXPECT_EQ(breaker.retry_in("a"), 500);
}

TEST(Breaker, SuccessResetsTheConsecutiveCount) {
  common::ManualClock clock(0);
  net::CircuitBreaker breaker({.failure_threshold = 3}, &clock);
  breaker.record_failure("a");
  breaker.record_failure("a");
  breaker.record_success("a");
  breaker.record_failure("a");
  breaker.record_failure("a");
  EXPECT_EQ(breaker.state("a"), net::CircuitBreaker::State::kClosed);
}

TEST(Breaker, RoutesAreIndependent) {
  common::ManualClock clock(0);
  net::CircuitBreaker breaker({.failure_threshold = 1}, &clock);
  breaker.record_failure("a");
  EXPECT_FALSE(breaker.allow("a"));
  EXPECT_TRUE(breaker.allow("b"));
}

// --- RetryingCaller + breaker -----------------------------------------------------

class AlwaysOverloadedCaller final : public net::SoapCaller {
 public:
  int calls = 0;
  common::TimeMs retry_after_ms = 0;
  soap::Envelope call(const std::string&, const soap::Envelope&) override {
    ++calls;
    throw net::OverloadError("HTTP 503", retry_after_ms);
  }
};

TEST(RetryBreaker, RetryAfterHintFloorsTheBackoff) {
  AlwaysOverloadedCaller inner;
  inner.retry_after_ms = 5000;
  common::ManualClock clock(0);
  std::vector<common::TimeMs> slept;
  net::RetryingCaller caller(
      inner,
      {.max_attempts = 3, .base_delay_ms = 10, .multiplier = 2.0, .jitter = 0.0},
      net::BreakerPolicy::disabled(), &clock,
      [&](common::TimeMs ms) { slept.push_back(ms); });
  EXPECT_THROW(caller.call("http://host/Svc", ping_request()),
               net::OverloadError);
  EXPECT_EQ(inner.calls, 3);
  // Policy would sleep 10 then 20; the server asked for 5000.
  EXPECT_EQ(slept, (std::vector<common::TimeMs>{5000, 5000}));
}

TEST(RetryBreaker, BreakerStopsAnInflightRetryLoop) {
  AlwaysOverloadedCaller inner;
  common::ManualClock clock(0);
  std::vector<common::TimeMs> slept;
  net::RetryingCaller caller(
      inner, {.max_attempts = 5, .base_delay_ms = 1, .jitter = 0.0},
      {.failure_threshold = 2, .open_ms = 1000}, &clock,
      [&](common::TimeMs ms) { slept.push_back(ms); });
  // Attempt 1 and 2 fail and trip the breaker; attempt 3 fast-fails
  // without touching the transport, despite the retry budget of 5.
  EXPECT_THROW(caller.call("http://host/Svc", ping_request()),
               net::CircuitOpenError);
  EXPECT_EQ(inner.calls, 2);

  // Subsequent calls fast-fail outright while the cooldown runs.
  EXPECT_THROW(caller.call("http://host/Svc", ping_request()),
               net::CircuitOpenError);
  EXPECT_EQ(inner.calls, 2);
  ASSERT_NE(caller.breaker(), nullptr);
  EXPECT_EQ(caller.breaker()->state("host"),
            net::CircuitBreaker::State::kOpen);
}

TEST(RetryBreaker, RecoversThroughHalfOpenProbe) {
  // Fails twice (tripping the 2-failure breaker), then succeeds.
  class FlakyCaller final : public net::SoapCaller {
   public:
    int calls = 0;
    soap::Envelope call(const std::string&, const soap::Envelope&) override {
      if (++calls <= 2) throw net::OverloadError("HTTP 503", 0);
      soap::Envelope r;
      r.add_payload(xml::QName("urn:t", "Ok"));
      return r;
    }
  } inner;
  common::ManualClock clock(0);
  net::RetryingCaller caller(
      inner, {.max_attempts = 1}, {.failure_threshold = 2, .open_ms = 1000},
      &clock, [&](common::TimeMs) {});
  EXPECT_THROW(caller.call("http://host/Svc", ping_request()),
               net::OverloadError);
  EXPECT_THROW(caller.call("http://host/Svc", ping_request()),
               net::OverloadError);
  EXPECT_THROW(caller.call("http://host/Svc", ping_request()),
               net::CircuitOpenError);
  clock.advance(1000);  // cooldown over: the next call is the probe
  EXPECT_FALSE(caller.call("http://host/Svc", ping_request()).is_fault());
  EXPECT_EQ(caller.breaker()->state("host"),
            net::CircuitBreaker::State::kClosed);
  EXPECT_EQ(inner.calls, 3);
}

TEST(RetryBreaker, FaultsDoNotTripTheBreaker) {
  class FaultingCaller final : public net::SoapCaller {
   public:
    int calls = 0;
    soap::Envelope call(const std::string&, const soap::Envelope&) override {
      ++calls;
      return soap::Envelope::make_fault(
          {.code = "Sender", .reason = "application error"});
    }
  } inner;
  common::ManualClock clock(0);
  net::RetryingCaller caller(inner, {.max_attempts = 3},
                             {.failure_threshold = 1, .open_ms = 1000}, &clock,
                             [&](common::TimeMs) {});
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(caller.call("http://host/Svc", ping_request()).is_fault());
  }
  EXPECT_EQ(inner.calls, 5);  // never fast-failed: faults are successes here
  EXPECT_EQ(caller.breaker()->state("host"),
            net::CircuitBreaker::State::kClosed);
}

// --- shedding surfaced through the PR-4 monitor -----------------------------------

TEST(Admission, ShedRateFiresMonitorAlert) {
  common::ManualClock clock(1000);
  telemetry::MetricsRegistry reg;
  AdmissionController ctl({
      .queue_depth = [] { return std::size_t{100}; },
      .metrics = &reg,
  });
  telemetry::MonitorProducer producer(telemetry::MonitorProducer::Config{
      .registry = &reg,
      .producer_address = "http://p/Mon",
      .wsn = nullptr,
      .wse = nullptr,
      .clock = &clock,
      .interval_ms = 1000,
  });
  producer.add_rule({.name = "shedding",
                     .metric = "container.shed_total",
                     .kind = telemetry::AlertRule::Kind::kCounterRate,
                     .threshold = 5.0});

  telemetry::EventLog& log = telemetry::EventLog::global();
  producer.tick();  // baseline: quiet
  std::uint64_t warns = log.count(telemetry::Level::kWarn);

  for (int i = 0; i < 10; ++i) ctl.admit(Priority::kBulk, "t", "/Svc");
  producer.tick();
  // The "shedding engaged" episode event plus the monitor's alert.
  EXPECT_EQ(log.count(telemetry::Level::kWarn), warns + 2);

  // Edge-triggered at the monitor too: a still-breached next tick with no
  // NEW sheds is quiet.
  producer.tick();
  EXPECT_EQ(log.count(telemetry::Level::kWarn), warns + 2);
}

}  // namespace
}  // namespace gs
