// Time-series retention and cost-attribution tests: counter-rate math over
// actual elapsed time (resets, gaps, zero-elapsed cycles), rollup rings
// against a brute-force oracle, query resolution fallback, the Prometheus
// text exposition, per-tenant cost attribution through the container
// pipeline, the EventLog sequence cursor across ring wraparound, and the
// Health rollup of the PR-6/PR-8 subsystems.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "container/admission.hpp"
#include "container/container.hpp"
#include "net/http.hpp"
#include "telemetry/cost.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/exposition.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/service.hpp"
#include "telemetry/slo.hpp"
#include "telemetry/timeseries.hpp"
#include "telemetry/trace.hpp"

namespace gs::telemetry {
namespace {

TimeSeriesConfig config_for(MetricsRegistry& reg, const common::Clock& clock,
                            common::TimeMs interval_ms = 1000,
                            std::size_t raw = 120, std::size_t rollup = 120) {
  TimeSeriesConfig cfg;
  cfg.registry = &reg;
  cfg.clock = &clock;
  cfg.interval_ms = interval_ms;
  cfg.raw_capacity = raw;
  cfg.rollup_capacity = rollup;
  return cfg;
}

// --- counter rate semantics ------------------------------------------------

TEST(TimeSeries, CounterRateUsesActualElapsedTime) {
  MetricsRegistry reg;
  common::ManualClock clock{0};
  TimeSeriesStore store(config_for(reg, clock));

  MetricsSnapshot snap;
  snap.counters["app.requests"] = 0;
  store.sample_snapshot(snap, 1000);  // baseline: no counter point

  snap.counters["app.requests"] = 50;
  store.sample_snapshot(snap, 2000);  // +50 over 1000 ms -> 50/s

  // A late cycle: +100 over 2000 ms must read 50/s, not 100/s.
  snap.counters["app.requests"] = 150;
  store.sample_snapshot(snap, 4000);

  auto w = store.query("app.requests");
  ASSERT_EQ(w.points.size(), 2u);
  EXPECT_EQ(w.resolution, Resolution::kRaw);
  EXPECT_EQ(w.points[0].t_ms, 2000);
  EXPECT_DOUBLE_EQ(w.points[0].value, 50.0);
  EXPECT_EQ(w.points[1].t_ms, 4000);
  EXPECT_DOUBLE_EQ(w.points[1].value, 50.0);
}

TEST(TimeSeries, CounterResetReadsAsNewTotalNotNegativeSpike) {
  MetricsRegistry reg;
  common::ManualClock clock{0};
  TimeSeriesStore store(config_for(reg, clock));

  MetricsSnapshot snap;
  snap.counters["app.requests"] = 1000;
  store.sample_snapshot(snap, 1000);
  snap.counters["app.requests"] = 1200;
  store.sample_snapshot(snap, 2000);  // +200 -> 200/s
  // Process restart: the counter comes back smaller. Everything counted
  // since the restart happened inside this interval.
  snap.counters["app.requests"] = 30;
  store.sample_snapshot(snap, 3000);  // delta = 30 -> 30/s

  auto w = store.query("app.requests");
  ASSERT_EQ(w.points.size(), 2u);
  EXPECT_DOUBLE_EQ(w.points[0].value, 200.0);
  EXPECT_DOUBLE_EQ(w.points[1].value, 30.0);
  EXPECT_GE(w.points[1].value, 0.0);
}

TEST(TimeSeries, ZeroElapsedCycleOnlyAdvancesTheBaseline) {
  MetricsRegistry reg;
  common::ManualClock clock{0};
  TimeSeriesStore store(config_for(reg, clock));

  MetricsSnapshot snap;
  snap.counters["c"] = 0;
  snap.gauges["g"] = 7;
  store.sample_snapshot(snap, 1000);
  // Same instant again: no rate is computable, but the baseline moves.
  snap.counters["c"] = 40;
  store.sample_snapshot(snap, 1000);
  EXPECT_TRUE(store.query("c").points.empty());
  // The next real interval rates against the ADVANCED baseline (40), so
  // the 40 counted during the zero-elapsed cycle is never double-billed.
  snap.counters["c"] = 50;
  store.sample_snapshot(snap, 2000);
  auto w = store.query("c");
  ASSERT_EQ(w.points.size(), 1u);
  EXPECT_DOUBLE_EQ(w.points[0].value, 10.0);

  // Gauges are levels: every cycle yields a point, including the first
  // and the zero-elapsed one.
  EXPECT_EQ(store.query("g").points.size(), 3u);
  EXPECT_DOUBLE_EQ(store.query("g").points[0].value, 7.0);
}

TEST(TimeSeries, HistogramIntervalsYieldQuantilesAndEmptyOnesYieldGaps) {
  MetricsRegistry reg;
  common::ManualClock clock{0};
  TimeSeriesStore store(config_for(reg, clock));
  Histogram& h = reg.histogram("svc.latency_us");

  for (int i = 0; i < 100; ++i) h.record(100);
  store.sample_snapshot(reg.snapshot(), 1000);  // baseline

  for (int i = 0; i < 100; ++i) h.record(100);
  store.sample_snapshot(reg.snapshot(), 2000);  // interval of ~100us samples

  store.sample_snapshot(reg.snapshot(), 3000);  // nothing recorded: a gap

  for (int i = 0; i < 100; ++i) h.record(10000);
  store.sample_snapshot(reg.snapshot(), 4000);  // interval of ~10ms samples

  for (const char* series : {"svc.latency_us.p50", "svc.latency_us.p90",
                             "svc.latency_us.p99"}) {
    auto w = store.query(series);
    ASSERT_EQ(w.points.size(), 2u) << series;  // t=3000 is a gap, not a zero
    EXPECT_EQ(w.points[0].t_ms, 2000) << series;
    EXPECT_EQ(w.points[1].t_ms, 4000) << series;
    // Power-of-two buckets: within 2x of the true value, and the second
    // interval's quantile reflects ONLY its own samples (snapshot
    // subtraction), so it sits two orders of magnitude above the first.
    EXPECT_GT(w.points[0].value, 50.0) << series;
    EXPECT_LT(w.points[0].value, 200.0) << series;
    EXPECT_GT(w.points[1].value, 5000.0) << series;
  }
}

// --- rollups against a brute-force oracle ----------------------------------

TEST(TimeSeries, RollupsMatchBruteForceOracle) {
  MetricsRegistry reg;
  common::ManualClock clock{0};
  TimeSeriesStore store(config_for(reg, clock));

  // 600 raw points, value = i: every mid/coarse boundary divides evenly.
  constexpr int kPoints = 600;
  std::vector<double> values;
  for (int i = 0; i < kPoints; ++i) {
    values.push_back(static_cast<double>(i));
    store.ingest("load", (i + 1) * 1000, values.back());
  }

  // Mid ring: one point per 10 raw points. Raw capacity 120 keeps only the
  // tail, so ask for a window the raw ring has lost but mid still covers.
  auto mid = store.query("load", 15'000);
  EXPECT_EQ(mid.resolution, Resolution::kMid);
  EXPECT_EQ(mid.interval_ms, 10'000);
  ASSERT_FALSE(mid.points.empty());
  for (const SeriesPoint& p : mid.points) {
    // Point at t = (10k+10)*1000 folds raw indices [10k, 10k+10).
    ASSERT_EQ(p.t_ms % 10'000, 0);
    int k = static_cast<int>(p.t_ms / 10'000) - 1;
    double sum = 0, lo = values[10 * k], hi = lo;
    for (int i = 10 * k; i < 10 * k + 10; ++i) {
      sum += values[i];
      lo = std::min(lo, values[i]);
      hi = std::max(hi, values[i]);
    }
    EXPECT_DOUBLE_EQ(p.value, sum / 10.0) << p.t_ms;
    EXPECT_DOUBLE_EQ(p.min, lo) << p.t_ms;
    EXPECT_DOUBLE_EQ(p.max, hi) << p.t_ms;
    EXPECT_EQ(p.samples, 10u) << p.t_ms;
  }

  // Coarse ring: one point per 60 raw points; a query from the epoch can
  // only be answered there (every finer ring has evicted t=1000).
  auto coarse = store.query("load", 0);
  EXPECT_EQ(coarse.resolution, Resolution::kCoarse);
  EXPECT_EQ(coarse.interval_ms, 60'000);
  ASSERT_EQ(coarse.points.size(), kPoints / 60u);
  for (std::size_t k = 0; k < coarse.points.size(); ++k) {
    const SeriesPoint& p = coarse.points[k];
    EXPECT_EQ(p.t_ms, static_cast<common::TimeMs>((k + 1) * 60'000));
    double first = static_cast<double>(60 * k);
    // Mean of an arithmetic run [60k, 60k+60): 60k + 29.5.
    EXPECT_DOUBLE_EQ(p.value, first + 29.5);
    EXPECT_DOUBLE_EQ(p.min, first);
    EXPECT_DOUBLE_EQ(p.max, first + 59.0);
    EXPECT_EQ(p.samples, 60u);
  }

  // A recent window is answered at full (raw) resolution.
  auto raw = store.query("load", 590'000);
  EXPECT_EQ(raw.resolution, Resolution::kRaw);
  ASSERT_EQ(raw.points.size(), 11u);
  EXPECT_DOUBLE_EQ(raw.points.back().value, 599.0);
  EXPECT_EQ(raw.points.back().samples, 1u);
}

TEST(TimeSeries, QueryClipsToEndAndUnknownSeriesIsEmpty) {
  MetricsRegistry reg;
  common::ManualClock clock{0};
  TimeSeriesStore store(config_for(reg, clock));
  for (int i = 1; i <= 5; ++i) store.ingest("s", i * 1000, i);

  auto w = store.query("s", 2000, 4000);
  ASSERT_EQ(w.points.size(), 3u);
  EXPECT_EQ(w.points.front().t_ms, 2000);
  EXPECT_EQ(w.points.back().t_ms, 4000);

  EXPECT_TRUE(store.query("nope").points.empty());
  auto names = store.series_names();
  EXPECT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "s");
}

TEST(TimeSeries, PollHonorsTheSamplingInterval) {
  MetricsRegistry reg;
  common::ManualClock clock{1000};
  TimeSeriesStore store(config_for(reg, clock, 1000));
  reg.gauge("g").set(1);

  EXPECT_TRUE(store.poll());   // first cycle always runs
  EXPECT_FALSE(store.poll());  // interval not yet elapsed
  clock.advance(999);
  EXPECT_FALSE(store.poll());
  clock.advance(1);
  EXPECT_TRUE(store.poll());
  EXPECT_EQ(store.samples_taken(), 2u);
}

// --- TSan target: sampler, ingester, and request threads share the store --

TEST(TimeSeries, ConcurrentWritersSamplerAndSloReaderAreRaceFree) {
  MetricsRegistry reg;
  TimeSeriesStore store(config_for(reg, common::RealClock::instance(), 1));
  SloTracker slo(&store);
  slo.add_objective({.name = "avail",
                     .good_metric = "hammer.ok",
                     .bad_metrics = {"hammer.bad"},
                     .target = 0.9});

  constexpr int kIters = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kIters; ++i) {
        reg.counter("hammer.ok").add(2);
        reg.counter("hammer.bad").add(1);
        reg.histogram("hammer.us").record(static_cast<std::uint64_t>(i));
      }
    });
  }
  threads.emplace_back([&store] {
    for (int i = 0; i < kIters / 4; ++i) store.sample();
  });
  threads.emplace_back([&store] {
    for (int i = 0; i < kIters / 4; ++i) {
      store.ingest("remote|hammer.ok", i, static_cast<double>(i));
    }
  });
  threads.emplace_back([&store, &slo] {
    for (int i = 0; i < kIters / 4; ++i) {
      (void)store.query("hammer.ok");
      (void)slo.status();
      (void)slo.evaluate();
    }
  });
  for (auto& th : threads) th.join();

  EXPECT_EQ(store.samples_taken(), static_cast<std::uint64_t>(kIters / 4));
  EXPECT_EQ(store.query("remote|hammer.ok").points.size(),
            static_cast<std::size_t>(kIters / 4));
}

// --- Prometheus text exposition --------------------------------------------

TEST(Prometheus, NameManglingAndTextFormat) {
  EXPECT_EQ(prometheus_name("container.dispatch_us"),
            "gs_container_dispatch_us");
  EXPECT_EQ(prometheus_name("tenant.alice-1.requests"),
            "gs_tenant_alice_1_requests");

  MetricsRegistry reg;
  reg.counter("app.requests").add(5);
  reg.gauge("app.inflight").set(-2);
  for (int i = 0; i < 100; ++i) reg.histogram("app.latency_us").record(64);

  std::string text = prometheus_text(reg);
  EXPECT_NE(text.find("# TYPE gs_app_requests counter"), std::string::npos);
  EXPECT_NE(text.find("gs_app_requests_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gs_app_inflight gauge"), std::string::npos);
  EXPECT_NE(text.find("gs_app_inflight -2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gs_app_latency_us summary"), std::string::npos);
  EXPECT_NE(text.find("gs_app_latency_us{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("gs_app_latency_us_count 100"), std::string::npos);
  EXPECT_NE(text.find("gs_app_latency_us_sum 6400"), std::string::npos);
}

class TeapotEndpoint final : public net::Endpoint {
 public:
  net::HttpResponse handle(const net::HttpRequest&) override {
    net::HttpResponse r;
    r.status = 418;
    return r;
  }
};

TEST(Prometheus, HttpEndpointServesScrapePageAndDelegatesTheRest) {
  MetricsRegistry reg;
  reg.counter("app.requests").add(3);
  TeapotEndpoint inner;
  MetricsHttpEndpoint endpoint(inner, &reg);

  net::HttpRequest scrape;
  scrape.method = "GET";
  scrape.path = "/metrics";
  net::HttpResponse page = endpoint.handle(scrape);
  EXPECT_EQ(page.status, 200);
  EXPECT_EQ(page.headers["Content-Type"], kPrometheusContentType);
  EXPECT_NE(page.body_str().find("gs_app_requests_total 3"),
            std::string::npos);

  net::HttpRequest other;
  other.method = "POST";
  other.path = "/Counter";
  EXPECT_EQ(endpoint.handle(other).status, 418);  // passed through
}

// --- per-tenant cost attribution -------------------------------------------

TEST(Cost, AggregatorKeepsLosslessTotalsAndEmitsTenantMetrics) {
  MetricsRegistry reg;
  CostAggregator agg(&reg);

  CostRecord r;
  r.wall_us = 100;
  r.parse_us = 30;
  r.serialize_us = 20;
  r.xml_nodes = 40;
  r.arena_bytes = 4096;
  r.request_bytes = 500;
  r.response_bytes = 700;
  agg.record("alice", "/Counter", r);
  agg.record("alice", "/Telemetry", r);
  r.fault = true;
  agg.record("bob", "/Counter", r);

  EXPECT_EQ(agg.requests_recorded(), 3u);
  auto totals = agg.totals();
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals[0].tenant, "alice");  // sorted by id
  EXPECT_EQ(totals[1].tenant, "bob");

  auto alice = agg.tenant("alice");
  ASSERT_TRUE(alice.has_value());
  EXPECT_EQ(alice->total.requests, 2u);
  EXPECT_EQ(alice->total.faults, 0u);
  EXPECT_EQ(alice->total.wall_us, 200u);
  EXPECT_EQ(alice->total.request_bytes, 1000u);
  EXPECT_EQ(alice->total.response_bytes, 1400u);
  EXPECT_EQ(alice->total.xml_nodes, 80u);
  EXPECT_EQ(alice->total.arena_bytes, 8192u);
  ASSERT_EQ(alice->by_service.size(), 2u);
  EXPECT_EQ(alice->by_service.at("/Counter").requests, 1u);
  EXPECT_EQ(alice->by_service.at("/Telemetry").requests, 1u);

  auto bob = agg.tenant("bob");
  ASSERT_TRUE(bob.has_value());
  EXPECT_EQ(bob->total.faults, 1u);
  EXPECT_FALSE(agg.tenant("mallory").has_value());

  // The registry mirror downstream consumers (series, monitor, Prometheus)
  // read from.
  EXPECT_EQ(reg.counter("tenant.alice.requests").value(), 2u);
  EXPECT_EQ(reg.counter("tenant.alice.bytes_in").value(), 1000u);
  EXPECT_EQ(reg.counter("tenant.alice.bytes_out").value(), 1400u);
  EXPECT_EQ(reg.histogram("tenant.alice.wall_us").count(), 2u);
  EXPECT_EQ(reg.counter("tenant.bob.requests").value(), 1u);
}

class PongService : public container::Service {
 public:
  PongService() : container::Service("Pong") {
    register_operation("urn:t/Ping", [](container::RequestContext& ctx) {
      soap::Envelope r = make_response(ctx, "urn:t/PingResponse");
      r.add_payload(xml::QName("urn:t", "Pong"));
      return r;
    });
  }
};

soap::Envelope ping_envelope() {
  soap::Envelope env;
  soap::MessageInfo info;
  info.action = "urn:t/Ping";
  info.message_id = "urn:uuid:timeseries-1";
  env.write_addressing(info);
  env.add_payload(xml::QName("urn:t", "Ping"));
  return env;
}

// The pipeline end of attribution: requests flow through the container
// (admission classifies the tenant from X-GS-Tenant per PR 8) and land in
// the aggregator with transport byte counts and pipeline timings filled in.
TEST(Cost, ContainerAttributesRequestsToTenantsFromTheWire) {
  MetricsRegistry reg;
  container::Container container{{.clock = &common::RealClock::instance(),
                                  .metrics = &reg}};
  container.chain().insert_before(
      "parse", std::make_shared<container::AdmissionHandler>(
                   std::make_shared<container::AdmissionController>(
                       container::AdmissionConfig{.metrics = &reg})));
  PongService svc;
  container.deploy("/Pong", svc);
  CostAggregator costs(&reg);
  container.set_cost_aggregator(&costs);

  net::HttpRequest http;
  http.path = "/Pong";
  http.body = ping_envelope().to_xml();

  http.headers["X-GS-Tenant"] = "alice";
  EXPECT_EQ(container.handle(http).status, 200);
  EXPECT_EQ(container.handle(http).status, 200);
  http.headers["X-GS-Tenant"] = "bob";
  EXPECT_EQ(container.handle(http).status, 200);
  http.headers.erase("X-GS-Tenant");  // untagged traffic pools under anon
  EXPECT_EQ(container.handle(http).status, 200);

  // A malformed request is still somebody's spend — and a fault.
  net::HttpRequest bad;
  bad.path = "/Pong";
  bad.headers["X-GS-Tenant"] = "bob";
  bad.body = "<not-xml";
  EXPECT_NE(container.handle(bad).status, 200);

  EXPECT_EQ(costs.requests_recorded(), 5u);
  auto alice = costs.tenant("alice");
  ASSERT_TRUE(alice.has_value());
  EXPECT_EQ(alice->total.requests, 2u);
  EXPECT_EQ(alice->total.faults, 0u);
  EXPECT_EQ(alice->total.request_bytes, 2 * http.body.size());
  EXPECT_GT(alice->total.response_bytes, 0u);
  EXPECT_GT(alice->total.xml_nodes, 0u);
  ASSERT_EQ(alice->by_service.count("/Pong"), 1u);
  EXPECT_EQ(alice->by_service.at("/Pong").requests, 2u);

  auto bob = costs.tenant("bob");
  ASSERT_TRUE(bob.has_value());
  EXPECT_EQ(bob->total.requests, 2u);
  EXPECT_EQ(bob->total.faults, 1u);

  auto anon = costs.tenant("anon");
  ASSERT_TRUE(anon.has_value());
  EXPECT_EQ(anon->total.requests, 1u);

  EXPECT_EQ(reg.counter("tenant.alice.requests").value(), 2u);
  EXPECT_EQ(reg.counter("tenant.bob.requests").value(), 2u);
}

// --- EventLog sequence cursor ----------------------------------------------

TEST(EventLogCursor, SequenceSurvivesWraparoundAndExposesLoss) {
  EventLog log(4);
  for (int i = 1; i <= 6; ++i) {
    log.emit(Level::kInfo, "test", "event " + std::to_string(i));
  }
  EXPECT_EQ(log.last_seq(), 6u);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.dropped(), 2u);

  // The ring kept 3..6; a consumer resuming from 0 sees the first seq jump
  // past 1 — detectable loss, not silent truncation.
  auto all = log.events_since(0);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all.front().seq, 3u);
  EXPECT_EQ(all.back().seq, 6u);
  EXPECT_EQ(all.front().message, "event 3");

  auto tail = log.events_since(4);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].seq, 5u);
  EXPECT_EQ(tail[1].seq, 6u);
  EXPECT_TRUE(log.events_since(6).empty());
  EXPECT_TRUE(log.events_since(99).empty());

  // clear() keeps the sequence monotonic: a resumed cursor never sees a
  // seq it already consumed reused for a different event.
  log.clear();
  log.emit(Level::kInfo, "test", "after clear");
  EXPECT_EQ(log.last_seq(), 7u);
  ASSERT_EQ(log.events_since(6).size(), 1u);
  EXPECT_EQ(log.events_since(6)[0].message, "after clear");
}

// --- Health rollup (regression: PR-6/PR-8 state was invisible) -------------

const xml::Element* find_child(const xml::Element& parent,
                               const std::string& local) {
  for (const xml::Element* el : parent.child_elements()) {
    if (el->name().local() == local) return el;
  }
  return nullptr;
}

TEST(Health, RollupCoversAdmissionBreakerAndScheduler) {
  MetricsRegistry reg;
  reg.counter("container.admitted").add(10);
  reg.counter("container.shed_total").add(3);
  reg.gauge("net.breaker_open_routes").set(1);
  reg.counter("net.breaker_opened").add(2);
  reg.gauge("sched.queue_depth").set(5);
  reg.gauge("sched.nodes_up").set(8);
  EventLog events;

  auto doc = telemetry_document(reg, TraceLog::global(), &events);
  const xml::Element* health = find_child(*doc, "Health");
  ASSERT_NE(health, nullptr);
  EXPECT_EQ(health->attr("admitted"), "10");
  EXPECT_EQ(health->attr("shed_total"), "3");

  const xml::Element* breaker = find_child(*health, "Breaker");
  ASSERT_NE(breaker, nullptr);
  EXPECT_EQ(breaker->attr("open_routes"), "1");
  EXPECT_EQ(breaker->attr("opened"), "2");

  const xml::Element* sched = find_child(*health, "Scheduler");
  ASSERT_NE(sched, nullptr);
  EXPECT_EQ(sched->attr("queue_depth"), "5");
  EXPECT_EQ(sched->attr("nodes_up"), "8");
}

TEST(Health, RollupSectionsAbsentWhenSubsystemsAreSilent) {
  MetricsRegistry reg;  // nothing from admission, breaker, or scheduler
  EventLog events;
  auto doc = telemetry_document(reg, TraceLog::global(), &events);
  const xml::Element* health = find_child(*doc, "Health");
  ASSERT_NE(health, nullptr);
  EXPECT_FALSE(health->attr("admitted").has_value());
  EXPECT_FALSE(health->attr("shed_total").has_value());
  EXPECT_EQ(find_child(*health, "Breaker"), nullptr);
  EXPECT_EQ(find_child(*health, "Scheduler"), nullptr);
}

// --- the series window element the wire queries serialize ------------------

TEST(SeriesElement, CarriesResolutionIntervalAndPoints) {
  MetricsRegistry reg;
  common::ManualClock clock{0};
  TimeSeriesStore store(config_for(reg, clock));
  store.ingest("net.rate", 1000, 5.0);
  store.ingest("net.rate", 2000, 7.0);

  auto el = series_element("net.rate", store.query("net.rate"));
  EXPECT_EQ(el->name().local(), "Series");
  EXPECT_EQ(el->attr("name"), "net.rate");
  EXPECT_EQ(el->attr("resolution"), "raw");
  EXPECT_EQ(el->attr("interval_ms"), "1000");
  auto points = el->child_elements();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0]->attr("t_ms"), "1000");
  EXPECT_EQ(points[0]->attr("value"), "5.0");
  EXPECT_EQ(points[1]->attr("samples"), "1");
}

}  // namespace
}  // namespace gs::telemetry
