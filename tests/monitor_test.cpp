// Tests for the push-based monitoring layer: MonitorProducer snapshots and
// threshold alerts delivered over BOTH stacks through a 30%-drop route, the
// Chrome trace export for a distributed gridbox request, and adopt_remote
// trace propagation across a brokered-notification hop.
#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "container/container.hpp"
#include "gridbox/clients.hpp"
#include "net/retry.hpp"
#include "net/tcp.hpp"
#include "net/virtual_network.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/monitor.hpp"
#include "telemetry/trace.hpp"
#include "wsn/broker.hpp"
#include "wsn/client.hpp"
#include "wsn/consumer.hpp"
#include "wsn/producer.hpp"
#include "wse/service.hpp"

namespace gs::telemetry {
namespace {

xml::QName app(const char* local) { return {"urn:app", local}; }

// ---------------------------------------------------------------------------
// Dual-stack monitoring fixture: one MonitorProducer publishing the same
// registry over wsn AND wse, one MonitorConsumer per stack, each reached
// through its own faulty route.
// ---------------------------------------------------------------------------

struct MonitorFixture {
  common::ManualClock clock{1000};
  net::VirtualNetwork net;
  MetricsRegistry registry;  // local: deltas independent of global activity

  // --- wsn producer side (container at "p") ---
  xmldb::XmlDatabase db{std::make_unique<xmldb::MemoryBackend>(), {}};
  container::Container wsn_container{{.clock = &clock}};
  wsrf::ResourceHome sub_home{db, "subs", &wsn_container.lifetime()};
  std::unique_ptr<wsn::SubscriptionManagerService> wsn_manager;
  std::unique_ptr<container::Service> source_service;
  std::unique_ptr<net::VirtualCaller> wsn_raw_sink;
  std::unique_ptr<net::RetryingCaller> wsn_sink;
  std::unique_ptr<wsn::NotificationProducer> wsn_producer;

  // --- wse producer side (container at "s") ---
  container::Container wse_container{{.clock = &clock}};
  wse::SubscriptionStore store;
  std::unique_ptr<wse::WseSubscriptionManagerService> wse_manager;
  std::unique_ptr<wse::EventSourceService> event_source;
  std::unique_ptr<net::VirtualCaller> wse_raw_sink;
  std::unique_ptr<net::RetryingCaller> wse_sink;
  std::unique_ptr<wse::NotificationManager> notifier;

  // --- consumers, one per stack, each behind a faulty route ---
  MonitorConsumer wsn_monitor;
  MonitorConsumer wse_monitor;
  std::unique_ptr<net::VirtualCaller> caller;  // subscription traffic

  std::unique_ptr<MonitorProducer> producer;

  MonitorFixture() {
    // Retries advance nothing and sleep nowhere: the schedule is simulated,
    // so recovery through the seeded drops is deterministic and instant.
    net::RetryPolicy retry{
        .max_attempts = 8, .base_delay_ms = 1, .jitter = 0.0, .seed = 11};
    caller =
        std::make_unique<net::VirtualCaller>(net, net::VirtualCaller::Options{});

    wsn_manager = std::make_unique<wsn::SubscriptionManagerService>(
        sub_home, "http://p/Subscriptions");
    source_service = std::make_unique<container::Service>("Source");
    wsn_raw_sink = std::make_unique<net::VirtualCaller>(
        net, net::VirtualCaller::Options{.keep_alive = false});
    wsn_sink = std::make_unique<net::RetryingCaller>(*wsn_raw_sink, retry,
                                                     &clock,
                                                     [](common::TimeMs) {});
    wsn_producer = std::make_unique<wsn::NotificationProducer>(
        wsn::NotificationProducer::Config{.sink_caller = wsn_sink.get(),
                                          .producer_address = "http://p/Source",
                                          .manager = wsn_manager.get(),
                                          .clock = &clock},
        monitor_topics());
    wsn_producer->register_into(*source_service);
    wsn_container.deploy("/Source", *source_service);
    wsn_container.deploy("/Subscriptions", *wsn_manager);

    wse_manager = std::make_unique<wse::WseSubscriptionManagerService>(
        store, "http://s/Subscriptions", clock);
    event_source = std::make_unique<wse::EventSourceService>(
        "Events", store, *wse_manager, clock);
    wse_raw_sink = std::make_unique<net::VirtualCaller>(
        net, net::VirtualCaller::Options{
                 .transport = net::TransportKind::kSoapTcp});
    wse_sink = std::make_unique<net::RetryingCaller>(*wse_raw_sink, retry,
                                                     &clock,
                                                     [](common::TimeMs) {});
    notifier = std::make_unique<wse::NotificationManager>(store, *wse_sink,
                                                          clock);
    wse_container.deploy("/Events", *event_source);
    wse_container.deploy("/Subscriptions", *wse_manager);

    net.bind("p", wsn_container);
    net.bind("s", wse_container);
    net.bind("cw", wsn_monitor);
    net.bind("ce", wse_monitor);

    producer = std::make_unique<MonitorProducer>(MonitorProducer::Config{
        .registry = &registry,
        .producer_address = "http://p/Source",
        .wsn = wsn_producer.get(),
        .wse = notifier.get(),
        .clock = &clock,
        .interval_ms = 1000,
    });
  }

  void subscribe_both() {
    wsn_monitor.subscribe_wsn(*caller, "http://p/Source", "http://cw/sink");
    wse_monitor.subscribe_wse(*caller, "http://s/Events", "http://ce/sink");
  }
};

// The issue's acceptance scenario: across routes dropping 30% of exchanges
// (seeded, deterministic), a MonitorConsumer on each stack still receives
// every snapshot and exactly one threshold alert — monitoring traffic rides
// the same retry machinery as application traffic.
TEST(Monitor, EachStackDeliversSnapshotsAndOneAlertThroughFaultyRoute) {
  MonitorFixture fx;
  fx.subscribe_both();
  fx.net.set_fault_policy("cw", {.drop_probability = 0.3, .seed = 1234});
  fx.net.set_fault_policy("ce", {.drop_probability = 0.3, .seed = 4321});

  fx.producer->add_rule({.name = "high-request-rate",
                         .metric = "app.requests",
                         .kind = AlertRule::Kind::kCounterRate,
                         .threshold = 10.0});

  std::uint64_t warns_before = EventLog::global().count(Level::kWarn);

  Counter& requests = fx.registry.counter("app.requests");
  fx.producer->tick();  // delta 0: quiet
  requests.add(5);
  fx.producer->tick();  // delta 5: under threshold
  requests.add(20);
  fx.producer->tick();  // delta 20: breach -> the one alert
  requests.add(20);
  fx.producer->tick();  // delta 20: still breached, latched -> no alert
  requests.add(2);
  fx.producer->tick();  // delta 2: clean tick re-arms the rule

  EXPECT_EQ(fx.producer->snapshots_published(), 5u);
  EXPECT_EQ(fx.producer->alerts_fired(), 1u);

  for (MonitorConsumer* monitor : {&fx.wsn_monitor, &fx.wse_monitor}) {
    EXPECT_TRUE(monitor->wait_for_snapshots(3, 0));
    EXPECT_EQ(monitor->snapshot_count(), 5u);
    EXPECT_EQ(monitor->alert_count(), 1u);
    auto state = monitor->state_for("http://p/Source");
    ASSERT_TRUE(state.has_value());
    EXPECT_EQ(state->last_seq, 5u);
    EXPECT_EQ(state->last_alert, "high-request-rate");
    EXPECT_EQ(state->counter_totals.at("app.requests"), 47u);
  }
  // Each consumer saw its own stack's framing, never the other's.
  EXPECT_GT(fx.wsn_monitor.state_for("http://p/Source")->via_wsn, 0u);
  EXPECT_EQ(fx.wsn_monitor.state_for("http://p/Source")->via_wse, 0u);
  EXPECT_GT(fx.wse_monitor.state_for("http://p/Source")->via_wse, 0u);
  EXPECT_EQ(fx.wse_monitor.state_for("http://p/Source")->via_wsn, 0u);

  // The alert and the injected faults both landed in the event log.
  EXPECT_GT(EventLog::global().count(Level::kWarn), warns_before);
  bool saw_alert = false, saw_fault = false;
  for (const Event& e : EventLog::global().snapshot()) {
    if (e.component == "telemetry.monitor" && e.message == "alert fired") {
      saw_alert = true;
    }
    if (e.component == "net.fabric" && e.message == "injected fault") {
      saw_fault = true;
    }
  }
  EXPECT_TRUE(saw_alert);
  EXPECT_TRUE(saw_fault);
}

TEST(Monitor, PollHonorsIntervalAndStatesListsProducers) {
  MonitorFixture fx;
  fx.subscribe_both();

  EXPECT_TRUE(fx.producer->poll());   // first cycle always runs
  EXPECT_FALSE(fx.producer->poll());  // interval not yet elapsed
  fx.clock.advance(1000);
  EXPECT_TRUE(fx.producer->poll());

  EXPECT_EQ(fx.wsn_monitor.states().size(), 1u);
  EXPECT_EQ(fx.wsn_monitor.states()[0].producer, "http://p/Source");
  EXPECT_EQ(fx.wsn_monitor.snapshot_count(), 2u);
  EXPECT_EQ(fx.wse_monitor.snapshot_count(), 2u);
}

// ---------------------------------------------------------------------------
// A minimal JSON reader — enough to verify the Chrome trace export really
// parses, without hand-waving over string containment.
// ---------------------------------------------------------------------------

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  const Json& at(const std::string& key) const { return object.at(key); }
};

struct JsonParser {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }
  char peek() {
    skip_ws();
    if (pos >= text.size()) throw std::runtime_error("unexpected end of JSON");
    return text[pos];
  }
  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos));
    }
    ++pos;
  }

  Json parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't': return parse_literal("true", Json::Kind::kBool, true);
      case 'f': return parse_literal("false", Json::Kind::kBool, false);
      case 'n': return parse_literal("null", Json::Kind::kNull, false);
      default: return parse_number();
    }
  }

  Json parse_literal(const char* word, Json::Kind kind, bool boolean) {
    if (text.compare(pos, std::strlen(word), word) != 0) {
      throw std::runtime_error("bad literal");
    }
    pos += std::strlen(word);
    Json out;
    out.kind = kind;
    out.boolean = boolean;
    return out;
  }

  Json parse_number() {
    std::size_t end = pos;
    while (end < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[end])) ||
            std::strchr("+-.eE", text[end]))) {
      ++end;
    }
    Json out;
    out.kind = Json::Kind::kNumber;
    out.number = std::stod(text.substr(pos, end - pos));
    pos = end;
    return out;
  }

  Json parse_string() {
    expect('"');
    Json out;
    out.kind = Json::Kind::kString;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\') {
        ++pos;
        if (pos >= text.size()) throw std::runtime_error("bad escape");
        switch (text[pos]) {
          case 'n': out.string += '\n'; break;
          case 'r': out.string += '\r'; break;
          case 't': out.string += '\t'; break;
          case 'u': {
            unsigned code = std::stoul(text.substr(pos + 1, 4), nullptr, 16);
            out.string += static_cast<char>(code);  // BMP controls only
            pos += 4;
            break;
          }
          default: out.string += text[pos];
        }
        ++pos;
      } else {
        out.string += text[pos++];
      }
    }
    expect('"');
    return out;
  }

  Json parse_array() {
    expect('[');
    Json out;
    out.kind = Json::Kind::kArray;
    if (peek() == ']') { ++pos; return out; }
    for (;;) {
      out.array.push_back(parse_value());
      if (peek() == ',') { ++pos; continue; }
      expect(']');
      return out;
    }
  }

  Json parse_object() {
    expect('{');
    Json out;
    out.kind = Json::Kind::kObject;
    if (peek() == '}') { ++pos; return out; }
    for (;;) {
      Json key = parse_string();
      expect(':');
      out.object.emplace(key.string, parse_value());
      if (peek() == ',') { ++pos; continue; }
      expect('}');
      return out;
    }
  }
};

Json parse_json(const std::string& text) {
  JsonParser parser{text};
  Json value = parser.parse_value();
  parser.skip_ws();
  if (parser.pos != text.size()) throw std::runtime_error("trailing JSON");
  return value;
}

std::string hex_id(std::uint64_t id) {
  std::ostringstream out;
  out << std::hex << id;
  return out.str();
}

std::filesystem::path temp_dir(const std::string& tag) {
  auto p = std::filesystem::temp_directory_path() / ("gs-monitor-" + tag);
  std::filesystem::remove_all(p);
  return p;
}

// The issue's other acceptance scenario: a distributed gridbox request —
// client, central container, and execution host each contributing spans —
// exported as Chrome trace-event JSON that parses, spreads the layers over
// at least two process ids, and whose span/parent args agree with the
// TraceLog's own parentage.
TEST(Monitor, ChromeTraceOfDistributedGridboxRequestMatchesTraceLog) {
  const std::string admin_dn = "CN=admin,O=VO";
  const std::string alice_dn = "CN=alice,O=VO";
  common::ManualClock clock{1'000'000};
  net::VirtualNetwork net;
  net::VirtualCaller caller(net, {});
  net::VirtualCaller outcalls(net, {});
  net::VirtualCaller sink(net, {.keep_alive = false});
  container::ContainerConfig cc;
  cc.clock = &clock;
  gridbox::WsrfGridDeployment grid({
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .central_container = cc,
      .outcall_caller = &outcalls,
      .outcall_security = {},
      .notification_sink = &sink,
      .central_base = "http://vo.example",
      .reservation_ttl_ms = 4LL * 3600 * 1000,
      .admin_dn = admin_dn,
  });
  grid.add_host({.host = "node1",
                 .base = "http://node1.example",
                 .backend = std::make_unique<xmldb::MemoryBackend>(),
                 .container = cc,
                 .file_root = temp_dir("wsrf-node1")});
  net.bind("vo.example", grid.central_container());
  net.bind("node1.example", grid.host_container("node1"));

  gridbox::WsrfAdminClient admin(caller, grid, {admin_dn, {}});
  admin.add_account(alice_dn, {gridbox::kPrivilegeSubmit});
  admin.register_site({"node1", grid.exec_address("node1"),
                       grid.data_address("node1"), {"blast"}});

  std::uint64_t trace_id;
  {
    SpanScope root("test.gridbox", "test");
    trace_id = root.context().trace_id;
    gridbox::WsrfUserClient alice(caller, grid, {alice_dn, {}});
    auto sites = alice.get_available_resources("blast");
    ASSERT_EQ(sites.size(), 1u);
    alice.make_reservation("node1");
  }

  std::vector<SpanRecord> spans = TraceLog::global().spans_for(trace_id);
  ASSERT_GE(spans.size(), 3u);

  Json doc = parse_json(export_chrome_trace(spans));
  ASSERT_EQ(doc.kind, Json::Kind::kObject);
  const Json& events = doc.at("traceEvents");
  ASSERT_EQ(events.kind, Json::Kind::kArray);

  // Layers spread over at least two Chrome processes, each named.
  std::set<int> pids;
  std::set<int> named_pids;
  std::map<std::string, std::string> exported_parent;  // span hex -> parent hex
  for (const Json& event : events.array) {
    const std::string& ph = event.at("ph").string;
    if (ph == "M") {
      EXPECT_EQ(event.at("name").string, "process_name");
      named_pids.insert(static_cast<int>(event.at("pid").number));
      continue;
    }
    ASSERT_EQ(ph, "X");
    pids.insert(static_cast<int>(event.at("pid").number));
    const Json& args = event.at("args");
    EXPECT_EQ(args.at("trace").string, hex_id(trace_id));
    exported_parent[args.at("span").string] = args.at("parent").string;
  }
  EXPECT_GE(pids.size(), 2u);
  EXPECT_EQ(named_pids, pids);

  // Every TraceLog span appears exactly once, with its true parent.
  ASSERT_EQ(exported_parent.size(), spans.size());
  for (const SpanRecord& span : spans) {
    auto it = exported_parent.find(hex_id(span.span_id));
    ASSERT_NE(it, exported_parent.end()) << span.name;
    EXPECT_EQ(it->second, hex_id(span.parent_span_id)) << span.name;
  }

  // And the assembled tree nests: spans with a retained parent are not
  // roots, and the root is the test span itself.
  auto trees = assemble_traces(spans);
  ASSERT_EQ(trees.size(), 1u);
  ASSERT_EQ(trees[0].roots.size(), 1u);
  EXPECT_EQ(trees[0].spans[trees[0].roots[0]].name, "test.gridbox");
  EXPECT_FALSE(critical_path_summary(trees[0]).empty());
}

// ---------------------------------------------------------------------------
// adopt_remote across a brokered hop: the publisher's notification crosses a
// REAL socket to the broker (whose worker thread starts a provisional trace,
// then re-roots onto the carried context), and the broker's re-publish to
// the consumer continues the same trace — one trace, three layers.
// ---------------------------------------------------------------------------

// The broker's TCP base URL is only known after the server binds; requests
// are forwarded to the container once it exists.
class ForwardingEndpoint final : public net::Endpoint {
 public:
  net::Endpoint* target = nullptr;
  net::HttpResponse handle(const net::HttpRequest& request) override {
    return target->handle(request);
  }
};

TEST(Monitor, AdoptRemoteJoinsBrokeredHopIntoOneTrace) {
  common::ManualClock clock{1000};
  net::VirtualNetwork net;

  // Publisher: a full wsn producer whose sink speaks real TCP (that is the
  // hop that exercises adopt_remote — in-process delivery shares the
  // thread-local context and never needs it).
  xmldb::XmlDatabase pub_db{std::make_unique<xmldb::MemoryBackend>(), {}};
  container::Container pub_container{{.clock = &clock}};
  wsrf::ResourceHome pub_subs{pub_db, "subs", &pub_container.lifetime()};
  wsn::SubscriptionManagerService pub_manager(pub_subs,
                                              "http://p/Subscriptions");
  container::Service source_service("Source");
  net::TcpSoapCaller tcp_sink;
  wsn::TopicNamespace pub_topics;
  pub_topics.add("job/done");
  wsn::NotificationProducer publisher(
      wsn::NotificationProducer::Config{.sink_caller = &tcp_sink,
                                        .producer_address = "http://p/Source",
                                        .manager = &pub_manager,
                                        .clock = &clock},
      std::move(pub_topics));
  publisher.register_into(source_service);
  pub_container.deploy("/Source", source_service);
  pub_container.deploy("/Subscriptions", pub_manager);
  net.bind("p", pub_container);

  // Broker: behind a real HTTP server; its own outbound traffic (subscribe
  // back to the publisher, deliver to consumers) rides the virtual fabric.
  ForwardingEndpoint fwd;
  net::HttpServer server(fwd, 0, 2);
  net::VirtualCaller broker_caller(net, {});
  xmldb::XmlDatabase broker_db{std::make_unique<xmldb::MemoryBackend>(), {}};
  container::Container broker_container{{.clock = &clock}};
  wsrf::ResourceHome broker_subs{broker_db, "broker-subs",
                                 &broker_container.lifetime()};
  wsrf::ResourceHome registrations{broker_db, "registrations",
                                   &broker_container.lifetime()};
  wsn::SubscriptionManagerService broker_manager(
      broker_subs, server.base_url() + "/Subscriptions");
  wsn::TopicNamespace broker_topics;
  broker_topics.add("job/done");
  wsn::BrokerService broker(
      wsn::BrokerService::Config{&broker_caller, server.base_url() + "/Broker",
                                 &broker_manager, &clock},
      registrations, std::move(broker_topics));
  broker_container.deploy("/Broker", broker);
  broker_container.deploy("/Subscriptions", broker_manager);
  fwd.target = &broker_container;

  wsn::NotificationConsumer consumer;
  net.bind("bc", consumer);

  // Consumer subscribes at the broker; the broker registers the publisher
  // (subscribing back to it over the virtual fabric).
  net::TcpSoapCaller wire;
  wsn::NotificationProducerProxy broker_sub(
      wire, soap::EndpointReference(server.base_url() + "/Broker"));
  wsn::Filter filter;
  filter.set_topic(wsn::TopicExpression::parse(
      wsn::TopicExpression::Dialect::kConcrete, "job/done"));
  broker_sub.subscribe(soap::EndpointReference("http://bc/sink"), filter);
  wsn::BrokerProxy broker_proxy(
      wire, soap::EndpointReference(server.base_url() + "/Broker"));
  broker_proxy.register_publisher(soap::EndpointReference("http://p/Source"),
                                  {"job/done"}, false);

  std::uint64_t trace_id;
  {
    SpanScope root("test.publish", "test");
    trace_id = root.context().trace_id;
    xml::Element ev(app("Event"));
    ev.append_element(app("code")).set_text("1");
    ASSERT_EQ(publisher.notify("job/done", ev), 1u);  // to the broker
  }
  ASSERT_TRUE(consumer.wait_for(1, 2000));

  // One trace spanning publisher, broker, and consumer-delivery layers.
  std::vector<SpanRecord> spans = TraceLog::global().spans_for(trace_id);
  std::set<std::string> layers;
  std::set<std::string> names;
  for (const SpanRecord& s : spans) {
    layers.insert(s.layer);
    names.insert(s.name);
  }
  EXPECT_GE(layers.size(), 3u) << "layers crossed: " << layers.size();
  EXPECT_TRUE(names.contains("wsn.deliver"));       // both delivery hops
  EXPECT_TRUE(names.contains("http.receive"));      // broker's server side
  EXPECT_TRUE(names.contains("container.dispatch"));

  // The broker-side spans were re-rooted onto the publisher's trace: every
  // span's parent is another retained span of this trace (or the root).
  std::set<std::uint64_t> ids;
  for (const SpanRecord& s : spans) ids.insert(s.span_id);
  std::size_t roots = 0;
  for (const SpanRecord& s : spans) {
    if (s.parent_span_id == 0 || !ids.contains(s.parent_span_id)) {
      ++roots;
      EXPECT_EQ(s.name, "test.publish");
    }
  }
  EXPECT_EQ(roots, 1u);
}

}  // namespace
}  // namespace gs::telemetry
