// Tests for SOAP envelopes and WS-Addressing.
#include <gtest/gtest.h>

#include "soap/envelope.hpp"
#include "soap/namespaces.hpp"
#include "xml/parser.hpp"

namespace gs::soap {
namespace {

TEST(Envelope, FreshEnvelopeHasHeaderAndBody) {
  Envelope env;
  EXPECT_EQ(env.header().name(), xml::QName(ns::kEnvelope, "Header"));
  EXPECT_EQ(env.body().name(), xml::QName(ns::kEnvelope, "Body"));
  EXPECT_EQ(env.payload(), nullptr);
}

TEST(Envelope, PayloadAccess) {
  Envelope env;
  env.add_payload(xml::QName("urn:app", "Op")).set_text("x");
  ASSERT_NE(env.payload(), nullptr);
  EXPECT_EQ(env.payload()->name().local(), "Op");
}

TEST(Envelope, WireRoundTrip) {
  Envelope env;
  MessageInfo info;
  info.to = "http://host/svc";
  info.action = "urn:app/Op";
  info.message_id = "urn:uuid:123";
  env.write_addressing(info);
  env.add_payload(xml::QName("urn:app", "Op")).set_text("payload");

  Envelope back = Envelope::from_xml(env.to_xml());
  MessageInfo read = back.read_addressing();
  EXPECT_EQ(read.to, "http://host/svc");
  EXPECT_EQ(read.action, "urn:app/Op");
  EXPECT_EQ(read.message_id, "urn:uuid:123");
  EXPECT_EQ(back.payload()->text(), "payload");
}

TEST(Envelope, FromXmlRejectsNonEnvelope) {
  EXPECT_THROW(Envelope::from_xml("<notsoap/>"), std::runtime_error);
}

TEST(Envelope, CopyIsDeep) {
  Envelope a;
  a.add_payload(xml::QName("x")).set_text("1");
  Envelope b = a;
  b.payload()->set_text("2");
  EXPECT_EQ(a.payload()->text(), "1");
}

// --- addressing -----------------------------------------------------------------

TEST(Addressing, ReferenceHeadersEchoEprProperties) {
  EndpointReference epr("http://host/svc");
  epr.add_reference_property(xml::QName("urn:impl", "ResourceID"), "abc");

  Envelope env;
  MessageInfo info;
  info.target(epr);
  info.action = "urn:op";
  env.write_addressing(info);

  MessageInfo read = Envelope::from_xml(env.to_xml()).read_addressing();
  EXPECT_EQ(read.to, "http://host/svc");
  EXPECT_EQ(read.reference_header(xml::QName("urn:impl", "ResourceID")), "abc");
}

TEST(Addressing, AddressingHeadersAreNotReferenceHeaders) {
  Envelope env;
  MessageInfo info;
  info.to = "http://a";
  info.action = "urn:op";
  info.message_id = "urn:uuid:1";
  env.write_addressing(info);
  MessageInfo read = env.read_addressing();
  EXPECT_TRUE(read.reference_headers.empty());
}

TEST(Addressing, ReplyToRoundTrips) {
  EndpointReference reply("http://client/sink");
  Envelope env;
  MessageInfo info;
  info.reply_to = reply;
  env.write_addressing(info);
  MessageInfo read = Envelope::from_xml(env.to_xml()).read_addressing();
  EXPECT_EQ(read.reply_to.address(), "http://client/sink");
}

TEST(Addressing, EprEquality) {
  EndpointReference a("http://x");
  a.add_reference_property(xml::QName("id"), "1");
  EndpointReference b("http://x");
  b.add_reference_property(xml::QName("id"), "1");
  EXPECT_EQ(a, b);
  b.add_reference_property(xml::QName("id2"), "2");
  EXPECT_NE(a, b);
}

TEST(Addressing, EprCopySemantics) {
  EndpointReference a("http://x");
  a.add_reference_property(xml::QName("id"), "1");
  EndpointReference b = a;
  b.add_reference_property(xml::QName("id2"), "2");
  EXPECT_EQ(a.reference_properties().size(), 1u);
  EXPECT_EQ(b.reference_properties().size(), 2u);
}

TEST(Addressing, EprXmlRoundTrip) {
  EndpointReference epr("http://host/svc");
  epr.add_reference_property(xml::QName("urn:impl", "ResourceID"), "abc");
  auto el = epr.to_xml(xml::QName("urn:t", "EPR"));
  EndpointReference back = EndpointReference::from_xml(*el);
  EXPECT_EQ(epr, back);
}

TEST(Addressing, FromXmlRequiresAddress) {
  auto el = xml::parse_element("<EPR/>");
  EXPECT_THROW(EndpointReference::from_xml(*el), std::runtime_error);
}

TEST(Addressing, StructuredReferenceProperty) {
  EndpointReference epr("http://host");
  auto prop = std::make_unique<xml::Element>(xml::QName("urn:x", "Key"));
  prop->append_element(xml::QName("urn:x", "Part")).set_text("v");
  epr.add_reference_property(std::move(prop));
  auto el = epr.to_xml(xml::QName("EPR"));
  EndpointReference back = EndpointReference::from_xml(*el);
  EXPECT_EQ(back, epr);
}

// --- faults ----------------------------------------------------------------------

TEST(Fault, RoundTrip) {
  Fault f;
  f.code = "Sender";
  f.subcode = "wsbf:ResourceUnknownFault";
  f.reason = "no such resource";
  f.detail = "details here";
  Envelope env = Envelope::make_fault(f);
  EXPECT_TRUE(env.is_fault());

  Envelope back = Envelope::from_xml(env.to_xml());
  ASSERT_TRUE(back.is_fault());
  Fault read = back.fault();
  EXPECT_EQ(read.code, "Sender");
  EXPECT_EQ(read.subcode, "wsbf:ResourceUnknownFault");
  EXPECT_EQ(read.reason, "no such resource");
  EXPECT_EQ(read.detail, "details here");
}

TEST(Fault, ThrowIfFault) {
  Envelope env = Envelope::make_fault({"Receiver", "boom", "", ""});
  EXPECT_THROW(env.throw_if_fault(), SoapFault);
  Envelope ok;
  EXPECT_NO_THROW(ok.throw_if_fault());
}

TEST(Fault, NonFaultEnvelopeFaultAccessorThrows) {
  Envelope env;
  EXPECT_FALSE(env.is_fault());
  EXPECT_THROW(env.fault(), std::runtime_error);
}

TEST(Fault, SoapFaultCarriesReasonAsWhat) {
  SoapFault f("Sender", "bad input");
  EXPECT_STREQ(f.what(), "bad input");
  EXPECT_EQ(f.fault().code, "Sender");
}

}  // namespace
}  // namespace gs::soap
