// Tests for the XML substrate: DOM, parser, writer, canonicalizer, schema.
#include <gtest/gtest.h>

#include "xml/canonical.hpp"
#include "xml/node.hpp"
#include "xml/parser.hpp"
#include "xml/pull.hpp"
#include "xml/schema.hpp"
#include "xml/writer.hpp"

namespace gs::xml {
namespace {

// --- QName -------------------------------------------------------------------

TEST(QName, IdentityIsUriPlusLocal) {
  EXPECT_EQ(QName("urn:a", "x"), QName("urn:a", "x"));
  EXPECT_NE(QName("urn:a", "x"), QName("urn:b", "x"));
  EXPECT_NE(QName("urn:a", "x"), QName("urn:a", "y"));
}

TEST(QName, ClarkNotation) {
  EXPECT_EQ(QName("urn:a", "x").clark(), "{urn:a}x");
  EXPECT_EQ(QName("x").clark(), "x");
}

// --- Element -----------------------------------------------------------------

TEST(Element, AttributesSetAndReplace) {
  Element el(QName("root"));
  el.set_attr("a", "1");
  el.set_attr("a", "2");
  EXPECT_EQ(el.attr("a"), "2");
  EXPECT_EQ(el.attributes().size(), 1u);
  EXPECT_FALSE(el.attr("missing").has_value());
}

TEST(Element, RemoveAttr) {
  Element el(QName("root"));
  el.set_attr("a", "1");
  EXPECT_TRUE(el.remove_attr(QName("a")));
  EXPECT_FALSE(el.remove_attr(QName("a")));
}

TEST(Element, TextConcatenatesDirectChildren) {
  Element el(QName("root"));
  el.append_text("a");
  el.append_element(QName("child")).append_text("HIDDEN");
  el.append_text("b");
  EXPECT_EQ(el.text(), "ab");
}

TEST(Element, ChildLookup) {
  Element el(QName("root"));
  el.append_element(QName("urn:x", "a"));
  el.append_element(QName("urn:y", "a"));
  EXPECT_EQ(el.child(QName("urn:y", "a"))->name().ns(), "urn:y");
  EXPECT_EQ(el.child_local("a")->name().ns(), "urn:x");  // first wins
  EXPECT_EQ(el.children_named(QName("urn:x", "a")).size(), 1u);
  EXPECT_EQ(el.child_elements().size(), 2u);
}

TEST(Element, DetachChildTransfersOwnership) {
  Element el(QName("root"));
  Element& child = el.append_element(QName("child"));
  std::unique_ptr<Node> detached = el.detach_child(child);
  ASSERT_TRUE(detached);
  EXPECT_FALSE(el.has_children());
  EXPECT_EQ(detached->parent(), nullptr);
}

TEST(Element, CloneIsDeep) {
  Element el(QName("root"));
  el.set_attr("a", "1");
  el.append_element(QName("child")).set_text("v");
  auto copy = el.clone_element();
  EXPECT_TRUE(Element::deep_equal(el, *copy));
  copy->child(QName("child"))->set_text("other");
  EXPECT_FALSE(Element::deep_equal(el, *copy));
}

TEST(Element, DeepEqualIgnoresComments) {
  Element a(QName("r"));
  a.append(std::make_unique<CharData>(NodeKind::kComment, "note"));
  a.append_element(QName("c"));
  Element b(QName("r"));
  b.append_element(QName("c"));
  EXPECT_TRUE(Element::deep_equal(a, b));
}

TEST(Element, ParentPointersMaintained) {
  Element el(QName("root"));
  Element& child = el.append_element(QName("c"));
  EXPECT_EQ(child.parent(), &el);
}

// --- parser ------------------------------------------------------------------

TEST(Parser, SimpleDocument) {
  auto root = parse_element("<a><b>text</b></a>");
  EXPECT_EQ(root->name().local(), "a");
  EXPECT_EQ(root->child_local("b")->text(), "text");
}

TEST(Parser, Prolog) {
  auto root = parse_element("<?xml version=\"1.0\"?>\n<a/>");
  EXPECT_EQ(root->name().local(), "a");
}

TEST(Parser, DefaultNamespace) {
  auto root = parse_element("<a xmlns=\"urn:x\"><b/></a>");
  EXPECT_EQ(root->name(), QName("urn:x", "a"));
  EXPECT_EQ(root->child_elements()[0]->name(), QName("urn:x", "b"));
}

TEST(Parser, PrefixedNamespaces) {
  auto root = parse_element(
      "<p:a xmlns:p=\"urn:x\" xmlns:q=\"urn:y\"><q:b p:attr=\"1\"/></p:a>");
  EXPECT_EQ(root->name(), QName("urn:x", "a"));
  const Element* b = root->child(QName("urn:y", "b"));
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->attr(QName("urn:x", "attr")), "1");
}

TEST(Parser, NamespaceShadowing) {
  auto root = parse_element(
      "<a xmlns=\"urn:outer\"><b xmlns=\"urn:inner\"/><c/></a>");
  EXPECT_EQ(root->child_elements()[0]->name().ns(), "urn:inner");
  EXPECT_EQ(root->child_elements()[1]->name().ns(), "urn:outer");
}

TEST(Parser, NamespaceUndeclaration) {
  auto root = parse_element("<a xmlns=\"urn:x\"><b xmlns=\"\"/></a>");
  EXPECT_EQ(root->child_elements()[0]->name().ns(), "");
}

TEST(Parser, UnprefixedAttributesHaveNoNamespace) {
  auto root = parse_element("<a xmlns=\"urn:x\" attr=\"v\"/>");
  EXPECT_EQ(root->attr(QName("attr")), "v");
}

TEST(Parser, BuiltinEntities) {
  auto root = parse_element("<a>&lt;&gt;&amp;&quot;&apos;</a>");
  EXPECT_EQ(root->text(), "<>&\"'");
}

TEST(Parser, NumericCharacterReferences) {
  auto root = parse_element("<a>&#65;&#x42;</a>");
  EXPECT_EQ(root->text(), "AB");
}

TEST(Parser, Utf8CharacterReference) {
  auto root = parse_element("<a>&#x20AC;</a>");  // euro sign
  EXPECT_EQ(root->text(), "\xE2\x82\xAC");
}

TEST(Parser, EntityInAttribute) {
  auto root = parse_element("<a v=\"&amp;&lt;\"/>");
  EXPECT_EQ(root->attr("v"), "&<");
}

TEST(Parser, Cdata) {
  auto root = parse_element("<a><![CDATA[<not & parsed>]]></a>");
  EXPECT_EQ(root->text(), "<not & parsed>");
}

TEST(Parser, CommentsPreservedInTree) {
  auto root = parse_element("<a><!-- note --><b/></a>");
  ASSERT_EQ(root->children().size(), 2u);
  EXPECT_EQ(root->children()[0]->kind(), NodeKind::kComment);
}

TEST(Parser, ProcessingInstructionsSkipped) {
  auto root = parse_element("<a><?pi data?><b/></a>");
  EXPECT_EQ(root->child_elements().size(), 1u);
}

TEST(Parser, MixedContent) {
  auto root = parse_element("<a>x<b/>y</a>");
  EXPECT_EQ(root->text(), "xy");
  EXPECT_EQ(root->child_elements().size(), 1u);
}

TEST(Parser, SingleQuotedAttributes) {
  auto root = parse_element("<a v='1'/>");
  EXPECT_EQ(root->attr("v"), "1");
}

struct BadXmlCase {
  const char* name;
  const char* input;
};

class ParserRejects : public ::testing::TestWithParam<BadXmlCase> {};

INSTANTIATE_TEST_SUITE_P(
    Malformed, ParserRejects,
    ::testing::Values(
        BadXmlCase{"MismatchedTags", "<a></b>"},
        BadXmlCase{"UnclosedTag", "<a><b></a>"},
        BadXmlCase{"TrailingContent", "<a/><b/>"},
        BadXmlCase{"UnboundPrefix", "<p:a/>"},
        BadXmlCase{"UnboundAttrPrefix", "<a p:v='1'/>"},
        BadXmlCase{"BareAmpersand", "<a>&unknown;</a>"},
        BadXmlCase{"LtInAttribute", "<a v=\"<\"/>"},
        BadXmlCase{"Doctype", "<!DOCTYPE a><a/>"},
        BadXmlCase{"EmptyInput", ""},
        BadXmlCase{"UnterminatedCdata", "<a><![CDATA[x</a>"},
        BadXmlCase{"UnquotedAttr", "<a v=1/>"},
        BadXmlCase{"HugeCharRef", "<a>&#x110000;</a>"}),
    [](const auto& info) { return info.param.name; });

TEST_P(ParserRejects, ThrowsParseError) {
  EXPECT_THROW(parse_element(GetParam().input), ParseError);
}

TEST(Parser, ErrorCarriesPosition) {
  try {
    parse_element("<a>\n<b></c></a>");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_GT(e.column(), 0);
  }
}

// --- writer ------------------------------------------------------------------

TEST(Writer, EscapesText) {
  Element el(QName("a"));
  el.set_text("x < y & z");
  EXPECT_EQ(write(el), "<a>x &lt; y &amp; z</a>");
}

TEST(Writer, EscapesAttributes) {
  Element el(QName("a"));
  el.set_attr("v", "\"quoted\" & <tag>");
  EXPECT_EQ(write(el), "<a v=\"&quot;quoted&quot; &amp; &lt;tag&gt;\"/>");
}

TEST(Writer, UsesPrefixHints) {
  Element el(QName("urn:x", "a"));
  el.declare_prefix("x", "urn:x");
  EXPECT_EQ(write(el), "<x:a xmlns:x=\"urn:x\"/>");
}

TEST(Writer, GeneratesPrefixesWhenUnhinted) {
  Element el(QName("urn:x", "a"));
  std::string out = write(el);
  EXPECT_NE(out.find("urn:x"), std::string::npos);
  // Must round-trip to the same names.
  auto back = parse_element(out);
  EXPECT_EQ(back->name(), el.name());
}

TEST(Writer, DefaultNamespaceHint) {
  Element el(QName("urn:x", "a"));
  el.declare_prefix("", "urn:x");
  EXPECT_EQ(write(el), "<a xmlns=\"urn:x\"/>");
}

TEST(Writer, DeclarationOption) {
  Element el(QName("a"));
  std::string out = write(el, {.pretty = false, .declaration = true});
  EXPECT_TRUE(out.starts_with("<?xml"));
}

TEST(Writer, PrettyPrintsNestedElements) {
  Element el(QName("a"));
  el.append_element(QName("b")).append_element(QName("c"));
  std::string out = write(el, {.pretty = true});
  EXPECT_NE(out.find("\n  <b>"), std::string::npos);
  EXPECT_NE(out.find("\n    <c/>"), std::string::npos);
}

TEST(Writer, PrettyLeavesMixedContentAlone) {
  Element el(QName("a"));
  el.append_text("x");
  el.append_element(QName("b"));
  std::string out = write(el, {.pretty = true});
  EXPECT_EQ(out, "<a>x<b/></a>");
}

// Round-trip property: parse(write(tree)) == tree for a corpus of shapes.
class RoundTrip : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(
    Corpus, RoundTrip,
    ::testing::Values(
        "<a/>",
        "<a>text</a>",
        "<a v=\"1\" w=\"2\"><b/><c>x</c></a>",
        "<a xmlns=\"urn:x\"><b xmlns=\"urn:y\" xmlns:z=\"urn:z\"><z:c/></b></a>",
        "<a>&lt;escaped&gt; &amp; entities</a>",
        "<soap:Envelope xmlns:soap=\"http://www.w3.org/2003/05/soap-envelope\">"
        "<soap:Header/><soap:Body><x xmlns=\"urn:app\">payload</x></soap:Body>"
        "</soap:Envelope>",
        "<a><b>1</b><b>2</b><b>3</b></a>",
        "<deep><l1><l2><l3><l4>x</l4></l3></l2></l1></deep>"));

TEST_P(RoundTrip, ParseWriteParsePreservesTree) {
  auto first = parse_element(GetParam());
  auto second = parse_element(write(*first));
  EXPECT_TRUE(Element::deep_equal(*first, *second));
  // And pretty output round-trips structurally for element-only content.
  auto third = parse_element(write(*first, {.pretty = false}));
  EXPECT_TRUE(Element::deep_equal(*first, *third));
}

// --- canonicalizer -----------------------------------------------------------

TEST(Canonical, SortsAttributes) {
  auto a = parse_element("<r b=\"2\" a=\"1\"/>");
  auto b = parse_element("<r a=\"1\" b=\"2\"/>");
  EXPECT_EQ(canonicalize(*a), canonicalize(*b));
}

TEST(Canonical, PrefixChoiceDoesNotMatter) {
  auto a = parse_element("<p:r xmlns:p=\"urn:x\"><p:c/></p:r>");
  auto b = parse_element("<q:r xmlns:q=\"urn:x\"><q:c/></q:r>");
  auto c = parse_element("<r xmlns=\"urn:x\"><c/></r>");
  EXPECT_EQ(canonicalize(*a), canonicalize(*b));
  EXPECT_EQ(canonicalize(*a), canonicalize(*c));
}

TEST(Canonical, StripsComments) {
  auto a = parse_element("<r><!-- note --><c/></r>");
  auto b = parse_element("<r><c/></r>");
  EXPECT_EQ(canonicalize(*a), canonicalize(*b));
}

TEST(Canonical, FoldsCdata) {
  auto a = parse_element("<r><![CDATA[x<y]]></r>");
  auto b = parse_element("<r>x&lt;y</r>");
  EXPECT_EQ(canonicalize(*a), canonicalize(*b));
}

TEST(Canonical, DistinguishesContentChanges) {
  auto a = parse_element("<r><c>1</c></r>");
  auto b = parse_element("<r><c>2</c></r>");
  EXPECT_NE(canonicalize(*a), canonicalize(*b));
}

TEST(Canonical, DistinguishesNamespaces) {
  auto a = parse_element("<r xmlns=\"urn:x\"/>");
  auto b = parse_element("<r xmlns=\"urn:y\"/>");
  EXPECT_NE(canonicalize(*a), canonicalize(*b));
}

TEST(Canonical, IsDeterministicAcrossRoundTrip) {
  const char* doc = "<r b=\"2\" a=\"1\" xmlns=\"urn:x\"><c>v</c></r>";
  auto first = parse_element(doc);
  auto second = parse_element(write(*first));
  EXPECT_EQ(canonicalize(*first), canonicalize(*second));
}

// --- schema ------------------------------------------------------------------

Schema counter_schema() {
  ElementDecl root(QName("urn:c", "Counter"));
  root.child(ElementDecl(QName("urn:c", "cv"), ContentType::kInteger));
  return Schema(std::move(root));
}

TEST(Schema, AcceptsValidDocument) {
  auto doc = parse_element("<Counter xmlns=\"urn:c\"><cv>42</cv></Counter>");
  EXPECT_TRUE(counter_schema().validate(*doc).valid());
}

TEST(Schema, RejectsWrongRoot) {
  auto doc = parse_element("<Other xmlns=\"urn:c\"/>");
  auto result = counter_schema().validate(*doc);
  ASSERT_FALSE(result.valid());
  EXPECT_NE(result.summary().find("expected element"), std::string::npos);
}

TEST(Schema, RejectsMissingChild) {
  auto doc = parse_element("<Counter xmlns=\"urn:c\"/>");
  EXPECT_FALSE(counter_schema().validate(*doc).valid());
}

TEST(Schema, RejectsNonIntegerContent) {
  auto doc = parse_element("<Counter xmlns=\"urn:c\"><cv>oops</cv></Counter>");
  EXPECT_FALSE(counter_schema().validate(*doc).valid());
}

TEST(Schema, RejectsExtraChildrenWhenClosed) {
  auto doc = parse_element(
      "<Counter xmlns=\"urn:c\"><cv>1</cv><extra/></Counter>");
  EXPECT_FALSE(counter_schema().validate(*doc).valid());
}

TEST(Schema, OpenContentAllowsExtras) {
  ElementDecl root(QName("urn:c", "Counter"));
  root.child(ElementDecl(QName("urn:c", "cv"), ContentType::kInteger));
  root.open_content();
  Schema schema(std::move(root));
  auto doc = parse_element(
      "<Counter xmlns=\"urn:c\"><cv>1</cv><extra/></Counter>");
  EXPECT_TRUE(schema.validate(*doc).valid());
}

TEST(Schema, OccurrenceBounds) {
  ElementDecl root(QName("list"));
  root.child(ElementDecl(QName("item"), ContentType::kString), 1, 2);
  Schema schema(std::move(root));
  EXPECT_FALSE(schema.validate(*parse_element("<list/>")).valid());
  EXPECT_TRUE(
      schema.validate(*parse_element("<list><item>a</item></list>")).valid());
  EXPECT_FALSE(schema
                   .validate(*parse_element(
                       "<list><item/><item/><item/></list>"))
                   .valid());
}

TEST(Schema, RequiredAttribute) {
  ElementDecl root(QName("r"));
  root.require_attr(QName("id"));
  Schema schema(std::move(root));
  EXPECT_FALSE(schema.validate(*parse_element("<r/>")).valid());
  EXPECT_TRUE(schema.validate(*parse_element("<r id=\"1\"/>")).valid());
}

TEST(Schema, BooleanAndDoubleContent) {
  {
    ElementDecl root(QName("b"), ContentType::kBoolean);
    Schema schema(std::move(root));
    EXPECT_TRUE(schema.validate(*parse_element("<b>true</b>")).valid());
    EXPECT_FALSE(schema.validate(*parse_element("<b>yes</b>")).valid());
  }
  {
    ElementDecl root(QName("d"), ContentType::kDouble);
    Schema schema(std::move(root));
    EXPECT_TRUE(schema.validate(*parse_element("<d>3.25</d>")).valid());
    EXPECT_FALSE(schema.validate(*parse_element("<d>NaNish</d>")).valid());
  }
}

TEST(Schema, CollectsAllViolations) {
  ElementDecl root(QName("r"));
  root.require_attr(QName("id"));
  root.child(ElementDecl(QName("a"), ContentType::kInteger));
  root.child(ElementDecl(QName("b"), ContentType::kInteger));
  Schema schema(std::move(root));
  auto result = schema.validate(*parse_element("<r><a>x</a></r>"));
  // Missing id, bad integer in a, missing b = 3 violations.
  EXPECT_EQ(result.violations.size(), 3u);
}

// --- arena pull parser: equivalence with the DOM parser ----------------------
//
// The wire fast path rests on one invariant: ArenaDocument accepts exactly
// what parser.cpp accepts, rejects exactly what it rejects (same message,
// same position), and to_dom()/canonicalize_view() reproduce the DOM path's
// trees and octets byte for byte. These suites hold both parsers to that
// contract over the round-trip corpus plus wire-shaped fixtures.

class ArenaEquivalence : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(
    Corpus, ArenaEquivalence,
    ::testing::Values(
        "<a/>",
        "<a>text</a>",
        "<a v=\"1\" w=\"2\"><b/><c>x</c></a>",
        "<a xmlns=\"urn:x\"><b xmlns=\"urn:y\" xmlns:z=\"urn:z\"><z:c/></b></a>",
        "<a>&lt;escaped&gt; &amp; entities</a>",
        "<soap:Envelope xmlns:soap=\"http://www.w3.org/2003/05/soap-envelope\">"
        "<soap:Header/><soap:Body><x xmlns=\"urn:app\">payload</x></soap:Body>"
        "</soap:Envelope>",
        "<a><b>1</b><b>2</b><b>3</b></a>",
        "<deep><l1><l2><l3><l4>x</l4></l3></l2></l1></deep>",
        // Wire-shaped extras: CDATA, comments, char refs, mixed content,
        // attribute namespaces, whitespace runs.
        "<a><![CDATA[raw <markup> & bytes]]></a>",
        "<a><!-- note -->x<b/><!-- tail --></a>",
        "<a>&#65;&#x42;&apos;&quot;</a>",
        "<a>pre<b>mid</b>post</a>",
        "<p:a xmlns:p=\"urn:x\" xmlns:q=\"urn:y\" q:attr=\"v\"><q:b p:w=\"2\"/></p:a>",
        "<a>  spaced\n\tout  </a>",
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<a><b/></a>",
        // parser.cpp accepts duplicate attributes (last value wins); the
        // arena parser must agree rather than reject.
        "<a v=\"1\" v=\"2\"/>"));

TEST_P(ArenaEquivalence, ToDomMatchesDomParser) {
  auto dom = parse_element(GetParam());
  ArenaDocument arena = ArenaDocument::parse(GetParam());
  auto materialized = arena.to_dom();
  EXPECT_TRUE(Element::deep_equal(*dom, *materialized))
      << "arena to_dom diverges from parser.cpp for: " << GetParam();
}

TEST_P(ArenaEquivalence, SerializesIdentically) {
  // The templates splice stored octets on the assumption that a document
  // materialized from the arena writes the same bytes the DOM path writes —
  // prefix hints included.
  auto dom = parse_element(GetParam());
  ArenaDocument arena = ArenaDocument::parse(GetParam());
  EXPECT_EQ(write(*arena.to_dom()), write(*dom));
}

TEST_P(ArenaEquivalence, CanonicalizeViewMatchesDomCanonicalization) {
  auto dom = parse_element(GetParam());
  ArenaDocument arena = ArenaDocument::parse(GetParam());
  EXPECT_EQ(canonicalize_view(arena.root()), canonicalize(*dom));
}

TEST_P(ArenaEquivalence, RoundTripsThroughWrite) {
  ArenaDocument arena = ArenaDocument::parse(GetParam());
  auto back = parse_element(write(*arena.to_dom()));
  EXPECT_TRUE(Element::deep_equal(*arena.to_dom(), *back));
}

TEST(ArenaEquivalence, AccessorsMirrorElement) {
  const char* doc =
      "<p:a xmlns:p=\"urn:x\" xmlns:q=\"urn:y\" id=\"7\"><q:b p:w=\"2\">text"
      "</q:b><c/></p:a>";
  ArenaDocument arena = ArenaDocument::parse(doc);
  const ArenaNode& root = arena.root();
  EXPECT_EQ(root.clark(), "{urn:x}a");
  EXPECT_EQ(root.attr_local("id").value_or(""), "7");
  const ArenaNode* b = root.child("urn:y", "b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->attr("urn:x", "w").value_or(""), "2");
  EXPECT_EQ(b->text(), "text");
  EXPECT_EQ(root.child_local("c")->clark(), "c");
  EXPECT_EQ(root.first_element(), b);
  EXPECT_EQ(root.child("urn:z", "nope"), nullptr);
}

TEST(ArenaEquivalence, CountsNodesAndArenaBytes) {
  ArenaDocument arena = ArenaDocument::parse("<a><b>1</b><b>2</b></a>");
  // a, b, text, b, text.
  EXPECT_EQ(arena.node_count(), 5u);
  EXPECT_GT(arena.arena_bytes(), 0u);
}

// Rejection parity: both parsers must throw ParseError with the identical
// message and position for every malformed input — the container reports
// parse faults to clients, so the fast path may not change the error surface.
class ArenaRejectParity : public ::testing::TestWithParam<BadXmlCase> {};

INSTANTIATE_TEST_SUITE_P(
    Malformed, ArenaRejectParity,
    ::testing::Values(
        BadXmlCase{"MismatchedTags", "<a></b>"},
        BadXmlCase{"UnclosedTag", "<a><b></a>"},
        BadXmlCase{"TrailingContent", "<a/><b/>"},
        BadXmlCase{"UnboundPrefix", "<p:a/>"},
        BadXmlCase{"UnboundAttrPrefix", "<a p:v='1'/>"},
        BadXmlCase{"BareAmpersand", "<a>&unknown;</a>"},
        BadXmlCase{"LtInAttribute", "<a v=\"<\"/>"},
        BadXmlCase{"Doctype", "<!DOCTYPE a><a/>"},
        BadXmlCase{"EmptyInput", ""},
        BadXmlCase{"UnterminatedCdata", "<a><![CDATA[x</a>"},
        BadXmlCase{"UnquotedAttr", "<a v=1/>"},
        BadXmlCase{"HugeCharRef", "<a>&#x110000;</a>"},
        BadXmlCase{"TruncatedOpenTag", "<a><b"},
        BadXmlCase{"TruncatedAttrValue", "<a v=\"unfinished"},
        BadXmlCase{"TruncatedCloseTag", "<a></a"},
        BadXmlCase{"BadEntityNoSemicolon", "<a>&amp</a>"},
        BadXmlCase{"UnterminatedComment", "<a><!-- forever</a>"}),
    [](const auto& info) { return info.param.name; });

TEST_P(ArenaRejectParity, IdenticalErrorFromBothParsers) {
  std::optional<ParseError> dom_err;
  try {
    parse_element(GetParam().input);
  } catch (const ParseError& e) {
    dom_err = e;
  }
  ASSERT_TRUE(dom_err.has_value())
      << "DOM parser accepted malformed input: " << GetParam().input;

  try {
    ArenaDocument::parse(GetParam().input);
    FAIL() << "arena parser accepted what parser.cpp rejects: "
           << GetParam().input;
  } catch (const ParseError& e) {
    EXPECT_STREQ(e.what(), dom_err->what());
    EXPECT_EQ(e.line(), dom_err->line());
    EXPECT_EQ(e.column(), dom_err->column());
  }
}

TEST(ArenaRejectParity, DepthLimitMatchesDomParser) {
  // Both parsers cap nesting at the same depth with the same error.
  std::string deep;
  for (int i = 0; i < 300; ++i) deep += "<d>";
  deep += "x";
  for (int i = 0; i < 300; ++i) deep += "</d>";

  std::optional<ParseError> dom_err;
  try {
    parse_element(deep);
  } catch (const ParseError& e) {
    dom_err = e;
  }
  ASSERT_TRUE(dom_err.has_value()) << "DOM parser accepted 300-deep nesting";
  try {
    ArenaDocument::parse(deep);
    FAIL() << "arena parser accepted 300-deep nesting";
  } catch (const ParseError& e) {
    EXPECT_STREQ(e.what(), dom_err->what());
    EXPECT_EQ(e.line(), dom_err->line());
    EXPECT_EQ(e.column(), dom_err->column());
  }
}

}  // namespace
}  // namespace gs::xml
