// Tests for the delivery-reliability layer: deterministic fault injection on
// the virtual network, the retrying caller, the per-destination delivery
// queue, and the wsn/wse notification paths wired through all three.
#include <gtest/gtest.h>

#include "common/threadpool.hpp"
#include "container/container.hpp"
#include "net/delivery_queue.hpp"
#include "net/retry.hpp"
#include "net/virtual_network.hpp"
#include "telemetry/metrics.hpp"
#include "wse/service.hpp"
#include "wsn/client.hpp"
#include "wsn/consumer.hpp"
#include "wsn/producer.hpp"

namespace gs::net {
namespace {

soap::Envelope make_message(const std::string& text) {
  soap::Envelope env;
  env.add_payload(xml::QName("urn:t", "Msg")).set_text(text);
  return env;
}

// Fails the first `fail_first` calls with NetworkError, then succeeds.
class ScriptedCaller final : public SoapCaller {
 public:
  int calls = 0;
  int fail_first = 0;
  std::vector<std::string> texts;  // payload text of each delivered message

  soap::Envelope call(const std::string& address,
                      const soap::Envelope& request) override {
    (void)address;
    ++calls;
    if (calls <= fail_first) throw NetworkError("scripted transport failure");
    texts.push_back(request.payload() ? request.payload()->text() : "");
    soap::Envelope response;
    response.add_payload(xml::QName("urn:t", "Ok"));
    return response;
  }
};

class AlwaysFaultingCaller final : public SoapCaller {
 public:
  int calls = 0;
  soap::Envelope call(const std::string&, const soap::Envelope&) override {
    ++calls;
    return soap::Envelope::make_fault(
        {.code = "Sender", .reason = "scripted application fault"});
  }
};

class EchoEndpoint final : public Endpoint {
 public:
  HttpResponse handle(const HttpRequest& request) override {
    ++hits;
    soap::Envelope env = soap::Envelope::from_xml(request.body);
    soap::Envelope response;
    response.add_payload(xml::QName("urn:t", "Echo"))
        .set_text(env.payload() ? env.payload()->text() : "");
    return HttpResponse::ok(response.to_xml());
  }
  int hits = 0;
};

std::uint64_t counter_value(const char* name) {
  return telemetry::MetricsRegistry::global().counter(name).value();
}

// --- RetryPolicy ----------------------------------------------------------------

TEST(RetryPolicy, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy{.base_delay_ms = 10,
                     .multiplier = 2.0,
                     .max_delay_ms = 35,
                     .jitter = 0.0};
  std::mt19937_64 rng(1);
  EXPECT_EQ(policy.delay_after(1, rng), 10);
  EXPECT_EQ(policy.delay_after(2, rng), 20);
  EXPECT_EQ(policy.delay_after(3, rng), 35);  // 40 capped to 35
  EXPECT_EQ(policy.delay_after(9, rng), 35);
}

TEST(RetryPolicy, JitterIsSeededAndBounded) {
  RetryPolicy policy{.base_delay_ms = 100, .multiplier = 1.0, .jitter = 0.2};
  std::mt19937_64 a(7), b(7), c(8);
  std::vector<common::TimeMs> from_a, from_b, from_c;
  for (int i = 1; i <= 16; ++i) {
    from_a.push_back(policy.delay_after(i, a));
    from_b.push_back(policy.delay_after(i, b));
    from_c.push_back(policy.delay_after(i, c));
    EXPECT_GE(from_a.back(), 80);
    EXPECT_LE(from_a.back(), 120);
  }
  EXPECT_EQ(from_a, from_b);  // same seed, same schedule
  EXPECT_NE(from_a, from_c);
}

// --- RetryingCaller --------------------------------------------------------------

TEST(RetryingCaller, RecoversAfterTransportFailures) {
  ScriptedCaller inner;
  inner.fail_first = 2;
  common::ManualClock clock(0);
  std::vector<common::TimeMs> slept;
  std::uint64_t recovered_before = counter_value("net.retry.recovered");
  RetryingCaller caller(
      inner,
      {.max_attempts = 5, .base_delay_ms = 10, .multiplier = 2.0, .jitter = 0.0},
      &clock, [&](common::TimeMs ms) { slept.push_back(ms); });
  soap::Envelope response = caller.call("http://x/", make_message("m"));
  EXPECT_FALSE(response.is_fault());
  EXPECT_EQ(inner.calls, 3);
  EXPECT_EQ(slept, (std::vector<common::TimeMs>{10, 20}));
  EXPECT_EQ(counter_value("net.retry.recovered"), recovered_before + 1);
}

TEST(RetryingCaller, GivesUpAfterMaxAttempts) {
  ScriptedCaller inner;
  inner.fail_first = 1000;
  common::ManualClock clock(0);
  std::uint64_t exhausted_before = counter_value("net.retry.exhausted");
  RetryingCaller caller(inner, {.max_attempts = 4, .jitter = 0.0}, &clock,
                        [](common::TimeMs) {});
  EXPECT_THROW(caller.call("http://x/", make_message("m")), NetworkError);
  EXPECT_EQ(inner.calls, 4);
  EXPECT_EQ(counter_value("net.retry.exhausted"), exhausted_before + 1);
}

TEST(RetryingCaller, DoesNotRetrySoapFaults) {
  // Application faults come back as envelopes: retrying them would re-run
  // a request the service already rejected.
  AlwaysFaultingCaller inner;
  common::ManualClock clock(0);
  RetryingCaller caller(inner, {.max_attempts = 5}, &clock,
                        [](common::TimeMs) {});
  soap::Envelope response = caller.call("http://x/", make_message("m"));
  EXPECT_TRUE(response.is_fault());
  EXPECT_EQ(inner.calls, 1);
}

TEST(RetryingCaller, TimeBudgetStopsRetrying) {
  ScriptedCaller inner;
  inner.fail_first = 1000;
  common::ManualClock clock(0);
  // Sleeper advances the clock, so the budget check sees simulated time.
  RetryingCaller caller(inner,
                        {.max_attempts = 100,
                         .base_delay_ms = 40,
                         .multiplier = 1.0,
                         .jitter = 0.0,
                         .call_timeout_ms = 100},
                        &clock, [&](common::TimeMs ms) { clock.advance(ms); });
  EXPECT_THROW(caller.call("http://x/", make_message("m")), NetworkError);
  // Attempts at t=0, 40, 80; the next delay would cross the 100 ms budget.
  EXPECT_EQ(inner.calls, 3);
}

TEST(RetryingCaller, NonePolicyIsFireAndForget) {
  ScriptedCaller inner;
  inner.fail_first = 1;
  common::ManualClock clock(0);
  RetryingCaller caller(inner, RetryPolicy::none(), &clock,
                        [](common::TimeMs) {});
  EXPECT_THROW(caller.call("http://x/", make_message("m")), NetworkError);
  EXPECT_EQ(inner.calls, 1);
}

// --- fault injection on the virtual network --------------------------------------

TEST(VirtualNetworkFaults, PartitionFailsEveryExchange) {
  VirtualNetwork net;
  EchoEndpoint echo;
  net.bind("x", echo);
  net.set_fault_policy("x", {.partitioned = true});
  VirtualCaller caller(net, {});
  EXPECT_THROW(caller.call("http://x/e", make_message("m")), NetworkError);
  EXPECT_THROW(caller.call("http://x/e", make_message("m")), NetworkError);
  EXPECT_EQ(echo.hits, 0);  // faults fire before the endpoint is reached
  net.clear_fault_policy("x");
  EXPECT_NO_THROW(caller.call("http://x/e", make_message("m")));
  EXPECT_EQ(echo.hits, 1);
}

TEST(VirtualNetworkFaults, SeededDropPatternIsReproducible) {
  auto run = [] {
    VirtualNetwork net;
    EchoEndpoint echo;
    net.bind("x", echo);
    net.set_fault_policy("x", {.drop_probability = 0.5, .seed = 99});
    VirtualCaller caller(net, {});
    std::string pattern;
    for (int i = 0; i < 32; ++i) {
      try {
        caller.call("http://x/e", make_message("m"));
        pattern += 'o';
      } catch (const NetworkError&) {
        pattern += 'x';
      }
    }
    return pattern;
  };
  std::string first = run();
  EXPECT_EQ(first, run());  // same seed, same drop schedule
  EXPECT_NE(first.find('x'), std::string::npos);
  EXPECT_NE(first.find('o'), std::string::npos);
}

TEST(VirtualNetworkFaults, ReinstallingPolicyReseedsTheRoute) {
  VirtualNetwork net;
  EchoEndpoint echo;
  net.bind("x", echo);
  VirtualCaller caller(net, {});
  auto pattern_of = [&](std::uint64_t seed) {
    net.set_fault_policy("x", {.drop_probability = 0.5, .seed = seed});
    std::string pattern;
    for (int i = 0; i < 32; ++i) {
      try {
        caller.call("http://x/e", make_message("m"));
        pattern += 'o';
      } catch (const NetworkError&) {
        pattern += 'x';
      }
    }
    return pattern;
  };
  std::string a = pattern_of(5);
  std::string b = pattern_of(5);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, pattern_of(6));
}

TEST(VirtualNetworkFaults, AddedLatencyChargesTheMeter) {
  VirtualNetwork net;
  EchoEndpoint echo;
  net.bind("x", echo);
  net.set_fault_policy("x", {.added_latency_ms = 7.5});
  WireMeter meter;
  VirtualCaller caller(net, {.meter = &meter});
  double base;
  {
    WireMeter unfaulted;
    VirtualCaller plain(net, {.meter = &unfaulted});
    net.clear_fault_policy("x");
    plain.call("http://x/e", make_message("m"));
    net.set_fault_policy("x", {.added_latency_ms = 7.5});
    base = unfaulted.simulated_ms();
  }
  caller.call("http://x/e", make_message("m"));
  EXPECT_NEAR(meter.simulated_ms(), base + 7.5, 1e-6);
}

TEST(VirtualNetworkFaults, InjectedDropCountsTelemetry) {
  VirtualNetwork net;
  EchoEndpoint echo;
  net.bind("x", echo);
  net.set_fault_policy("x", {.partitioned = true});
  VirtualCaller caller(net, {});
  std::uint64_t before = counter_value("net.faults.injected");
  EXPECT_THROW(caller.call("http://x/e", make_message("m")), NetworkError);
  EXPECT_EQ(counter_value("net.faults.injected"), before + 1);
}

// --- DeliveryQueue ---------------------------------------------------------------

TEST(DeliveryQueue, InlineModeDeliversOnTheSubmittingThread) {
  ScriptedCaller sink;
  DeliveryQueue queue({.caller = &sink});
  EXPECT_EQ(queue.submit("http://c/s", make_message("a")),
            DeliveryQueue::Submit::kDelivered);
  EXPECT_EQ(queue.submit("http://c/s", make_message("b")),
            DeliveryQueue::Submit::kDelivered);
  EXPECT_EQ(sink.texts, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(queue.dead_lettered(), 0u);
}

TEST(DeliveryQueue, InlineModeEvictsAfterConsecutiveFailures) {
  ScriptedCaller sink;
  sink.fail_first = 3;
  DeliveryQueue queue(
      {.caller = &sink, .evict_after_consecutive_failures = 3});
  std::string dest = "http://dark/s";
  std::string evicted_dest;
  // (on_evict is only settable at construction; exercise the accessor path.)
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(queue.submit(dest, make_message("m")),
              DeliveryQueue::Submit::kRejected);
  }
  EXPECT_TRUE(queue.evicted(dest));
  // Evicted destinations are shed without touching the transport.
  EXPECT_EQ(queue.submit(dest, make_message("m")),
            DeliveryQueue::Submit::kRejected);
  EXPECT_EQ(sink.calls, 3);
  EXPECT_EQ(queue.dead_lettered(), 4u);  // 3 failed + 1 rejected
  // Reinstating (the re-subscribe path) resumes delivery.
  queue.reinstate(dest);
  EXPECT_EQ(queue.submit(dest, make_message("back")),
            DeliveryQueue::Submit::kDelivered);
  EXPECT_EQ(sink.texts, (std::vector<std::string>{"back"}));
  (void)evicted_dest;
}

TEST(DeliveryQueue, SuccessResetsTheFailureStreak) {
  ScriptedCaller sink;
  sink.fail_first = 2;
  DeliveryQueue queue(
      {.caller = &sink, .evict_after_consecutive_failures = 3});
  std::string dest = "http://flaky/s";
  queue.submit(dest, make_message("1"));  // fail (streak 1)
  queue.submit(dest, make_message("2"));  // fail (streak 2)
  queue.submit(dest, make_message("3"));  // success -> streak resets
  queue.submit(dest, make_message("4"));  // success
  EXPECT_FALSE(queue.evicted(dest));
}

TEST(DeliveryQueue, PooledModeDrainsInOrderPerDestination) {
  common::ThreadPool pool(3);
  ScriptedCaller sink;
  DeliveryQueue queue({.caller = &sink, .pool = &pool});
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(queue.submit("http://c/s", make_message(std::to_string(i))),
              DeliveryQueue::Submit::kQueued);
  }
  queue.flush();
  EXPECT_EQ(sink.texts, (std::vector<std::string>{"0", "1", "2", "3", "4", "5",
                                                  "6", "7"}));
}

TEST(DeliveryQueue, PooledModeBoundsTheBacklog) {
  common::ThreadPool pool(1);
  // Blocks the first delivery until released, so submits pile up.
  class BlockingCaller final : public SoapCaller {
   public:
    soap::Envelope call(const std::string&, const soap::Envelope&) override {
      std::unique_lock lock(mu);
      ++in_flight;
      cv.notify_all();
      cv.wait(lock, [this] { return released; });
      soap::Envelope response;
      response.add_payload(xml::QName("urn:t", "Ok"));
      return response;
    }
    void wait_in_flight() {
      std::unique_lock lock(mu);
      cv.wait(lock, [this] { return in_flight > 0; });
    }
    void release() {
      std::lock_guard lock(mu);
      released = true;
      cv.notify_all();
    }
    std::mutex mu;
    std::condition_variable cv;
    int in_flight = 0;
    bool released = false;
  } sink;

  DeliveryQueue queue(
      {.caller = &sink, .pool = &pool, .max_queued_per_destination = 2});
  EXPECT_EQ(queue.submit("http://c/s", make_message("0")),
            DeliveryQueue::Submit::kQueued);
  sink.wait_in_flight();  // "0" popped off the backlog, delivery blocked
  EXPECT_EQ(queue.submit("http://c/s", make_message("1")),
            DeliveryQueue::Submit::kQueued);
  EXPECT_EQ(queue.submit("http://c/s", make_message("2")),
            DeliveryQueue::Submit::kQueued);
  EXPECT_EQ(queue.submit("http://c/s", make_message("3")),
            DeliveryQueue::Submit::kRejected);  // backlog full
  EXPECT_EQ(queue.dead_lettered(), 1u);
  sink.release();
  queue.flush();
}

TEST(DeliveryQueue, RequiresACaller) {
  EXPECT_THROW(DeliveryQueue queue({}), std::invalid_argument);
}

// --- ThreadPool hardening --------------------------------------------------------

TEST(ThreadPool, TaskExceptionsAreCountedNotFatal) {
  common::ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task bug"); });
  pool.submit([] {});
  pool.drain();
  EXPECT_EQ(pool.tasks_failed(), 1u);
  EXPECT_EQ(pool.tasks_submitted(), 2u);
}

}  // namespace
}  // namespace gs::net

// --- end-to-end: wsn under injected faults ---------------------------------------

namespace gs::wsn {
namespace {

xml::QName app(const char* local) { return {"urn:app", local}; }

struct ReliabilityFixture {
  common::ManualClock clock{1000};
  net::VirtualNetwork net;
  xmldb::XmlDatabase db{std::make_unique<xmldb::MemoryBackend>(), {}};
  container::Container container{{.clock = &clock}};
  wsrf::ResourceHome sub_home{db, "subs", &container.lifetime()};
  std::unique_ptr<SubscriptionManagerService> manager;
  std::unique_ptr<container::Service> source_service;
  std::unique_ptr<net::VirtualCaller> caller;     // client -> producer
  std::unique_ptr<net::VirtualCaller> raw_sink;   // producer -> consumers
  std::unique_ptr<net::SoapCaller> sink;          // possibly retry-wrapped
  std::unique_ptr<NotificationProducer> producer;
  NotificationConsumer consumer;       // the live subscriber at http://c
  NotificationConsumer dark_consumer;  // the partitioned one at http://dark

  explicit ReliabilityFixture(net::RetryPolicy retry, int evict_after = 0) {
    manager = std::make_unique<SubscriptionManagerService>(
        sub_home, "http://p/Subscriptions");
    source_service = std::make_unique<container::Service>("Source");
    caller =
        std::make_unique<net::VirtualCaller>(net, net::VirtualCaller::Options{});
    raw_sink = std::make_unique<net::VirtualCaller>(
        net, net::VirtualCaller::Options{.keep_alive = false});
    // Retries advance nothing and sleep nowhere: the schedule is simulated,
    // so the test is deterministic and instant.
    sink = std::make_unique<net::RetryingCaller>(*raw_sink, retry, &clock,
                                                 [](common::TimeMs) {});
    TopicNamespace topics;
    topics.add("job/done");
    producer = std::make_unique<NotificationProducer>(
        NotificationProducer::Config{.sink_caller = sink.get(),
                                     .producer_address = "http://p/Source",
                                     .manager = manager.get(),
                                     .clock = &clock,
                                     .evict_after_failures = evict_after},
        std::move(topics));
    producer->register_into(*source_service);
    container.deploy("/Source", *source_service);
    container.deploy("/Subscriptions", *manager);
    net.bind("p", container);
    net.bind("c", consumer);
    net.bind("dark", dark_consumer);
  }

  void subscribe(const char* address) {
    Filter f;
    f.set_topic(TopicExpression::parse(TopicExpression::Dialect::kConcrete,
                                       "job/done"));
    NotificationProducerProxy proxy(*caller,
                                    soap::EndpointReference("http://p/Source"));
    proxy.subscribe(soap::EndpointReference(address), f);
  }

  std::unique_ptr<xml::Element> event() {
    auto e = std::make_unique<xml::Element>(app("Event"));
    e->append_element(app("code")).set_text("1");
    return e;
  }
};

std::uint64_t counter_value(const char* name) {
  return telemetry::MetricsRegistry::global().counter(name).value();
}

// The acceptance scenario: a route dropping 30% of exchanges, a retrying
// sink caller — every notification still lands, deterministically.
TEST(Reliability, RetriesDeliverThroughThirtyPercentDrop) {
  ReliabilityFixture fx(
      {.max_attempts = 8, .base_delay_ms = 1, .jitter = 0.0, .seed = 11});
  fx.subscribe("http://c/sink");
  fx.net.set_fault_policy("c", {.drop_probability = 0.3, .seed = 1234});

  std::uint64_t recovered_before = counter_value("net.retry.recovered");
  auto ev = fx.event();
  size_t delivered = 0;
  for (int i = 0; i < 20; ++i) delivered += fx.producer->notify("job/done", *ev);
  EXPECT_EQ(delivered, 20u);
  EXPECT_TRUE(fx.consumer.wait_for(20, 1000));
  // With p=0.3 over 20 sequences the seeded schedule must include drops
  // that the retries recovered.
  EXPECT_GT(counter_value("net.retry.recovered"), recovered_before);
}

TEST(Reliability, DropRecoveryIsDeterministicAcrossRuns) {
  auto attempts_used = [] {
    std::uint64_t before = counter_value("net.retry.attempts");
    ReliabilityFixture fx(
        {.max_attempts = 8, .base_delay_ms = 1, .jitter = 0.0, .seed = 11});
    fx.subscribe("http://c/sink");
    fx.net.set_fault_policy("c", {.drop_probability = 0.3, .seed = 1234});
    auto ev = fx.event();
    for (int i = 0; i < 20; ++i) fx.producer->notify("job/done", *ev);
    return counter_value("net.retry.attempts") - before;
  };
  std::uint64_t first = attempts_used();
  EXPECT_EQ(first, attempts_used());
  EXPECT_GT(first, 0u);
}

// The other acceptance scenario: a hard-partitioned subscriber is evicted
// after N consecutive failed call sequences, with the counter incremented,
// and stops costing retries; the live subscriber is unaffected.
TEST(Reliability, HardPartitionEvictsSubscriberAfterConsecutiveFailures) {
  ReliabilityFixture fx({.max_attempts = 2, .base_delay_ms = 1, .jitter = 0.0},
                        /*evict_after=*/3);
  fx.subscribe("http://c/sink");
  fx.subscribe("http://dark/sink");
  fx.net.set_fault_policy("dark", {.partitioned = true});

  std::uint64_t evicted_before = counter_value("wsn.subscribers_evicted");
  std::uint64_t dead_before = counter_value("wsn.dead_letters");
  auto ev = fx.event();
  for (int i = 0; i < 5; ++i) {
    // Only the live subscriber counts as delivered each round.
    EXPECT_EQ(fx.producer->notify("job/done", *ev), 1u);
  }
  EXPECT_TRUE(fx.producer->delivery_queue().evicted("http://dark/sink"));
  EXPECT_EQ(counter_value("wsn.subscribers_evicted"), evicted_before + 1);
  // 3 failed sequences + 2 shed after eviction, all dead-lettered.
  EXPECT_EQ(counter_value("wsn.dead_letters"), dead_before + 5);
  EXPECT_TRUE(fx.consumer.wait_for(5, 1000));

  // Re-subscribing reinstates the destination once the partition heals.
  fx.net.clear_fault_policy("dark");
  fx.subscribe("http://dark/sink");
  EXPECT_FALSE(fx.producer->delivery_queue().evicted("http://dark/sink"));
  // dark now holds two subscriptions (the dead one was never unsubscribed),
  // so one more publish delivers to c once and dark twice.
  EXPECT_EQ(fx.producer->notify("job/done", *ev), 3u);
  EXPECT_TRUE(fx.dark_consumer.wait_for(2, 1000));
}

TEST(Reliability, PooledDeliveryFansOutAndFlushes) {
  common::ThreadPool pool(2);
  common::ManualClock clock{1000};
  net::VirtualNetwork net;
  xmldb::XmlDatabase db{std::make_unique<xmldb::MemoryBackend>(), {}};
  container::Container container{{.clock = &clock}};
  wsrf::ResourceHome sub_home{db, "subs", &container.lifetime()};
  SubscriptionManagerService manager(sub_home, "http://p/Subscriptions");
  container::Service source("Source");
  net::VirtualCaller caller(net, {});
  net::VirtualCaller sink(net, {.keep_alive = false});
  TopicNamespace topics;
  topics.add("job/done");
  NotificationProducer producer(
      NotificationProducer::Config{.sink_caller = &sink,
                                   .producer_address = "http://p/Source",
                                   .manager = &manager,
                                   .clock = &clock,
                                   .delivery_pool = &pool},
      std::move(topics));
  producer.register_into(source);
  container.deploy("/Source", source);
  container.deploy("/Subscriptions", manager);
  NotificationConsumer consumer;
  net.bind("p", container);
  net.bind("c", consumer);

  Filter f;
  f.set_topic(
      TopicExpression::parse(TopicExpression::Dialect::kConcrete, "job/done"));
  NotificationProducerProxy proxy(caller,
                                  soap::EndpointReference("http://p/Source"));
  proxy.subscribe(soap::EndpointReference("http://c/sink"), f);

  auto ev = std::make_unique<xml::Element>(app("Event"));
  size_t accepted = 0;
  for (int i = 0; i < 10; ++i) accepted += producer.notify("job/done", *ev);
  EXPECT_EQ(accepted, 10u);  // pooled mode: accepted, not yet delivered
  producer.flush_delivery();
  EXPECT_TRUE(consumer.wait_for(10, 1000));
}

}  // namespace
}  // namespace gs::wsn

// --- end-to-end: wse under injected faults ---------------------------------------

namespace gs::wse {
namespace {

xml::QName app2(const char* local) { return {"urn:app", local}; }

std::uint64_t counter_value(const char* name) {
  return telemetry::MetricsRegistry::global().counter(name).value();
}

TEST(Reliability, PartitionedSinkIsEvictedFromEventFanOut) {
  common::ManualClock clock{10'000};
  net::VirtualNetwork net;
  SubscriptionStore store;
  wsn::NotificationConsumer live, dark;
  net.bind("c", live);
  net.bind("dark", dark);
  net::VirtualCaller sink(net,
                          {.transport = net::TransportKind::kSoapTcp});
  NotificationManager notifier(store, sink, clock,
                               {.evict_after_failures = 2});

  WseSubscription live_sub;
  live_sub.notify_to = soap::EndpointReference("soap.tcp://c/sink");
  live_sub.expires = WseSubscription::kNever;
  store.add(std::move(live_sub));
  WseSubscription dark_sub;
  dark_sub.notify_to = soap::EndpointReference("soap.tcp://dark/sink");
  dark_sub.expires = WseSubscription::kNever;
  store.add(std::move(dark_sub));

  net.set_fault_policy("dark", {.partitioned = true});
  std::uint64_t evicted_before = counter_value("wse.sinks_evicted");
  std::uint64_t dead_before = counter_value("wse.dead_letters");

  auto ev = std::make_unique<xml::Element>(app2("Event"));
  EXPECT_EQ(notifier.notify("t", *ev, "urn:app/Event"), 1u);
  EXPECT_EQ(notifier.notify("t", *ev, "urn:app/Event"), 1u);
  EXPECT_TRUE(notifier.delivery_queue().evicted("soap.tcp://dark/sink"));
  EXPECT_EQ(counter_value("wse.sinks_evicted"), evicted_before + 1);
  EXPECT_EQ(notifier.notify("t", *ev, "urn:app/Event"), 1u);  // shed cheaply
  EXPECT_EQ(counter_value("wse.dead_letters"), dead_before + 3);
  EXPECT_TRUE(live.wait_for(3, 1000));
}

TEST(Reliability, WseRetriesRecoverDroppedEvents) {
  common::ManualClock clock{10'000};
  net::VirtualNetwork net;
  SubscriptionStore store;
  wsn::NotificationConsumer consumer;
  net.bind("c", consumer);
  net::VirtualCaller raw(net, {.transport = net::TransportKind::kSoapTcp});
  net::RetryingCaller sink(
      raw, {.max_attempts = 8, .base_delay_ms = 1, .jitter = 0.0}, &clock,
      [](common::TimeMs) {});
  NotificationManager notifier(store, sink, clock, {});

  WseSubscription sub;
  sub.notify_to = soap::EndpointReference("soap.tcp://c/sink");
  sub.expires = WseSubscription::kNever;
  store.add(std::move(sub));
  net.set_fault_policy("c", {.drop_probability = 0.3, .seed = 77});

  auto ev = std::make_unique<xml::Element>(app2("Event"));
  size_t delivered = 0;
  for (int i = 0; i < 20; ++i) {
    delivered += notifier.notify("t", *ev, "urn:app/Event");
  }
  EXPECT_EQ(delivered, 20u);
  EXPECT_TRUE(consumer.wait_for(20, 1000));
}

}  // namespace
}  // namespace gs::wse
