// Tests for the zero-copy wire path: BufferChain ownership semantics,
// ResponseTemplate byte identity with the DOM writer, and the end-to-end
// contract that a container answers byte-identically (modulo fresh
// MessageID/trace ids) whether the wire fast path is on or off — for
// counter, gridbox and scheduler document shapes on both stacks.
#include <gtest/gtest.h>

#include <memory>
#include <regex>
#include <string>

#include "common/buffer_chain.hpp"
#include "counter/wsrf_counter.hpp"
#include "counter/wst_counter.hpp"
#include "soap/template.hpp"
#include "telemetry/propagation.hpp"
#include "xml/parser.hpp"

namespace gs {
namespace {

// --- BufferChain -------------------------------------------------------------

TEST(BufferChain, OwnedSharedAndStaticSegments) {
  auto shared = std::make_shared<const std::string>("SHARED");
  common::BufferChain chain;
  chain.append("owned");
  chain.append_shared(shared, std::string_view(*shared).substr(0, 5));
  chain.append_static("lit");
  EXPECT_EQ(chain.segments(), 3u);
  EXPECT_EQ(chain.size(), 13u);
  EXPECT_EQ(chain.join(), "ownedSHARElit");
}

TEST(BufferChain, EmptyAppendsAreDropped) {
  common::BufferChain chain;
  chain.append("");
  chain.append_static("");
  chain.append_shared(nullptr);
  EXPECT_TRUE(chain.empty());
  EXPECT_EQ(chain.segments(), 0u);
}

TEST(BufferChain, JoinIntoAppendsWithoutClobbering) {
  common::BufferChain chain;
  chain.append("abc");
  std::string out = "pre:";
  chain.join_into(out);
  EXPECT_EQ(out, "pre:abc");
}

TEST(BufferChain, ForEachVisitsSegmentsInOrder) {
  common::BufferChain chain;
  chain.append("a");
  chain.append_static("b");
  std::string seen;
  chain.for_each([&](std::string_view s) { seen.append(s); });
  EXPECT_EQ(seen, "ab");
}

TEST(BufferChain, CopyFlattensAndDoesNotBorrow) {
  common::BufferChain source;
  source.append("hello ");
  source.append_static("world");

  common::BufferChain copy(source);
  EXPECT_EQ(copy.join(), "hello world");
  EXPECT_EQ(copy.segments(), 1u);  // flattened into one owned segment

  // The copy must not view the source's storage: destroying the source
  // leaves the copy intact (ASan would flag a dangling view).
  source.clear();
  EXPECT_EQ(copy.join(), "hello world");
}

TEST(BufferChain, CopyAssignReplacesContents) {
  common::BufferChain a;
  a.append("old");
  common::BufferChain b;
  b.append("new");
  a = b;
  EXPECT_EQ(a.join(), "new");
  a = a;  // self-assignment is a no-op
  EXPECT_EQ(a.join(), "new");
}

TEST(BufferChain, MoveTransfersSegments) {
  common::BufferChain a;
  a.append("payload");
  common::BufferChain b(std::move(a));
  EXPECT_EQ(b.join(), "payload");
}

TEST(BufferChain, AppendChainSharesRefcountedCopiesOwned) {
  auto shared = std::make_shared<const std::string>("SKEL");
  common::BufferChain source;
  source.append("owned");
  source.append_shared(shared, *shared);

  long before = shared.use_count();
  common::BufferChain dest;
  dest.append_chain(source);
  // The refcounted segment is shared (use_count goes up), not copied.
  EXPECT_GT(shared.use_count(), before);
  EXPECT_EQ(dest.join(), "ownedSKEL");

  // The owned segment was copied by value: clearing the source must not
  // invalidate the destination.
  source.clear();
  EXPECT_EQ(dest.join(), "ownedSKEL");
}

TEST(BufferChain, SharedSegmentKeepsBackingAlive) {
  common::BufferChain chain;
  {
    auto backing = std::make_shared<const std::string>("kept alive");
    chain.append_shared(backing, *backing);
  }
  EXPECT_EQ(chain.join(), "kept alive");
}

// --- ResponseTemplate: byte identity with the DOM writer ---------------------

xml::QName test_qn(const char* local) { return {"urn:wiretest", local}; }

soap::Envelope dom_reply(const std::string& action, const std::string& mid,
                         const std::string& rel) {
  soap::Envelope env;
  soap::MessageInfo info;
  info.action = action;
  info.message_id = mid;
  info.relates_to = rel;
  env.write_addressing(info);
  return env;
}

const std::string kMid = "urn:uuid:00000000-0000-0000-0000-0000000000aa";
const std::string kRel = "urn:uuid:00000000-0000-0000-0000-0000000000bb";

TEST(ResponseTemplate, TextSlotsMatchDomWriterWithEscaping) {
  soap::ResponseTemplate::Spec spec;
  spec.action = "urn:wiretest/EchoResponse";
  spec.slots = 1;
  spec.trace_qname = telemetry::trace_header_qname();
  spec.build_payload = [](xml::Element& body) {
    xml::Element& echo = body.append_element(test_qn("Echo"));
    echo.append_element(test_qn("Value"))
        .set_text(soap::ResponseTemplate::slot_marker(0));
  };
  auto tpl = soap::ResponseTemplate::compile(std::move(spec));

  soap::PendingResponse pr;
  pr.tpl = tpl;
  pr.message_id = kMid;
  pr.relates_to = kRel;
  pr.values = {"x < y & \"z\""};  // must be escaped exactly like the writer

  soap::Envelope dom = dom_reply("urn:wiretest/EchoResponse", kMid, kRel);
  xml::Element& echo = dom.add_payload(test_qn("Echo"));
  echo.append_element(test_qn("Value")).set_text("x < y & \"z\"");

  EXPECT_EQ(pr.render_string(), dom.to_xml());
}

TEST(ResponseTemplate, ElementFragmentMatchesDomWriter) {
  soap::ResponseTemplate::Spec spec;
  spec.action = "urn:wiretest/GetResponse";
  spec.fragment = true;
  spec.trace_qname = telemetry::trace_header_qname();
  spec.build_payload = [](xml::Element& body) {
    body.append(soap::ResponseTemplate::placeholder());
  };
  auto tpl = soap::ResponseTemplate::compile(std::move(spec));

  // A fragment with its own namespace: the writer must bind prefixes for
  // it exactly as it would mid-tree on the DOM path.
  const char* doc =
      "<Job xmlns=\"urn:sched\"><Nodes>4</Nodes><State>queued</State></Job>";

  soap::PendingResponse pr;
  pr.tpl = tpl;
  pr.message_id = kMid;
  pr.relates_to = kRel;
  pr.fragment.push_back(xml::parse_element(doc));

  soap::Envelope dom = dom_reply("urn:wiretest/GetResponse", kMid, kRel);
  dom.add_payload(xml::parse_element(doc));

  EXPECT_EQ(pr.render_string(), dom.to_xml());
}

TEST(ResponseTemplate, RawOctetFragmentsSpliceVerbatim) {
  soap::ResponseTemplate::Spec spec;
  spec.action = "urn:wiretest/GetResponse";
  spec.fragment = true;
  spec.trace_qname = telemetry::trace_header_qname();
  spec.build_payload = [](xml::Element& body) {
    body.append(soap::ResponseTemplate::placeholder());
  };
  auto tpl = soap::ResponseTemplate::compile(std::move(spec));

  // Octets that round-trip through the writer unchanged (as database
  // octets do) must splice byte-identically to the element path.
  const char* doc = "<Job xmlns=\"urn:sched\"><Nodes>4</Nodes></Job>";
  soap::PendingResponse via_element;
  via_element.tpl = tpl;
  via_element.message_id = kMid;
  via_element.relates_to = kRel;
  via_element.fragment.push_back(xml::parse_element(doc));

  soap::PendingResponse via_shared;
  via_shared.tpl = tpl;
  via_shared.message_id = kMid;
  via_shared.relates_to = kRel;
  via_shared.fragment_shared = std::make_shared<const std::string>(doc);

  soap::PendingResponse via_raw;
  via_raw.tpl = tpl;
  via_raw.message_id = kMid;
  via_raw.relates_to = kRel;
  via_raw.fragment_raw = doc;

  EXPECT_EQ(via_shared.render_string(), via_element.render_string());
  EXPECT_EQ(via_raw.render_string(), via_element.render_string());
}

TEST(ResponseTemplate, TracedVariantMatchesDomWriter) {
  soap::ResponseTemplate::Spec spec;
  spec.action = "urn:wiretest/AckResponse";
  spec.trace_qname = telemetry::trace_header_qname();
  spec.build_payload = [](xml::Element& body) {
    body.append_element(test_qn("Ack"));
  };
  auto tpl = soap::ResponseTemplate::compile(std::move(spec));

  soap::PendingResponse pr;
  pr.tpl = tpl;
  pr.message_id = kMid;
  pr.relates_to = kRel;
  pr.trace_id = "12345";
  pr.span_id = "678";

  // The DOM path: payload first, trace header appended after the service
  // returns — the same order the container uses.
  soap::Envelope dom = dom_reply("urn:wiretest/AckResponse", kMid, kRel);
  dom.add_payload(test_qn("Ack"));
  telemetry::TraceContext trace;
  trace.trace_id = 12345;
  trace.span_id = 678;
  telemetry::write_trace_header(dom, trace);

  EXPECT_EQ(pr.render_string(), dom.to_xml());
}

TEST(ResponseTemplate, CompileRejectsMissingPlaceholder) {
  soap::ResponseTemplate::Spec spec;
  spec.action = "urn:wiretest/BadResponse";
  spec.fragment = true;  // declared but build_payload never places it
  spec.trace_qname = telemetry::trace_header_qname();
  spec.build_payload = [](xml::Element& body) {
    body.append_element(test_qn("NoSlot"));
  };
  EXPECT_THROW(soap::ResponseTemplate::compile(std::move(spec)),
               std::logic_error);
}

// --- container level: fast path vs DOM path, byte for byte -------------------

/// Restores the process-wide fast-path toggle on scope exit.
struct FastPathGuard {
  explicit FastPathGuard(bool on) : prev_(soap::Envelope::wire_fast_path()) {
    soap::Envelope::set_wire_fast_path(on);
  }
  ~FastPathGuard() { soap::Envelope::set_wire_fast_path(prev_); }
  bool prev_;
};

/// Fresh MessageIDs and trace ids differ between any two runs; everything
/// else must be byte-identical.
std::string normalize(std::string xml) {
  static const std::regex uuid("urn:uuid:[0-9a-fA-F-]+");
  xml = std::regex_replace(xml, uuid, "urn:uuid:NORM");
  static const std::regex trace_id("TraceId=\"[0-9]*\"");
  xml = std::regex_replace(xml, trace_id, "TraceId=\"NORM\"");
  static const std::regex span_id("SpanId=\"[0-9]*\"");
  xml = std::regex_replace(xml, span_id, "SpanId=\"NORM\"");
  // WSRF BaseFault details carry a wall-clock timestamp that can tick
  // between the two runs being compared.
  static const std::regex stamp("Timestamp&gt;[0-9]*&lt;");
  return std::regex_replace(xml, stamp, "Timestamp&gt;NORM&lt;");
}

const std::string kRequestId = "urn:uuid:00000000-0000-0000-0000-000000000001";

net::HttpRequest soap_post(const soap::EndpointReference& target,
                           const std::string& action,
                           std::unique_ptr<xml::Element> payload) {
  soap::Envelope request;
  soap::MessageInfo info;
  info.target(target);
  info.action = action;
  info.message_id = kRequestId;
  request.write_addressing(info);
  if (payload) request.add_payload(std::move(payload));

  auto url = net::Url::parse(target.address());
  net::HttpRequest http;
  http.host = url->authority();
  http.path = url->path;
  http.headers["Content-Type"] = "application/soap+xml";
  http.body = request.to_xml();
  return http;
}

std::unique_ptr<xml::Element> property_name_element(const xml::QName& prop) {
  auto el = std::make_unique<xml::Element>(
      xml::QName(soap::ns::kWsrfRp, "GetResourceProperty"));
  if (!prop.ns().empty()) el->set_attr("ns", prop.ns());
  el->set_text(prop.local());
  return el;
}

/// Runs the same request against the container with the fast path on and
/// off and asserts the normalized response octets are identical. Returns
/// the fast-path body for additional assertions.
std::string expect_fast_matches_dom(
    container::Container& container,
    const std::function<net::HttpRequest()>& make_request) {
  std::string fast, dom;
  {
    FastPathGuard guard(true);
    fast = container.handle(make_request()).body_str();
  }
  {
    FastPathGuard guard(false);
    dom = container.handle(make_request()).body_str();
  }
  EXPECT_EQ(normalize(fast), normalize(dom));
  return fast;
}

struct WireFixture {
  net::VirtualNetwork net{net::NetworkProfile::colocated()};
  std::unique_ptr<net::VirtualCaller> caller;
  std::unique_ptr<net::VirtualCaller> sink;
  std::unique_ptr<net::VirtualCaller> tcp_sink;
  std::unique_ptr<counter::WsrfCounterDeployment> wsrf;
  std::unique_ptr<counter::WstCounterDeployment> wst;

  explicit WireFixture(telemetry::MetricsRegistry* metrics = nullptr) {
    caller = std::make_unique<net::VirtualCaller>(net, net::VirtualCaller::Options{});
    sink = std::make_unique<net::VirtualCaller>(
        net, net::VirtualCaller::Options{.keep_alive = false});
    tcp_sink = std::make_unique<net::VirtualCaller>(
        net,
        net::VirtualCaller::Options{.transport = net::TransportKind::kSoapTcp});
    container::ContainerConfig cc;
    cc.metrics = metrics;
    wsrf = std::make_unique<counter::WsrfCounterDeployment>(
        counter::WsrfCounterDeployment::Params{
            .backend = std::make_unique<xmldb::MemoryBackend>(),
            .write_through_cache = true,
            .container = cc,
            .notification_sink = sink.get(),
            .address_base = "http://wsrf.example",
        });
    wst = std::make_unique<counter::WstCounterDeployment>(
        counter::WstCounterDeployment::Params{
            .backend = std::make_unique<xmldb::MemoryBackend>(),
            .container = cc,
            .notification_sink = tcp_sink.get(),
            .address_base = "http://wst.example",
            .subscription_file = {},
        });
    net.bind("wsrf.example", wsrf->container());
    net.bind("wst.example", wst->container());
  }
};

// Document shapes from the three applications the repo models.
const char* kCounterDoc = "<cnt:counter xmlns:cnt=\"http://counter.example\"><cnt:cv>7</cnt:cv></cnt:counter>";
const char* kGridboxDoc =
    "<Reservation xmlns=\"http://gridstacks.dev/gridbox\"><Host>node1</Host>"
    "<User>CN=alice,O=VO</User><Start>1000</Start><End>2000</End></Reservation>";
const char* kSchedDoc =
    "<Job xmlns=\"http://gridstacks.dev/sched\"><Partition>batch</Partition>"
    "<Nodes>4</Nodes><State>queued</State></Job>";

TEST(WireFastPath, WsrfGetResourcePropertyByteIdentical) {
  WireFixture fx;
  counter::WsrfCounterClient client(*fx.caller, fx.wsrf->counter_address());
  soap::EndpointReference epr = client.create();
  client.set(41);

  std::string body =
      expect_fast_matches_dom(fx.wsrf->container(), [&] {
        return soap_post(epr, wsrf::actions::kGetResourceProperty,
                         property_name_element(counter::cv_qname()));
      });
  EXPECT_NE(body.find("41"), std::string::npos);
  EXPECT_NE(body.find("GetResourcePropertyResponse"), std::string::npos);
}

TEST(WireFastPath, WsrfComputedPropertyByteIdentical) {
  WireFixture fx;
  counter::WsrfCounterClient client(*fx.caller, fx.wsrf->counter_address());
  soap::EndpointReference epr = client.create();
  client.set(21);

  std::string body =
      expect_fast_matches_dom(fx.wsrf->container(), [&] {
        return soap_post(epr, wsrf::actions::kGetResourceProperty,
                         property_name_element(counter::double_value_qname()));
      });
  EXPECT_NE(body.find("42"), std::string::npos);
}

TEST(WireFastPath, WsrfGetPropertyDocumentByteIdentical) {
  WireFixture fx;
  counter::WsrfCounterClient client(*fx.caller, fx.wsrf->counter_address());
  soap::EndpointReference epr = client.create();
  client.set(5);

  expect_fast_matches_dom(fx.wsrf->container(), [&] {
    return soap_post(epr, wsrf::actions::kGetResourcePropertyDocument,
                     std::make_unique<xml::Element>(xml::QName(
                         soap::ns::kWsrfRp, "GetResourcePropertyDocument")));
  });
}

TEST(WireFastPath, WsrfSetAckByteIdentical) {
  WireFixture fx;
  counter::WsrfCounterClient client(*fx.caller, fx.wsrf->counter_address());
  soap::EndpointReference epr = client.create();

  expect_fast_matches_dom(fx.wsrf->container(), [&] {
    auto request = std::make_unique<xml::Element>(
        xml::QName(soap::ns::kWsrfRp, "SetResourceProperties"));
    xml::Element& update = request->append_element(
        xml::QName(soap::ns::kWsrfRp, "Update"));
    update.append_element(counter::cv_qname()).set_text("9");
    return soap_post(epr, wsrf::actions::kSetResourceProperties,
                     std::move(request));
  });
}

TEST(WireFastPath, WsrfFaultParity) {
  WireFixture fx;
  counter::WsrfCounterClient client(*fx.caller, fx.wsrf->counter_address());
  soap::EndpointReference epr = client.create();

  // Requesting an undeclared property faults; the fault must serialize
  // identically whichever parser/serializer handled the request.
  std::string body = expect_fast_matches_dom(fx.wsrf->container(), [&] {
    return soap_post(epr, wsrf::actions::kGetResourceProperty,
                     property_name_element({"urn:none", "Missing"}));
  });
  EXPECT_NE(body.find("Fault"), std::string::npos);
}

TEST(WireFastPath, WsrfDocumentShapesByteIdentical) {
  WireFixture fx;
  for (const char* doc : {kGridboxDoc, kSchedDoc}) {
    soap::EndpointReference epr =
        fx.wsrf->service().create_resource(xml::parse_element(doc));
    expect_fast_matches_dom(fx.wsrf->container(), [&] {
      return soap_post(epr, wsrf::actions::kGetResourcePropertyDocument,
                       std::make_unique<xml::Element>(xml::QName(
                           soap::ns::kWsrfRp, "GetResourcePropertyDocument")));
    });
  }
}

TEST(WireFastPath, WstGetByteIdenticalAcrossDocumentShapes) {
  WireFixture fx;
  struct Case {
    const char* id;
    const char* doc;
  };
  for (const Case& c : {Case{"doc-counter", kCounterDoc},
                        Case{"doc-gridbox", kGridboxDoc},
                        Case{"doc-sched", kSchedDoc}}) {
    // Get works on documents seeded out of band (no Create required).
    fx.wst->db().store(fx.wst->service().collection(), c.id,
                       *xml::parse_element(c.doc));
    std::string body = expect_fast_matches_dom(fx.wst->container(), [&] {
      return soap_post(fx.wst->service().epr_for(c.id), wst::actions::kGet,
                       nullptr);
    });
    // The representation crossed database → wire: spot-check content.
    auto parsed = xml::parse_element(c.doc);
    EXPECT_NE(body.find(parsed->name().local()), std::string::npos) << c.id;
  }
}

TEST(WireFastPath, WstPutAckByteIdentical) {
  WireFixture fx;
  counter::WstCounterClient client(*fx.caller, fx.wst->counter_address(),
                                   fx.wst->source_address());
  soap::EndpointReference epr = client.create();

  expect_fast_matches_dom(fx.wst->container(), [&] {
    auto replacement = xml::parse_element(
        "<c:counter xmlns:c=\"" + std::string(soap::ns::kCounter) +
        "\"><c:cv>3</c:cv></c:counter>");
    return soap_post(epr, wst::actions::kPut, std::move(replacement));
  });
}

TEST(WireFastPath, WstDeleteAckByteIdentical) {
  WireFixture fx;
  // Delete is destructive: run the fast and DOM paths against two distinct
  // seeded resources (the ack carries no resource id, so the normalized
  // octets must still match).
  const std::string collection = fx.wst->service().collection();
  fx.wst->db().store(collection, "del-a", *xml::parse_element(kSchedDoc));
  fx.wst->db().store(collection, "del-b", *xml::parse_element(kSchedDoc));

  std::string fast, dom;
  {
    FastPathGuard guard(true);
    fast = fx.wst->container()
               .handle(soap_post(fx.wst->service().epr_for("del-a"),
                                 wst::actions::kDelete, nullptr))
               .body_str();
  }
  {
    FastPathGuard guard(false);
    dom = fx.wst->container()
              .handle(soap_post(fx.wst->service().epr_for("del-b"),
                                wst::actions::kDelete, nullptr))
              .body_str();
  }
  EXPECT_EQ(normalize(fast), normalize(dom));
  EXPECT_NE(fast.find("DeleteResponse"), std::string::npos);
}

TEST(WireFastPath, WstFaultParity) {
  WireFixture fx;
  std::string body = expect_fast_matches_dom(fx.wst->container(), [&] {
    return soap_post(fx.wst->service().epr_for("no-such-resource"),
                     wst::actions::kGet, nullptr);
  });
  EXPECT_NE(body.find("Fault"), std::string::npos);
}

// --- allocation probe: the fast path must slash DOM node churn ---------------

/// Runs `kRequests` identical requests against `container` with the fast
/// path on, then off, returning the xml.nodes_per_request sums for each.
std::pair<std::uint64_t, std::uint64_t> measure_nodes(
    container::Container& container, telemetry::Histogram& nodes,
    const std::function<net::HttpRequest()>& request) {
  constexpr int kRequests = 20;
  std::uint64_t fast, dom;
  {
    FastPathGuard guard(true);
    container.handle(request());  // warm the compiled template
    std::uint64_t before = nodes.sum_us();
    for (int i = 0; i < kRequests; ++i) container.handle(request());
    fast = nodes.sum_us() - before;
  }
  {
    FastPathGuard guard(false);
    std::uint64_t before = nodes.sum_us();
    for (int i = 0; i < kRequests; ++i) container.handle(request());
    dom = nodes.sum_us() - before;
  }
  return {fast, dom};
}

TEST(WireProbe, WstGetAllocatesFiveTimesFewerNodes) {
  telemetry::MetricsRegistry metrics;
  WireFixture fx(&metrics);
  // Get on the uncached WST database is the end-to-end zero-copy path:
  // arena-parsed request, stored octets spliced into the skeleton — no DOM
  // node is built anywhere in the request.
  fx.wst->db().store(fx.wst->service().collection(), "probe",
                     *xml::parse_element(kSchedDoc));

  auto [fast_nodes, dom_nodes] = measure_nodes(
      fx.wst->container(), metrics.histogram("xml.nodes_per_request"), [&] {
        return soap_post(fx.wst->service().epr_for("probe"),
                         wst::actions::kGet, nullptr);
      });

  // The acceptance bar for the wire path: >= 5x fewer allocations per
  // request than the DOM path, measured through the telemetry probe.
  EXPECT_GT(dom_nodes, 0u);
  EXPECT_GE(dom_nodes, 5 * std::max<std::uint64_t>(fast_nodes, 1))
      << "fast=" << fast_nodes << " dom=" << dom_nodes;

  // The arena probe recorded input-buffer bytes for the fast-path parses.
  EXPECT_GT(metrics.counter("xml.arena_bytes").value(), 0);
}

TEST(WireProbe, WsrfGetPropertyReducesNodes) {
  telemetry::MetricsRegistry metrics;
  WireFixture fx(&metrics);
  counter::WsrfCounterClient client(*fx.caller, fx.wsrf->counter_address());
  soap::EndpointReference epr = client.create();
  client.set(41);

  auto [fast_nodes, dom_nodes] = measure_nodes(
      fx.wsrf->container(), metrics.histogram("xml.nodes_per_request"), [&] {
        return soap_post(epr, wsrf::actions::kGetResourceProperty,
                         property_name_element(counter::cv_qname()));
      });

  // The WSRF read path still clones the cached state document (the
  // resource-cache behaviour the paper measures), so nodes don't reach
  // zero — but request parsing and response building are gone.
  EXPECT_GT(dom_nodes, 0u);
  EXPECT_LT(2 * fast_nodes, dom_nodes)
      << "fast=" << fast_nodes << " dom=" << dom_nodes;
}

}  // namespace
}  // namespace gs
