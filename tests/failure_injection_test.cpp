// Failure injection: the custom-backend interface (the paper's "interface
// to allow custom backends to be used") exercised with hostile backends,
// and service behaviour when storage or delivery fails mid-operation.
#include <gtest/gtest.h>

#include <atomic>

#include "counter/wsrf_counter.hpp"
#include "counter/wst_counter.hpp"
#include "wsn/consumer.hpp"
#include "xml/parser.hpp"

namespace gs {
namespace {

// A custom backend (legacy-system stand-in) that wraps the memory backend
// and can be told to fail specific operations.
class FlakyBackend final : public xmldb::Backend {
 public:
  std::atomic<bool> fail_puts{false};
  std::atomic<bool> fail_gets{false};
  std::atomic<int> put_count{0};

  void put(const std::string& collection, const std::string& id,
           const std::string& octets) override {
    ++put_count;
    if (fail_puts.load()) throw std::runtime_error("injected storage failure");
    inner_.put(collection, id, octets);
  }
  std::optional<std::string> get(const std::string& collection,
                                 const std::string& id) override {
    if (fail_gets.load()) throw std::runtime_error("injected read failure");
    return inner_.get(collection, id);
  }
  bool remove(const std::string& collection, const std::string& id) override {
    return inner_.remove(collection, id);
  }
  std::vector<std::string> list(const std::string& collection) override {
    return inner_.list(collection);
  }
  bool contains(const std::string& collection, const std::string& id) override {
    return inner_.contains(collection, id);
  }

 private:
  xmldb::MemoryBackend inner_;
};

TEST(CustomBackend, PluggedThroughTheDatabaseLayer) {
  auto backend = std::make_unique<FlakyBackend>();
  FlakyBackend* handle = backend.get();
  xmldb::XmlDatabase db(std::move(backend));
  xml::Element doc(xml::QName("r"));
  doc.set_text("v");
  db.store("c", "1", doc);
  EXPECT_EQ(handle->put_count.load(), 1);
  EXPECT_EQ(db.load("c", "1")->text(), "v");
}

TEST(CustomBackend, StorageFailureSurfacesAsReceiverFault) {
  // A storage failure during Create must come back to the client as a
  // well-formed Receiver fault, not a dropped connection or a crash.
  auto backend = std::make_unique<FlakyBackend>();
  FlakyBackend* handle = backend.get();

  net::VirtualNetwork net;
  net::VirtualCaller sink(net, {.transport = net::TransportKind::kSoapTcp});
  counter::WstCounterDeployment dep({
      .backend = std::move(backend),
      .container = {},
      .notification_sink = &sink,
      .address_base = "http://h.example",
      .subscription_file = {},
  });
  net.bind("h.example", dep.container());
  net::VirtualCaller caller(net, {});
  counter::WstCounterClient client(caller, dep.counter_address(),
                                   dep.source_address());

  handle->fail_puts = true;
  try {
    client.create();
    FAIL() << "expected fault";
  } catch (const soap::SoapFault& f) {
    EXPECT_EQ(f.fault().code, "Receiver");
    EXPECT_NE(f.fault().reason.find("injected storage failure"),
              std::string::npos);
  }

  // The service recovers as soon as storage does.
  handle->fail_puts = false;
  EXPECT_NO_THROW(client.create());
  EXPECT_EQ(client.get(), 0);
}

TEST(CustomBackend, ReadFailureDoesNotCorruptSubsequentReads) {
  auto backend = std::make_unique<FlakyBackend>();
  FlakyBackend* handle = backend.get();
  net::VirtualNetwork net;
  net::VirtualCaller sink(net, {.transport = net::TransportKind::kSoapTcp});
  counter::WstCounterDeployment dep({
      .backend = std::move(backend),
      .container = {},
      .notification_sink = &sink,
      .address_base = "http://h.example",
      .subscription_file = {},
  });
  net.bind("h.example", dep.container());
  net::VirtualCaller caller(net, {});
  counter::WstCounterClient client(caller, dep.counter_address(),
                                   dep.source_address());
  client.create();
  client.set(5);

  handle->fail_gets = true;
  EXPECT_THROW(client.get(), soap::SoapFault);
  handle->fail_gets = false;
  EXPECT_EQ(client.get(), 5);
}

TEST(CustomBackend, WsrfCacheMasksBackendReadOutage) {
  // With the write-through cache, a backend read outage is invisible for
  // resources that are already cached — a concrete resilience consequence
  // of the WSRF.NET optimization.
  auto backend = std::make_unique<FlakyBackend>();
  FlakyBackend* handle = backend.get();
  net::VirtualNetwork net;
  net::VirtualCaller sink(net, {.keep_alive = false});
  counter::WsrfCounterDeployment dep({
      .backend = std::move(backend),
      .write_through_cache = true,
      .container = {},
      .notification_sink = &sink,
      .address_base = "http://h.example",
  });
  net.bind("h.example", dep.container());
  net::VirtualCaller caller(net, {});
  counter::WsrfCounterClient client(caller, dep.counter_address());
  client.create();
  client.set(9);

  handle->fail_gets = true;
  EXPECT_EQ(client.get(), 9);  // served entirely from the cache
}

TEST(FailureInjection, NotificationSinkOutageDoesNotFailTheSet) {
  // Delivery is best-effort: the state change commits even when every
  // consumer is unreachable.
  net::VirtualNetwork net;
  net::VirtualCaller sink(net, {.keep_alive = false});
  counter::WsrfCounterDeployment dep({
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .write_through_cache = true,
      .container = {},
      .notification_sink = &sink,
      .address_base = "http://h.example",
  });
  net.bind("h.example", dep.container());
  net::VirtualCaller caller(net, {});
  counter::WsrfCounterClient client(caller, dep.counter_address());
  client.create();
  // Subscribe a consumer that is never bound into the network.
  client.subscribe(soap::EndpointReference("http://unreachable.example/s"));
  EXPECT_NO_THROW(client.set(3));
  EXPECT_EQ(client.get(), 3);
}

TEST(FailureInjection, HalfWrittenRequestIsRejectedCleanly) {
  net::VirtualNetwork net;
  net::VirtualCaller sink(net, {.transport = net::TransportKind::kSoapTcp});
  counter::WstCounterDeployment dep({
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .container = {},
      .notification_sink = &sink,
      .address_base = "http://h.example",
      .subscription_file = {},
  });
  // Truncate a valid request mid-envelope and feed it straight in.
  soap::Envelope env;
  env.add_payload(xml::QName("urn:t", "Op"));
  std::string truncated = env.to_xml().substr(0, 40);
  net::HttpRequest request;
  request.path = "/Counter";
  request.body = truncated;
  net::HttpResponse response = dep.container().handle(request);
  EXPECT_EQ(response.status, 400);
}

}  // namespace
}  // namespace gs
