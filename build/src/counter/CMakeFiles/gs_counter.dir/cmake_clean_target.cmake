file(REMOVE_RECURSE
  "libgs_counter.a"
)
