file(REMOVE_RECURSE
  "CMakeFiles/gs_counter.dir/wsrf_counter.cpp.o"
  "CMakeFiles/gs_counter.dir/wsrf_counter.cpp.o.d"
  "CMakeFiles/gs_counter.dir/wst_counter.cpp.o"
  "CMakeFiles/gs_counter.dir/wst_counter.cpp.o.d"
  "libgs_counter.a"
  "libgs_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
