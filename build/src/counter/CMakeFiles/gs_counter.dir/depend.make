# Empty dependencies file for gs_counter.
# This may be replaced when dependencies are built.
