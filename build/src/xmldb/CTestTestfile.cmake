# CMake generated Testfile for 
# Source directory: /root/repo/src/xmldb
# Build directory: /root/repo/build/src/xmldb
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
