# Empty compiler generated dependencies file for gs_xmldb.
# This may be replaced when dependencies are built.
