file(REMOVE_RECURSE
  "libgs_xmldb.a"
)
