
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xmldb/backend.cpp" "src/xmldb/CMakeFiles/gs_xmldb.dir/backend.cpp.o" "gcc" "src/xmldb/CMakeFiles/gs_xmldb.dir/backend.cpp.o.d"
  "/root/repo/src/xmldb/database.cpp" "src/xmldb/CMakeFiles/gs_xmldb.dir/database.cpp.o" "gcc" "src/xmldb/CMakeFiles/gs_xmldb.dir/database.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xml/CMakeFiles/gs_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
