file(REMOVE_RECURSE
  "CMakeFiles/gs_xmldb.dir/backend.cpp.o"
  "CMakeFiles/gs_xmldb.dir/backend.cpp.o.d"
  "CMakeFiles/gs_xmldb.dir/database.cpp.o"
  "CMakeFiles/gs_xmldb.dir/database.cpp.o.d"
  "libgs_xmldb.a"
  "libgs_xmldb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_xmldb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
