file(REMOVE_RECURSE
  "CMakeFiles/gs_wst.dir/client.cpp.o"
  "CMakeFiles/gs_wst.dir/client.cpp.o.d"
  "CMakeFiles/gs_wst.dir/metadata.cpp.o"
  "CMakeFiles/gs_wst.dir/metadata.cpp.o.d"
  "CMakeFiles/gs_wst.dir/service.cpp.o"
  "CMakeFiles/gs_wst.dir/service.cpp.o.d"
  "libgs_wst.a"
  "libgs_wst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_wst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
