# Empty dependencies file for gs_wst.
# This may be replaced when dependencies are built.
