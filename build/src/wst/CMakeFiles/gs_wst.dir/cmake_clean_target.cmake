file(REMOVE_RECURSE
  "libgs_wst.a"
)
