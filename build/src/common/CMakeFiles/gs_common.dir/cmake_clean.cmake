file(REMOVE_RECURSE
  "CMakeFiles/gs_common.dir/encoding.cpp.o"
  "CMakeFiles/gs_common.dir/encoding.cpp.o.d"
  "CMakeFiles/gs_common.dir/threadpool.cpp.o"
  "CMakeFiles/gs_common.dir/threadpool.cpp.o.d"
  "CMakeFiles/gs_common.dir/uuid.cpp.o"
  "CMakeFiles/gs_common.dir/uuid.cpp.o.d"
  "libgs_common.a"
  "libgs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
