# Empty dependencies file for gs_common.
# This may be replaced when dependencies are built.
