
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/encoding.cpp" "src/common/CMakeFiles/gs_common.dir/encoding.cpp.o" "gcc" "src/common/CMakeFiles/gs_common.dir/encoding.cpp.o.d"
  "/root/repo/src/common/threadpool.cpp" "src/common/CMakeFiles/gs_common.dir/threadpool.cpp.o" "gcc" "src/common/CMakeFiles/gs_common.dir/threadpool.cpp.o.d"
  "/root/repo/src/common/uuid.cpp" "src/common/CMakeFiles/gs_common.dir/uuid.cpp.o" "gcc" "src/common/CMakeFiles/gs_common.dir/uuid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
