file(REMOVE_RECURSE
  "libgs_security.a"
)
