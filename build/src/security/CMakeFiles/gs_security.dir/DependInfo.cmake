
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/security/bignum.cpp" "src/security/CMakeFiles/gs_security.dir/bignum.cpp.o" "gcc" "src/security/CMakeFiles/gs_security.dir/bignum.cpp.o.d"
  "/root/repo/src/security/cert.cpp" "src/security/CMakeFiles/gs_security.dir/cert.cpp.o" "gcc" "src/security/CMakeFiles/gs_security.dir/cert.cpp.o.d"
  "/root/repo/src/security/chacha20.cpp" "src/security/CMakeFiles/gs_security.dir/chacha20.cpp.o" "gcc" "src/security/CMakeFiles/gs_security.dir/chacha20.cpp.o.d"
  "/root/repo/src/security/rsa.cpp" "src/security/CMakeFiles/gs_security.dir/rsa.cpp.o" "gcc" "src/security/CMakeFiles/gs_security.dir/rsa.cpp.o.d"
  "/root/repo/src/security/sha256.cpp" "src/security/CMakeFiles/gs_security.dir/sha256.cpp.o" "gcc" "src/security/CMakeFiles/gs_security.dir/sha256.cpp.o.d"
  "/root/repo/src/security/tls.cpp" "src/security/CMakeFiles/gs_security.dir/tls.cpp.o" "gcc" "src/security/CMakeFiles/gs_security.dir/tls.cpp.o.d"
  "/root/repo/src/security/xmlsig.cpp" "src/security/CMakeFiles/gs_security.dir/xmlsig.cpp.o" "gcc" "src/security/CMakeFiles/gs_security.dir/xmlsig.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/gs_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/gs_soap.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
