file(REMOVE_RECURSE
  "CMakeFiles/gs_security.dir/bignum.cpp.o"
  "CMakeFiles/gs_security.dir/bignum.cpp.o.d"
  "CMakeFiles/gs_security.dir/cert.cpp.o"
  "CMakeFiles/gs_security.dir/cert.cpp.o.d"
  "CMakeFiles/gs_security.dir/chacha20.cpp.o"
  "CMakeFiles/gs_security.dir/chacha20.cpp.o.d"
  "CMakeFiles/gs_security.dir/rsa.cpp.o"
  "CMakeFiles/gs_security.dir/rsa.cpp.o.d"
  "CMakeFiles/gs_security.dir/sha256.cpp.o"
  "CMakeFiles/gs_security.dir/sha256.cpp.o.d"
  "CMakeFiles/gs_security.dir/tls.cpp.o"
  "CMakeFiles/gs_security.dir/tls.cpp.o.d"
  "CMakeFiles/gs_security.dir/xmlsig.cpp.o"
  "CMakeFiles/gs_security.dir/xmlsig.cpp.o.d"
  "libgs_security.a"
  "libgs_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
