# Empty compiler generated dependencies file for gs_security.
# This may be replaced when dependencies are built.
