file(REMOVE_RECURSE
  "CMakeFiles/gs_container.dir/container.cpp.o"
  "CMakeFiles/gs_container.dir/container.cpp.o.d"
  "CMakeFiles/gs_container.dir/lifetime.cpp.o"
  "CMakeFiles/gs_container.dir/lifetime.cpp.o.d"
  "CMakeFiles/gs_container.dir/proxy.cpp.o"
  "CMakeFiles/gs_container.dir/proxy.cpp.o.d"
  "CMakeFiles/gs_container.dir/service.cpp.o"
  "CMakeFiles/gs_container.dir/service.cpp.o.d"
  "libgs_container.a"
  "libgs_container.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_container.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
