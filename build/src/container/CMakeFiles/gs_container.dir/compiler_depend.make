# Empty compiler generated dependencies file for gs_container.
# This may be replaced when dependencies are built.
