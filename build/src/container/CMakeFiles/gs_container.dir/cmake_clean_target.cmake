file(REMOVE_RECURSE
  "libgs_container.a"
)
