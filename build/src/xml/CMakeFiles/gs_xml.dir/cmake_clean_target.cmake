file(REMOVE_RECURSE
  "libgs_xml.a"
)
