# Empty dependencies file for gs_xml.
# This may be replaced when dependencies are built.
