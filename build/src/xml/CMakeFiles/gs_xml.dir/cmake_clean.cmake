file(REMOVE_RECURSE
  "CMakeFiles/gs_xml.dir/canonical.cpp.o"
  "CMakeFiles/gs_xml.dir/canonical.cpp.o.d"
  "CMakeFiles/gs_xml.dir/node.cpp.o"
  "CMakeFiles/gs_xml.dir/node.cpp.o.d"
  "CMakeFiles/gs_xml.dir/parser.cpp.o"
  "CMakeFiles/gs_xml.dir/parser.cpp.o.d"
  "CMakeFiles/gs_xml.dir/schema.cpp.o"
  "CMakeFiles/gs_xml.dir/schema.cpp.o.d"
  "CMakeFiles/gs_xml.dir/writer.cpp.o"
  "CMakeFiles/gs_xml.dir/writer.cpp.o.d"
  "CMakeFiles/gs_xml.dir/xpath.cpp.o"
  "CMakeFiles/gs_xml.dir/xpath.cpp.o.d"
  "libgs_xml.a"
  "libgs_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
