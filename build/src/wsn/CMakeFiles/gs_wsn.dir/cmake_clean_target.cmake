file(REMOVE_RECURSE
  "libgs_wsn.a"
)
