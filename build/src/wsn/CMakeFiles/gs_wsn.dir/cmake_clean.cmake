file(REMOVE_RECURSE
  "CMakeFiles/gs_wsn.dir/broker.cpp.o"
  "CMakeFiles/gs_wsn.dir/broker.cpp.o.d"
  "CMakeFiles/gs_wsn.dir/client.cpp.o"
  "CMakeFiles/gs_wsn.dir/client.cpp.o.d"
  "CMakeFiles/gs_wsn.dir/consumer.cpp.o"
  "CMakeFiles/gs_wsn.dir/consumer.cpp.o.d"
  "CMakeFiles/gs_wsn.dir/filter.cpp.o"
  "CMakeFiles/gs_wsn.dir/filter.cpp.o.d"
  "CMakeFiles/gs_wsn.dir/producer.cpp.o"
  "CMakeFiles/gs_wsn.dir/producer.cpp.o.d"
  "CMakeFiles/gs_wsn.dir/subscription_manager.cpp.o"
  "CMakeFiles/gs_wsn.dir/subscription_manager.cpp.o.d"
  "CMakeFiles/gs_wsn.dir/topics.cpp.o"
  "CMakeFiles/gs_wsn.dir/topics.cpp.o.d"
  "libgs_wsn.a"
  "libgs_wsn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_wsn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
