
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsn/broker.cpp" "src/wsn/CMakeFiles/gs_wsn.dir/broker.cpp.o" "gcc" "src/wsn/CMakeFiles/gs_wsn.dir/broker.cpp.o.d"
  "/root/repo/src/wsn/client.cpp" "src/wsn/CMakeFiles/gs_wsn.dir/client.cpp.o" "gcc" "src/wsn/CMakeFiles/gs_wsn.dir/client.cpp.o.d"
  "/root/repo/src/wsn/consumer.cpp" "src/wsn/CMakeFiles/gs_wsn.dir/consumer.cpp.o" "gcc" "src/wsn/CMakeFiles/gs_wsn.dir/consumer.cpp.o.d"
  "/root/repo/src/wsn/filter.cpp" "src/wsn/CMakeFiles/gs_wsn.dir/filter.cpp.o" "gcc" "src/wsn/CMakeFiles/gs_wsn.dir/filter.cpp.o.d"
  "/root/repo/src/wsn/producer.cpp" "src/wsn/CMakeFiles/gs_wsn.dir/producer.cpp.o" "gcc" "src/wsn/CMakeFiles/gs_wsn.dir/producer.cpp.o.d"
  "/root/repo/src/wsn/subscription_manager.cpp" "src/wsn/CMakeFiles/gs_wsn.dir/subscription_manager.cpp.o" "gcc" "src/wsn/CMakeFiles/gs_wsn.dir/subscription_manager.cpp.o.d"
  "/root/repo/src/wsn/topics.cpp" "src/wsn/CMakeFiles/gs_wsn.dir/topics.cpp.o" "gcc" "src/wsn/CMakeFiles/gs_wsn.dir/topics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wsrf/CMakeFiles/gs_wsrf.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/gs_container.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/gs_security.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/gs_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/xmldb/CMakeFiles/gs_xmldb.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/gs_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
