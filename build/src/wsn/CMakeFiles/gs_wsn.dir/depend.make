# Empty dependencies file for gs_wsn.
# This may be replaced when dependencies are built.
