file(REMOVE_RECURSE
  "CMakeFiles/gs_net.dir/http.cpp.o"
  "CMakeFiles/gs_net.dir/http.cpp.o.d"
  "CMakeFiles/gs_net.dir/tcp.cpp.o"
  "CMakeFiles/gs_net.dir/tcp.cpp.o.d"
  "CMakeFiles/gs_net.dir/virtual_network.cpp.o"
  "CMakeFiles/gs_net.dir/virtual_network.cpp.o.d"
  "libgs_net.a"
  "libgs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
