# Empty dependencies file for gs_net.
# This may be replaced when dependencies are built.
