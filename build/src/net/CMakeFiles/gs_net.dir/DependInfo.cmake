
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/http.cpp" "src/net/CMakeFiles/gs_net.dir/http.cpp.o" "gcc" "src/net/CMakeFiles/gs_net.dir/http.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/net/CMakeFiles/gs_net.dir/tcp.cpp.o" "gcc" "src/net/CMakeFiles/gs_net.dir/tcp.cpp.o.d"
  "/root/repo/src/net/virtual_network.cpp" "src/net/CMakeFiles/gs_net.dir/virtual_network.cpp.o" "gcc" "src/net/CMakeFiles/gs_net.dir/virtual_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/gs_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/gs_security.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/gs_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
