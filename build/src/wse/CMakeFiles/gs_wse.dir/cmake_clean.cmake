file(REMOVE_RECURSE
  "CMakeFiles/gs_wse.dir/client.cpp.o"
  "CMakeFiles/gs_wse.dir/client.cpp.o.d"
  "CMakeFiles/gs_wse.dir/service.cpp.o"
  "CMakeFiles/gs_wse.dir/service.cpp.o.d"
  "CMakeFiles/gs_wse.dir/store.cpp.o"
  "CMakeFiles/gs_wse.dir/store.cpp.o.d"
  "libgs_wse.a"
  "libgs_wse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_wse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
