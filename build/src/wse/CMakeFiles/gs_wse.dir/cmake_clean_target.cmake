file(REMOVE_RECURSE
  "libgs_wse.a"
)
