# Empty compiler generated dependencies file for gs_wse.
# This may be replaced when dependencies are built.
