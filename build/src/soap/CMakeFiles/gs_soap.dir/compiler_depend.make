# Empty compiler generated dependencies file for gs_soap.
# This may be replaced when dependencies are built.
