
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soap/addressing.cpp" "src/soap/CMakeFiles/gs_soap.dir/addressing.cpp.o" "gcc" "src/soap/CMakeFiles/gs_soap.dir/addressing.cpp.o.d"
  "/root/repo/src/soap/envelope.cpp" "src/soap/CMakeFiles/gs_soap.dir/envelope.cpp.o" "gcc" "src/soap/CMakeFiles/gs_soap.dir/envelope.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xml/CMakeFiles/gs_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
