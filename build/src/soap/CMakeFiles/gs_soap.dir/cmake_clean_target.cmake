file(REMOVE_RECURSE
  "libgs_soap.a"
)
