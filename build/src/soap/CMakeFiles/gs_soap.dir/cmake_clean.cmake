file(REMOVE_RECURSE
  "CMakeFiles/gs_soap.dir/addressing.cpp.o"
  "CMakeFiles/gs_soap.dir/addressing.cpp.o.d"
  "CMakeFiles/gs_soap.dir/envelope.cpp.o"
  "CMakeFiles/gs_soap.dir/envelope.cpp.o.d"
  "libgs_soap.a"
  "libgs_soap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_soap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
