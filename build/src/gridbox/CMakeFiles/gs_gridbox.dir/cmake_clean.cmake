file(REMOVE_RECURSE
  "CMakeFiles/gs_gridbox.dir/clients.cpp.o"
  "CMakeFiles/gs_gridbox.dir/clients.cpp.o.d"
  "CMakeFiles/gs_gridbox.dir/common.cpp.o"
  "CMakeFiles/gs_gridbox.dir/common.cpp.o.d"
  "CMakeFiles/gs_gridbox.dir/wsrf_gridbox.cpp.o"
  "CMakeFiles/gs_gridbox.dir/wsrf_gridbox.cpp.o.d"
  "CMakeFiles/gs_gridbox.dir/wst_gridbox.cpp.o"
  "CMakeFiles/gs_gridbox.dir/wst_gridbox.cpp.o.d"
  "libgs_gridbox.a"
  "libgs_gridbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_gridbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
