file(REMOVE_RECURSE
  "libgs_gridbox.a"
)
