# Empty compiler generated dependencies file for gs_gridbox.
# This may be replaced when dependencies are built.
