file(REMOVE_RECURSE
  "libgs_wsrf.a"
)
