file(REMOVE_RECURSE
  "CMakeFiles/gs_wsrf.dir/base_faults.cpp.o"
  "CMakeFiles/gs_wsrf.dir/base_faults.cpp.o.d"
  "CMakeFiles/gs_wsrf.dir/client.cpp.o"
  "CMakeFiles/gs_wsrf.dir/client.cpp.o.d"
  "CMakeFiles/gs_wsrf.dir/resource.cpp.o"
  "CMakeFiles/gs_wsrf.dir/resource.cpp.o.d"
  "CMakeFiles/gs_wsrf.dir/service.cpp.o"
  "CMakeFiles/gs_wsrf.dir/service.cpp.o.d"
  "CMakeFiles/gs_wsrf.dir/service_group.cpp.o"
  "CMakeFiles/gs_wsrf.dir/service_group.cpp.o.d"
  "libgs_wsrf.a"
  "libgs_wsrf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_wsrf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
