# Empty compiler generated dependencies file for gs_wsrf.
# This may be replaced when dependencies are built.
