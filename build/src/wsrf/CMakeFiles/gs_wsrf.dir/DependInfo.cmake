
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsrf/base_faults.cpp" "src/wsrf/CMakeFiles/gs_wsrf.dir/base_faults.cpp.o" "gcc" "src/wsrf/CMakeFiles/gs_wsrf.dir/base_faults.cpp.o.d"
  "/root/repo/src/wsrf/client.cpp" "src/wsrf/CMakeFiles/gs_wsrf.dir/client.cpp.o" "gcc" "src/wsrf/CMakeFiles/gs_wsrf.dir/client.cpp.o.d"
  "/root/repo/src/wsrf/resource.cpp" "src/wsrf/CMakeFiles/gs_wsrf.dir/resource.cpp.o" "gcc" "src/wsrf/CMakeFiles/gs_wsrf.dir/resource.cpp.o.d"
  "/root/repo/src/wsrf/service.cpp" "src/wsrf/CMakeFiles/gs_wsrf.dir/service.cpp.o" "gcc" "src/wsrf/CMakeFiles/gs_wsrf.dir/service.cpp.o.d"
  "/root/repo/src/wsrf/service_group.cpp" "src/wsrf/CMakeFiles/gs_wsrf.dir/service_group.cpp.o" "gcc" "src/wsrf/CMakeFiles/gs_wsrf.dir/service_group.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/container/CMakeFiles/gs_container.dir/DependInfo.cmake"
  "/root/repo/build/src/xmldb/CMakeFiles/gs_xmldb.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/gs_security.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/gs_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/gs_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
