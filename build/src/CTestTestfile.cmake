# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("xml")
subdirs("soap")
subdirs("security")
subdirs("net")
subdirs("xmldb")
subdirs("container")
subdirs("wsrf")
subdirs("wsn")
subdirs("wst")
subdirs("wse")
subdirs("counter")
subdirs("gridbox")
