file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_gridbox.dir/bench_fig6_gridbox.cpp.o"
  "CMakeFiles/bench_fig6_gridbox.dir/bench_fig6_gridbox.cpp.o.d"
  "CMakeFiles/bench_fig6_gridbox.dir/harness.cpp.o"
  "CMakeFiles/bench_fig6_gridbox.dir/harness.cpp.o.d"
  "bench_fig6_gridbox"
  "bench_fig6_gridbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_gridbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
