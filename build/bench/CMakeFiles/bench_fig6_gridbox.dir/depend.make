# Empty dependencies file for bench_fig6_gridbox.
# This may be replaced when dependencies are built.
