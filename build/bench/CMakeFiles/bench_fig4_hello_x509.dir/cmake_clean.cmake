file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_hello_x509.dir/bench_fig4_hello_x509.cpp.o"
  "CMakeFiles/bench_fig4_hello_x509.dir/bench_fig4_hello_x509.cpp.o.d"
  "CMakeFiles/bench_fig4_hello_x509.dir/harness.cpp.o"
  "CMakeFiles/bench_fig4_hello_x509.dir/harness.cpp.o.d"
  "bench_fig4_hello_x509"
  "bench_fig4_hello_x509.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_hello_x509.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
