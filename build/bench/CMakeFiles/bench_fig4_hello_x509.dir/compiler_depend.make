# Empty compiler generated dependencies file for bench_fig4_hello_x509.
# This may be replaced when dependencies are built.
