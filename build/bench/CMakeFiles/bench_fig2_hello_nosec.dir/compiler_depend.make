# Empty compiler generated dependencies file for bench_fig2_hello_nosec.
# This may be replaced when dependencies are built.
