file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_hello_nosec.dir/bench_fig2_hello_nosec.cpp.o"
  "CMakeFiles/bench_fig2_hello_nosec.dir/bench_fig2_hello_nosec.cpp.o.d"
  "CMakeFiles/bench_fig2_hello_nosec.dir/harness.cpp.o"
  "CMakeFiles/bench_fig2_hello_nosec.dir/harness.cpp.o.d"
  "bench_fig2_hello_nosec"
  "bench_fig2_hello_nosec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_hello_nosec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
