file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_hello_https.dir/bench_fig3_hello_https.cpp.o"
  "CMakeFiles/bench_fig3_hello_https.dir/bench_fig3_hello_https.cpp.o.d"
  "CMakeFiles/bench_fig3_hello_https.dir/harness.cpp.o"
  "CMakeFiles/bench_fig3_hello_https.dir/harness.cpp.o.d"
  "bench_fig3_hello_https"
  "bench_fig3_hello_https.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_hello_https.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
