# Empty dependencies file for bench_fig3_hello_https.
# This may be replaced when dependencies are built.
