# Empty dependencies file for bench_ablation_brokered.
# This may be replaced when dependencies are built.
