file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_brokered.dir/bench_ablation_brokered.cpp.o"
  "CMakeFiles/bench_ablation_brokered.dir/bench_ablation_brokered.cpp.o.d"
  "CMakeFiles/bench_ablation_brokered.dir/harness.cpp.o"
  "CMakeFiles/bench_ablation_brokered.dir/harness.cpp.o.d"
  "bench_ablation_brokered"
  "bench_ablation_brokered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_brokered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
