file(REMOVE_RECURSE
  "CMakeFiles/example_brokered_notification.dir/brokered_notification.cpp.o"
  "CMakeFiles/example_brokered_notification.dir/brokered_notification.cpp.o.d"
  "example_brokered_notification"
  "example_brokered_notification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_brokered_notification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
