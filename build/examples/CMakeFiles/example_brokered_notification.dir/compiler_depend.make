# Empty compiler generated dependencies file for example_brokered_notification.
# This may be replaced when dependencies are built.
