file(REMOVE_RECURSE
  "CMakeFiles/example_sensor_monitor.dir/sensor_monitor.cpp.o"
  "CMakeFiles/example_sensor_monitor.dir/sensor_monitor.cpp.o.d"
  "example_sensor_monitor"
  "example_sensor_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sensor_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
