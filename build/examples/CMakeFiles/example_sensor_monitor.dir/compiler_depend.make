# Empty compiler generated dependencies file for example_sensor_monitor.
# This may be replaced when dependencies are built.
