# Empty compiler generated dependencies file for example_gridbox_job_submission.
# This may be replaced when dependencies are built.
