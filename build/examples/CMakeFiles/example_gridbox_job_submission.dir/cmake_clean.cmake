file(REMOVE_RECURSE
  "CMakeFiles/example_gridbox_job_submission.dir/gridbox_job_submission.cpp.o"
  "CMakeFiles/example_gridbox_job_submission.dir/gridbox_job_submission.cpp.o.d"
  "example_gridbox_job_submission"
  "example_gridbox_job_submission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gridbox_job_submission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
