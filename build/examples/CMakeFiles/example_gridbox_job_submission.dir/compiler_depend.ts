# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for example_gridbox_job_submission.
