file(REMOVE_RECURSE
  "CMakeFiles/example_service_group_registry.dir/service_group_registry.cpp.o"
  "CMakeFiles/example_service_group_registry.dir/service_group_registry.cpp.o.d"
  "example_service_group_registry"
  "example_service_group_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_service_group_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
