# Empty dependencies file for example_service_group_registry.
# This may be replaced when dependencies are built.
