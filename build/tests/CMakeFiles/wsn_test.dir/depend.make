# Empty dependencies file for wsn_test.
# This may be replaced when dependencies are built.
