# Empty compiler generated dependencies file for wst_test.
# This may be replaced when dependencies are built.
