file(REMOVE_RECURSE
  "CMakeFiles/wst_test.dir/wst_test.cpp.o"
  "CMakeFiles/wst_test.dir/wst_test.cpp.o.d"
  "wst_test"
  "wst_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
