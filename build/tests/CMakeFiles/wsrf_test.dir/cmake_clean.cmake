file(REMOVE_RECURSE
  "CMakeFiles/wsrf_test.dir/wsrf_test.cpp.o"
  "CMakeFiles/wsrf_test.dir/wsrf_test.cpp.o.d"
  "wsrf_test"
  "wsrf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsrf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
