# Empty compiler generated dependencies file for wsrf_test.
# This may be replaced when dependencies are built.
