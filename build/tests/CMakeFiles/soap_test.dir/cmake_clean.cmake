file(REMOVE_RECURSE
  "CMakeFiles/soap_test.dir/soap_test.cpp.o"
  "CMakeFiles/soap_test.dir/soap_test.cpp.o.d"
  "soap_test"
  "soap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
