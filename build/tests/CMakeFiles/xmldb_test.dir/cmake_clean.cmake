file(REMOVE_RECURSE
  "CMakeFiles/xmldb_test.dir/xmldb_test.cpp.o"
  "CMakeFiles/xmldb_test.dir/xmldb_test.cpp.o.d"
  "xmldb_test"
  "xmldb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmldb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
