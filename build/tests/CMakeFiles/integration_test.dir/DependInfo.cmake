
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/gs_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/gs_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/gs_security.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/xmldb/CMakeFiles/gs_xmldb.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/gs_container.dir/DependInfo.cmake"
  "/root/repo/build/src/wsrf/CMakeFiles/gs_wsrf.dir/DependInfo.cmake"
  "/root/repo/build/src/wsn/CMakeFiles/gs_wsn.dir/DependInfo.cmake"
  "/root/repo/build/src/wst/CMakeFiles/gs_wst.dir/DependInfo.cmake"
  "/root/repo/build/src/wse/CMakeFiles/gs_wse.dir/DependInfo.cmake"
  "/root/repo/build/src/counter/CMakeFiles/gs_counter.dir/DependInfo.cmake"
  "/root/repo/build/src/gridbox/CMakeFiles/gs_gridbox.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
