# Empty dependencies file for gridbox_test.
# This may be replaced when dependencies are built.
