file(REMOVE_RECURSE
  "CMakeFiles/gridbox_test.dir/gridbox_test.cpp.o"
  "CMakeFiles/gridbox_test.dir/gridbox_test.cpp.o.d"
  "gridbox_test"
  "gridbox_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridbox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
