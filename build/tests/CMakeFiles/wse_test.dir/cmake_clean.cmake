file(REMOVE_RECURSE
  "CMakeFiles/wse_test.dir/wse_test.cpp.o"
  "CMakeFiles/wse_test.dir/wse_test.cpp.o.d"
  "wse_test"
  "wse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
