# Empty compiler generated dependencies file for wse_test.
# This may be replaced when dependencies are built.
